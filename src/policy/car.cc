#include "policy/car.h"

#include <algorithm>

namespace bpw {

CarPolicy::CarPolicy(size_t num_frames)
    : ReplacementPolicy(num_frames), frame_nodes_(num_frames, nullptr) {}

CarPolicy::List& CarPolicy::ListOf(ListId id) {
  switch (id) {
    case ListId::kT1:
      return t1_;
    case ListId::kT2:
      return t2_;
    case ListId::kB1:
      return b1_;
    case ListId::kB2:
      return b2_;
  }
  __builtin_unreachable();
}

void CarPolicy::OnHit(PageId page, FrameId frame) {
  if (frame >= frame_nodes_.size()) return;
  Node* node = frame_nodes_[frame];
  if (node == nullptr || node->page != page) return;  // stale
  // The whole point of CAR: a hit is just a bit set, no list movement.
  node->ref = true;
}

void CarPolicy::EvictToGhost(Node* node, ListId ghost) {
  ListOf(node->list).Remove(node);
  if (node->frame != kInvalidFrameId) {
    frame_nodes_[node->frame] = nullptr;
    SetPrefetchTarget(node->frame, nullptr);
    node->frame = kInvalidFrameId;
  }
  node->ref = false;
  node->list = ghost;
  ListOf(ghost).PushFront(node);
}

void CarPolicy::DropGhostLru(ListId ghost) {
  Node* lru = ListOf(ghost).PopBack();
  if (lru != nullptr) index_.erase(lru->page);
}

StatusOr<ReplacementPolicy::Victim> CarPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId /*incoming*/) {
  // The CAR replace loop. Bounded: each iteration either clears a ref bit,
  // demotes a T1 page to T2, or rotates past a pinned page; allow enough
  // steps for the worst case plus pin churn, then fall back.
  const size_t resident = t1_.size() + t2_.size();
  size_t rotations_left = 4 * resident + 8;
  size_t pinned_seen = 0;
  BPW_BOUNDED_BY(rotations_left);
  while (rotations_left-- > 0 && (!t1_.empty() || !t2_.empty())) {
    if (!t1_.empty() && (t1_.size() >= std::max<size_t>(1, p_) || t2_.empty())) {
      Node* head = t1_.Front();
      if (!head->ref) {
        if (evictable(head->frame)) {
          const Victim victim{head->page, head->frame};
          EvictToGhost(head, ListId::kB1);
          return victim;
        }
        // Pinned: rotate it to the back so the hand can advance.
        t1_.MoveToBack(head);
        if (++pinned_seen > resident) break;
      } else {
        // Referenced in T1: it has shown reuse, move to the frequency clock.
        head->ref = false;
        t1_.Remove(head);
        head->list = ListId::kT2;
        t2_.PushBack(head);
      }
    } else {
      Node* head = t2_.Front();
      if (head == nullptr) continue;
      if (!head->ref) {
        if (evictable(head->frame)) {
          const Victim victim{head->page, head->frame};
          EvictToGhost(head, ListId::kB2);
          return victim;
        }
        t2_.MoveToBack(head);
        if (++pinned_seen > resident) break;
      } else {
        head->ref = false;
        t2_.MoveToBack(head);
      }
    }
  }
  return Status::ResourceExhausted("car: no evictable frame");
}

void CarPolicy::OnMiss(PageId page, FrameId frame) {
  const size_t c = num_frames();
  auto it = index_.find(page);
  if (it != index_.end() &&
      (it->second->list == ListId::kB1 || it->second->list == ListId::kB2)) {
    Node* node = it->second.get();
    // Ghost hit: adapt p, then insert at the tail of T2 with ref cleared.
    if (node->list == ListId::kB1) {
      const size_t delta = std::max<size_t>(1, b2_.size() / b1_.size());
      p_ = std::min(c, p_ + delta);
    } else {
      const size_t delta = std::max<size_t>(1, b1_.size() / b2_.size());
      p_ = p_ > delta ? p_ - delta : 0;
    }
    ListOf(node->list).Remove(node);
    node->list = ListId::kT2;
    node->frame = frame;
    node->ref = false;
    t2_.PushBack(node);
    frame_nodes_[frame] = node;
    SetPrefetchTarget(frame, node);
    return;
  }
  if (it != index_.end()) return;  // stale: already resident

  // New page: directory bound enforcement, then insert at T1 tail, ref=0.
  if (t1_.size() + b1_.size() >= c && !b1_.empty()) {
    DropGhostLru(ListId::kB1);
  }
  BPW_BOUNDED_BY(b1_.size() + b2_.size());
  while (t1_.size() + t2_.size() + b1_.size() + b2_.size() >= 2 * c) {
    if (!b2_.empty()) {
      DropGhostLru(ListId::kB2);
    } else if (!b1_.empty()) {
      DropGhostLru(ListId::kB1);
    } else {
      break;
    }
  }
  auto owned = std::make_unique<Node>();
  Node* node = owned.get();
  node->page = page;
  node->frame = frame;
  node->list = ListId::kT1;
  node->ref = false;
  index_.emplace(page, std::move(owned));
  t1_.PushBack(node);
  frame_nodes_[frame] = node;
  SetPrefetchTarget(frame, node);
}

void CarPolicy::OnErase(PageId page, FrameId frame) {
  auto it = index_.find(page);
  if (it == index_.end()) return;
  Node* node = it->second.get();
  const bool ghost =
      node->list == ListId::kB1 || node->list == ListId::kB2;
  if (!ghost && node->frame != frame) return;
  ListOf(node->list).Remove(node);
  if (node->frame != kInvalidFrameId) {
    frame_nodes_[node->frame] = nullptr;
    SetPrefetchTarget(node->frame, nullptr);
  }
  index_.erase(it);
}

Status CarPolicy::CheckInvariants() const {
  const size_t c = num_frames();
  if (t1_.size() + t2_.size() > c) {
    return Status::Corruption("car: resident clocks above capacity");
  }
  if (t1_.size() + b1_.size() > c + 1) {
    // +1 slack: the bound is re-established lazily at the next insert.
    return Status::Corruption("car: |T1|+|B1| above c");
  }
  if (t1_.size() + t2_.size() + b1_.size() + b2_.size() > 2 * c) {
    return Status::Corruption("car: directory above 2c");
  }
  if (p_ > c) return Status::Corruption("car: p above c");
  size_t counted = 0;
  for (const auto& [page, node] : index_) {
    if (node->page != page) {
      return Status::Corruption("car: index key/page mismatch");
    }
    ++counted;
    const bool ghost =
        node->list == ListId::kB1 || node->list == ListId::kB2;
    if (ghost) {
      if (node->frame != kInvalidFrameId) {
        return Status::Corruption("car: ghost node has a frame");
      }
    } else if (node->frame >= frame_nodes_.size() ||
               frame_nodes_[node->frame] != node.get()) {
      return Status::Corruption("car: frame binding broken");
    }
  }
  if (counted != t1_.size() + t2_.size() + b1_.size() + b2_.size()) {
    return Status::Corruption("car: index size disagrees with lists");
  }
  return Status::OK();
}

bool CarPolicy::IsResident(PageId page) const {
  auto it = index_.find(page);
  return it != index_.end() && it->second->list != ListId::kB1 &&
         it->second->list != ListId::kB2;
}

}  // namespace bpw
