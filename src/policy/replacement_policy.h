// ReplacementPolicy: the algorithm-facing interface of the library.
//
// A policy is deliberately *single-threaded* code, exactly as the paper
// assumes: "replacement algorithms carry out their operations ... in a
// serialized fashion" (§I). All concurrency control lives outside, in a
// Coordinator (src/core). This is the contract that lets BP-Wrapper claim
// "no changes to the algorithm": every policy below is written as if it were
// the only code in the process, and the very same object runs under a
// lock-per-access coordinator, under BP-Wrapper, or single-threaded in a
// simulation.
//
// Residency model:
//  - The policy tracks at most `num_frames` *resident* pages, each bound to
//    a distinct buffer frame. Lookup of a resident page's bookkeeping node
//    is O(1) by frame id.
//  - Policies may additionally keep *ghost* (non-resident history) state
//    keyed by page id (2Q's A1out, ARC's B1/B2, LIRS's non-resident HIRs,
//    MQ's Qout, CAR's B1/B2).
//
// Robustness contract (required by BP-Wrapper's delayed commits):
//  - OnHit(page, frame) MUST be a no-op if the frame no longer holds `page`
//    or the page is not resident. With batching, a queued access can be
//    committed after the page was evicted; the paper's implementation
//    compares BufferTags and skips stale entries (§IV-B). The coordinator
//    already filters most stale entries; the policy must tolerate the rest.
//  - OnMiss(page, frame) is only called for pages that are not resident
//    (the buffer pool's single-flight miss path guarantees this).
//
// Serialization contract, statically checked: the class is itself a
// thread-safety *capability*, and every state-touching method REQUIRES it
// exclusively. A coordinator certifies the contract by calling
// AssertExclusiveAccess() right after acquiring its policy lock (the lock
// IS the exclusivity); single-threaded users (simulations, unit tests,
// quiesced integrity checks) call the same assertion, which documents and
// type-checks the "I am the only accessor" claim that previously lived in
// comments. Under clang's -Wthread-safety, calling OnHit/OnMiss/... on a
// path that made neither claim is a compile error.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "testing/schedule_point.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace bpw {

class BPW_CAPABILITY("policy") ReplacementPolicy {
 public:
  /// The page/frame pair selected for eviction.
  struct Victim {
    PageId page = kInvalidPageId;
    FrameId frame = kInvalidFrameId;
  };

  /// Predicate: may the page in this frame be evicted right now? (The
  /// buffer pool answers false for pinned or I/O-busy frames.)
  using EvictableFn = std::function<bool(FrameId)>;

  /// @param num_frames buffer capacity in frames; the policy will never
  ///        track more resident pages than this.
  explicit ReplacementPolicy(size_t num_frames);
  virtual ~ReplacementPolicy() = default;

  ReplacementPolicy(const ReplacementPolicy&) = delete;
  ReplacementPolicy& operator=(const ReplacementPolicy&) = delete;

  /// Records a buffer hit on `page` resident in `frame`. Must tolerate
  /// stale (page, frame) pairs (see robustness contract above).
  virtual void OnHit(PageId page, FrameId frame) BPW_REQUIRES(this) = 0;

  /// Records that `page` has been loaded into `frame` and is now resident.
  /// Preconditions: `page` not resident; `frame` not bound;
  /// resident_count() < num_frames().
  virtual void OnMiss(PageId page, FrameId frame) BPW_REQUIRES(this) = 0;

  /// Selects a resident page to evict, removes it from the policy's
  /// resident bookkeeping (possibly moving it to ghost history), and
  /// returns it. `incoming` is the page whose miss triggered the eviction
  /// (ARC/CAR consult their ghost lists for it; others ignore it).
  /// Returns ResourceExhausted if no frame passes `evictable`.
  virtual StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                        PageId incoming)
      BPW_REQUIRES(this) = 0;

  /// Forcibly removes `page` (e.g. table drop / invalidation). No-op if the
  /// page is not resident. Ghost history for the page is also dropped.
  virtual void OnErase(PageId page, FrameId frame) BPW_REQUIRES(this) = 0;

  /// Structural self-check for tests: list/stack integrity, resident counts,
  /// capacity bounds, frame-binding consistency.
  virtual Status CheckInvariants() const BPW_REQUIRES_SHARED(this) = 0;

  /// Number of resident pages currently tracked.
  virtual size_t resident_count() const BPW_REQUIRES_SHARED(this) = 0;

  /// Whether `page` is tracked as resident (test hook; O(num_frames) worst
  /// case in some policies).
  virtual bool IsResident(PageId page) const BPW_REQUIRES_SHARED(this) = 0;

  /// Short algorithm name ("lru", "2q", "lirs", ...).
  virtual std::string name() const = 0;

  // --- Ghost (non-resident history) introspection --------------------------
  // The sharded conservation oracle needs to ask any policy two questions:
  // how many ghost entries it tracks, and whether a given page is one of
  // them. Policies without ghost state inherit the zero defaults.

  /// Number of ghost entries currently tracked (2Q's A1out, ARC/CAR's
  /// B1+B2, LIRS's non-resident HIRs, MQ's Qout, LRU-2's retained history).
  virtual size_t ghost_count() const BPW_REQUIRES_SHARED(this) { return 0; }

  /// Whether `page` is tracked in ghost (non-resident) history.
  virtual bool IsGhostPage(PageId page) const BPW_REQUIRES_SHARED(this) {
    (void)page;
    return false;
  }

  // --- Cross-shard rebalance hooks (sharded coordinator) -------------------
  // Policies with *global* adaptive state (ARC/CAR's target p) lose their
  // adaptation signal when sharded: each shard only sees its slice of the
  // traffic. The sharded coordinator periodically lets every shard publish
  // a scalar summary of its adaptive state and blend in its peers' — riding
  // the committed batch stream, never the hit path. Policies without such
  // state inherit the unsupported defaults and are never called.

  /// Whether this policy carries adaptive state worth exchanging.
  virtual bool RebalanceSupported() const { return false; }

  /// Exports the adaptive scalar (ARC/CAR: the target size p of T1).
  virtual uint64_t RebalanceExport() const BPW_REQUIRES_SHARED(this) {
    return 0;
  }

  /// Applies a blended peer signal. Implementations must clamp to their own
  /// valid range; the coordinator passes the arithmetic mean of all shards'
  /// last exports.
  virtual void RebalanceApply(uint64_t signal) BPW_REQUIRES(this) {
    (void)signal;
  }

  size_t num_frames() const { return num_frames_; }

  /// Certifies to the thread-safety analysis that the caller has exclusive
  /// access to this policy. There are exactly two legitimate ways to earn
  /// that claim, and every call site is one of them:
  ///   1. a Coordinator holding its policy lock (the lock serializes all
  ///      policy access by construction), or
  ///   2. a single-threaded / quiesced phase (simulations, unit tests,
  ///      BufferPool::CheckIntegrity).
  /// Runtime cost: one relaxed load and a predicted branch (the schedule-
  /// controller check inside BPW_MC_ACCESS_WRITE; nothing when compiled with
  /// BPW_SCHEDULE_POINTS=0). Compile-time effect under clang: the current
  /// scope gains the `policy` capability, so the REQUIRES contracts above
  /// type-check.
  ///
  /// Under the model checker this is also the dynamic half of the contract:
  /// each assertion is reported as a WRITE access to the policy object, and
  /// the vector-clock race certifier checks that every pair of assertions
  /// from different threads is ordered by happens-before. A coordinator
  /// whose locking really serializes policy access certifies clean; one that
  /// asserts exclusivity without holding a lock (the seeded
  /// test_commit_without_lock mutation) is reported as a race — the static
  /// ASSERT_CAPABILITY claim, cross-validated at run time.
  void AssertExclusiveAccess() const BPW_ASSERT_CAPABILITY(this) {
    BPW_MC_ACCESS_WRITE("policy.exclusive", this);
  }

  // --- Model-checker support (src/mc) -------------------------------------

  /// Whether StateFingerprint() captures this policy's full logical state.
  /// Policies without it still model-check; the explorer just cannot dedup
  /// visited states.
  virtual bool StateFingerprintSupported() const { return false; }

  /// Structural fingerprint of the policy's bookkeeping (recency order,
  /// reference bits, ghost lists...). Pointer-free so identical logical
  /// states from different executions collide. 0 when unsupported.
  virtual uint64_t StateFingerprint() const BPW_REQUIRES_SHARED(this) {
    return 0;
  }

  // --- Prefetch support (paper §III-B) -----------------------------------
  // PrefetchHint() is called by coordinators *without holding the policy
  // lock*, immediately before lock acquisition. It issues non-faulting
  // prefetches of the bookkeeping node a subsequent OnHit(frame) will touch.
  // The target registry uses relaxed atomics so the unlocked read is
  // well-defined; a stale target is harmless (prefetch never faults).

  /// Prefetches the bookkeeping node registered for `frame`, if any.
  void PrefetchHint(FrameId frame) const;

 protected:
  /// Registers the cache-line target PrefetchHint(frame) should touch.
  /// Called by subclasses whenever a frame's node binding changes.
  void SetPrefetchTarget(FrameId frame, const void* node);

 private:
  size_t num_frames_;
  std::vector<std::atomic<const void*>> prefetch_targets_ BPW_RELAXED_OK("prefetch hints; a racy read only mis-prefetches");
};

}  // namespace bpw
