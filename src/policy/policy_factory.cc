#include "policy/policy_factory.h"

#include <cstdlib>

#include "policy/arc.h"
#include "policy/car.h"
#include "policy/clock.h"
#include "policy/clock_pro.h"
#include "policy/fifo.h"
#include "policy/gclock.h"
#include "policy/lirs.h"
#include "policy/lru.h"
#include "policy/lru_k.h"
#include "policy/mq.h"
#include "policy/seq.h"
#include "policy/sharded_policy.h"
#include "policy/two_q.h"

namespace bpw {

StatusOr<std::unique_ptr<ReplacementPolicy>> CreatePolicy(
    const std::string& name, size_t num_frames) {
  if (num_frames == 0) {
    return Status::InvalidArgument("policy needs at least one frame");
  }
  // "sharded:<N>:<inner>" wraps any registered policy in the generic
  // sharding adapter, e.g. "sharded:4:lru". Usable anywhere a policy name
  // is: harness configs, bench specs, stress rows.
  if (name.rfind("sharded:", 0) == 0) {
    const size_t second_colon = name.find(':', 8);
    if (second_colon == std::string::npos) {
      return Status::InvalidArgument(
          "sharded policy spec must be sharded:<shards>:<policy>, got: " +
          name);
    }
    const std::string count_str = name.substr(8, second_colon - 8);
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(count_str.c_str(), &end, 10);
    if (count_str.empty() || end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad shard count in: " + name);
    }
    const size_t num_shards = static_cast<size_t>(parsed);
    auto sharded = ShardedPolicy::Create(name.substr(second_colon + 1),
                                         num_shards, num_frames);
    if (!sharded.ok()) return sharded.status();
    return std::unique_ptr<ReplacementPolicy>(std::move(sharded).value());
  }
  if (name == "lru") {
    return std::unique_ptr<ReplacementPolicy>(new LruPolicy(num_frames));
  }
  if (name == "lru2") {
    return std::unique_ptr<ReplacementPolicy>(new LruKPolicy(num_frames));
  }
  if (name == "fifo") {
    return std::unique_ptr<ReplacementPolicy>(new FifoPolicy(num_frames));
  }
  if (name == "clock") {
    return std::unique_ptr<ReplacementPolicy>(new ClockPolicy(num_frames));
  }
  if (name == "gclock") {
    return std::unique_ptr<ReplacementPolicy>(new GClockPolicy(num_frames));
  }
  if (name == "clockpro") {
    return std::unique_ptr<ReplacementPolicy>(new ClockProPolicy(num_frames));
  }
  if (name == "2q") {
    return std::unique_ptr<ReplacementPolicy>(new TwoQPolicy(num_frames));
  }
  if (name == "lirs") {
    return std::unique_ptr<ReplacementPolicy>(new LirsPolicy(num_frames));
  }
  if (name == "mq") {
    return std::unique_ptr<ReplacementPolicy>(new MqPolicy(num_frames));
  }
  if (name == "seq") {
    return std::unique_ptr<ReplacementPolicy>(new SeqPolicy(num_frames));
  }
  if (name == "arc") {
    return std::unique_ptr<ReplacementPolicy>(new ArcPolicy(num_frames));
  }
  if (name == "car") {
    return std::unique_ptr<ReplacementPolicy>(new CarPolicy(num_frames));
  }
  return Status::InvalidArgument("unknown policy: " + name);
}

std::vector<std::string> KnownPolicies() {
  return {"lru", "lru2", "fifo", "clock", "gclock", "clockpro",
          "2q",  "lirs", "mq",   "seq",   "arc",    "car"};
}

}  // namespace bpw
