#include "policy/policy_factory.h"

#include "policy/arc.h"
#include "policy/car.h"
#include "policy/clock.h"
#include "policy/clock_pro.h"
#include "policy/fifo.h"
#include "policy/gclock.h"
#include "policy/lirs.h"
#include "policy/lru.h"
#include "policy/lru_k.h"
#include "policy/mq.h"
#include "policy/seq.h"
#include "policy/two_q.h"

namespace bpw {

StatusOr<std::unique_ptr<ReplacementPolicy>> CreatePolicy(
    const std::string& name, size_t num_frames) {
  if (num_frames == 0) {
    return Status::InvalidArgument("policy needs at least one frame");
  }
  if (name == "lru") {
    return std::unique_ptr<ReplacementPolicy>(new LruPolicy(num_frames));
  }
  if (name == "lru2") {
    return std::unique_ptr<ReplacementPolicy>(new LruKPolicy(num_frames));
  }
  if (name == "fifo") {
    return std::unique_ptr<ReplacementPolicy>(new FifoPolicy(num_frames));
  }
  if (name == "clock") {
    return std::unique_ptr<ReplacementPolicy>(new ClockPolicy(num_frames));
  }
  if (name == "gclock") {
    return std::unique_ptr<ReplacementPolicy>(new GClockPolicy(num_frames));
  }
  if (name == "clockpro") {
    return std::unique_ptr<ReplacementPolicy>(new ClockProPolicy(num_frames));
  }
  if (name == "2q") {
    return std::unique_ptr<ReplacementPolicy>(new TwoQPolicy(num_frames));
  }
  if (name == "lirs") {
    return std::unique_ptr<ReplacementPolicy>(new LirsPolicy(num_frames));
  }
  if (name == "mq") {
    return std::unique_ptr<ReplacementPolicy>(new MqPolicy(num_frames));
  }
  if (name == "seq") {
    return std::unique_ptr<ReplacementPolicy>(new SeqPolicy(num_frames));
  }
  if (name == "arc") {
    return std::unique_ptr<ReplacementPolicy>(new ArcPolicy(num_frames));
  }
  if (name == "car") {
    return std::unique_ptr<ReplacementPolicy>(new CarPolicy(num_frames));
  }
  return Status::InvalidArgument("unknown policy: " + name);
}

std::vector<std::string> KnownPolicies() {
  return {"lru", "lru2", "fifo", "clock", "gclock", "clockpro",
          "2q",  "lirs", "mq",   "seq",   "arc",    "car"};
}

}  // namespace bpw
