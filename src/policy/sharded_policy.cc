#include "policy/sharded_policy.h"

#include <sstream>

#include "policy/policy_factory.h"
#include "util/fingerprint.h"

namespace bpw {

ShardedPolicy::ShardedPolicy(
    std::vector<std::unique_ptr<ReplacementPolicy>> shards, size_t num_frames)
    : ReplacementPolicy(num_frames), shards_(std::move(shards)) {}

StatusOr<std::unique_ptr<ShardedPolicy>> ShardedPolicy::Create(
    const std::string& inner, size_t num_shards, size_t num_frames) {
  if (num_shards == 0) {
    return Status::InvalidArgument("sharded policy needs at least one shard");
  }
  if (inner.rfind("sharded", 0) == 0) {
    return Status::InvalidArgument("sharded policy cannot nest: " + inner);
  }
  std::vector<std::unique_ptr<ReplacementPolicy>> shards;
  shards.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto policy = CreatePolicy(inner, num_frames);
    if (!policy.ok()) return policy.status();
    shards.push_back(std::move(policy).value());
  }
  return std::unique_ptr<ShardedPolicy>(
      new ShardedPolicy(std::move(shards), num_frames));
}

void ShardedPolicy::OnHit(PageId page, FrameId frame) {
  ReplacementPolicy& shard = *shards_[ShardFor(page)];
  shard.AssertExclusiveAccess();  // adapter held exclusively implies shard
  shard.OnHit(page, frame);
}

void ShardedPolicy::OnMiss(PageId page, FrameId frame) {
  ReplacementPolicy& shard = *shards_[ShardFor(page)];
  shard.AssertExclusiveAccess();
  shard.OnMiss(page, frame);
}

StatusOr<ReplacementPolicy::Victim> ShardedPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId incoming) {
  const size_t home = ShardFor(incoming);
  for (size_t k = 0; k < shards_.size(); ++k) {
    ReplacementPolicy& shard = *shards_[(home + k) % shards_.size()];
    shard.AssertExclusiveAccess();
    auto victim = shard.ChooseVictim(evictable, incoming);
    if (victim.ok()) return victim;
    if (victim.status().code() != StatusCode::kResourceExhausted) {
      return victim;  // real error: propagate, don't mask by borrowing
    }
  }
  return Status::ResourceExhausted("no evictable frame in any shard");
}

void ShardedPolicy::OnErase(PageId page, FrameId frame) {
  ReplacementPolicy& shard = *shards_[ShardFor(page)];
  shard.AssertExclusiveAccess();
  shard.OnErase(page, frame);
}

Status ShardedPolicy::CheckInvariants() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->AssertExclusiveAccess();
    Status status = shards_[i]->CheckInvariants();
    if (!status.ok()) {
      return Status::Corruption("shard " + std::to_string(i) + ": " +
                                status.ToString());
    }
  }
  return Status::OK();
}

size_t ShardedPolicy::resident_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    shard->AssertExclusiveAccess();
    total += shard->resident_count();
  }
  return total;
}

bool ShardedPolicy::IsResident(PageId page) const {
  const ReplacementPolicy& shard = *shards_[ShardFor(page)];
  shard.AssertExclusiveAccess();
  return shard.IsResident(page);
}

std::string ShardedPolicy::name() const {
  std::ostringstream name;
  name << "sharded" << shards_.size() << ":" << shards_[0]->name();
  return name.str();
}

size_t ShardedPolicy::ghost_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    shard->AssertExclusiveAccess();
    total += shard->ghost_count();
  }
  return total;
}

bool ShardedPolicy::IsGhostPage(PageId page) const {
  const ReplacementPolicy& shard = *shards_[ShardFor(page)];
  shard.AssertExclusiveAccess();
  return shard.IsGhostPage(page);
}

bool ShardedPolicy::StateFingerprintSupported() const {
  for (const auto& shard : shards_) {
    if (!shard->StateFingerprintSupported()) return false;
  }
  return true;
}

uint64_t ShardedPolicy::StateFingerprint() const {
  Fingerprint fp;
  fp.Combine(shards_.size());
  for (const auto& shard : shards_) {
    shard->AssertExclusiveAccess();
    fp.Combine(shard->StateFingerprint());
  }
  return fp.value();
}

Status ShardedPolicy::CheckShardConservation(
    const std::function<PageId(FrameId)>& frame_page,
    size_t frame_count) const {
  std::vector<size_t> mapped_per_shard(shards_.size(), 0);
  for (FrameId frame = 0; frame < frame_count; ++frame) {
    const PageId page = frame_page(frame);
    if (page == kInvalidPageId) continue;
    const size_t home = ShardFor(page);
    for (size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->AssertExclusiveAccess();
      const bool resident = shards_[s]->IsResident(page);
      if (s == home && !resident) {
        return Status::Corruption(
            "shard conservation violated: page " + std::to_string(page) +
            " (frame " + std::to_string(frame) +
            ") is mapped but not tracked by its home shard " +
            std::to_string(home));
      }
      if (s != home && resident) {
        return Status::Corruption(
            "shard conservation violated: page " + std::to_string(page) +
            " tracked by shard " + std::to_string(s) + " but its home is " +
            std::to_string(home) +
            " (double-tracked or completed into a stale shard)");
      }
    }
    ++mapped_per_shard[home];
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->AssertExclusiveAccess();
    const size_t tracked = shards_[s]->resident_count();
    if (tracked != mapped_per_shard[s]) {
      return Status::Corruption(
          "shard conservation violated: shard " + std::to_string(s) +
          " tracks " + std::to_string(tracked) + " resident pages but " +
          std::to_string(mapped_per_shard[s]) + " mapped pages hash to it");
    }
  }
  return Status::OK();
}

Status ShardedPolicy::CheckGhostDisjointness(PageId universe) const {
  for (PageId page = 0; page < universe; ++page) {
    const size_t home = ShardFor(page);
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (s == home) continue;
      shards_[s]->AssertExclusiveAccess();
      if (shards_[s]->IsGhostPage(page)) {
        return Status::Corruption(
            "shard conservation violated: page " + std::to_string(page) +
            " ghost-tracked by shard " + std::to_string(s) +
            " but its home is " + std::to_string(home));
      }
    }
  }
  return Status::OK();
}

}  // namespace bpw
