#include "policy/seq.h"

#include <algorithm>

namespace bpw {

SeqPolicy::SeqPolicy(size_t num_frames, Params params)
    : ReplacementPolicy(num_frames), nodes_(num_frames) {
  const size_t max_streams =
      params.max_streams != 0 ? params.max_streams : 8;
  streams_.resize(max_streams);
  detect_length_ = params.detect_length != 0 ? params.detect_length : 8;
  page_index_.reserve(num_frames);
}

void SeqPolicy::ObserveMiss(PageId page) {
  ++tick_;
  // Extend a stream whose head this miss continues.
  for (Stream& stream : streams_) {
    if (stream.active() && page == stream.last + 1) {
      stream.last = page;
      ++stream.length;
      stream.last_update = tick_;
      return;
    }
  }
  // Otherwise start a new stream in the stalest slot.
  Stream* slot = &streams_[0];
  for (Stream& stream : streams_) {
    if (!stream.active()) {
      slot = &stream;
      break;
    }
    if (stream.last_update < slot->last_update) slot = &stream;
  }
  slot->start = page;
  slot->last = page;
  slot->length = 1;
  slot->last_update = tick_;
}

FrameId SeqPolicy::FrameOf(PageId page) const {
  auto it = page_index_.find(page);
  return it == page_index_.end() ? kInvalidFrameId : it->second;
}

void SeqPolicy::OnHit(PageId page, FrameId frame) {
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident || node.page != page) return;  // stale
  list_.MoveToFront(&node);
}

void SeqPolicy::OnMiss(PageId page, FrameId frame) {
  ObserveMiss(page);
  Node& node = nodes_[frame];
  node.page = page;
  node.resident = true;
  list_.PushFront(&node);
  page_index_[page] = frame;
  SetPrefetchTarget(frame, &node);
}

StatusOr<ReplacementPolicy::Victim> SeqPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId incoming) {
  // Sequence mode: if the incoming miss extends a detected sequence, evict
  // from just behind that sequence's head (pseudo-MRU within the scan).
  for (const Stream& stream : streams_) {
    if (!stream.active() || stream.length < detect_length_) continue;
    if (incoming != stream.last + 1 && incoming != stream.last) continue;
    // Walk backwards from the head; skip the pages nearest the head (they
    // may still be in use by the scan's look-behind).
    for (PageId back = 2; back < stream.length; ++back) {
      const PageId candidate = stream.last - back;
      const FrameId frame = FrameOf(candidate);
      if (frame == kInvalidFrameId) continue;
      if (!evictable(frame)) continue;
      Node& node = nodes_[frame];
      list_.Remove(&node);
      node.resident = false;
      page_index_.erase(candidate);
      SetPrefetchTarget(frame, nullptr);
      return Victim{candidate, frame};
    }
  }
  // LRU fallback.
  for (Node* node = list_.Back(); node != nullptr; node = list_.Prev(node)) {
    const auto frame = static_cast<FrameId>(node - nodes_.data());
    if (!evictable(frame)) continue;
    list_.Remove(node);
    node->resident = false;
    page_index_.erase(node->page);
    SetPrefetchTarget(frame, nullptr);
    return Victim{node->page, frame};
  }
  return Status::ResourceExhausted("seq: no evictable frame");
}

void SeqPolicy::OnErase(PageId page, FrameId frame) {
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident || node.page != page) return;
  list_.Remove(&node);
  node.resident = false;
  page_index_.erase(page);
  SetPrefetchTarget(frame, nullptr);
}

Status SeqPolicy::CheckInvariants() const {
  size_t linked = 0;
  for (const Node* n = list_.Front(); n != nullptr; n = list_.Next(n)) {
    if (!n->resident) return Status::Corruption("seq: non-resident in list");
    auto it = page_index_.find(n->page);
    if (it == page_index_.end() ||
        &nodes_[it->second] != n) {
      return Status::Corruption("seq: page index binding broken");
    }
    if (++linked > nodes_.size()) {
      return Status::Corruption("seq: list longer than frame count");
    }
  }
  if (linked != list_.size()) {
    return Status::Corruption("seq: list size counter mismatch");
  }
  if (page_index_.size() != linked) {
    return Status::Corruption("seq: index size disagrees with list");
  }
  return Status::OK();
}

bool SeqPolicy::IsResident(PageId page) const {
  return page_index_.find(page) != page_index_.end();
}

size_t SeqPolicy::active_streams() const {
  size_t count = 0;
  for (const Stream& stream : streams_) count += stream.active() ? 1 : 0;
  return count;
}

uint64_t SeqPolicy::StreamLengthAt(PageId head) const {
  for (const Stream& stream : streams_) {
    if (stream.active() && stream.last == head) return stream.length;
  }
  return 0;
}

}  // namespace bpw
