#include "policy/arc.h"

#include <algorithm>

namespace bpw {

ArcPolicy::ArcPolicy(size_t num_frames)
    : ReplacementPolicy(num_frames), frame_nodes_(num_frames, nullptr) {}

ArcPolicy::List& ArcPolicy::ListOf(ListId id) {
  switch (id) {
    case ListId::kT1:
      return t1_;
    case ListId::kT2:
      return t2_;
    case ListId::kB1:
      return b1_;
    case ListId::kB2:
      return b2_;
  }
  __builtin_unreachable();
}

void ArcPolicy::OnHit(PageId page, FrameId frame) {
  if (frame >= frame_nodes_.size()) return;
  Node* node = frame_nodes_[frame];
  if (node == nullptr || node->page != page) return;  // stale
  // Cases I: any resident hit moves the page to the MRU end of T2.
  ListOf(node->list).Remove(node);
  node->list = ListId::kT2;
  t2_.PushFront(node);
}

void ArcPolicy::EvictToGhost(Node* node, ListId ghost) {
  ListOf(node->list).Remove(node);
  if (node->frame != kInvalidFrameId) {
    frame_nodes_[node->frame] = nullptr;
    SetPrefetchTarget(node->frame, nullptr);
    node->frame = kInvalidFrameId;
  }
  node->list = ghost;
  ListOf(ghost).PushFront(node);
}

void ArcPolicy::DropGhostLru(ListId ghost) {
  Node* lru = ListOf(ghost).PopBack();
  if (lru != nullptr) index_.erase(lru->page);
}

StatusOr<ReplacementPolicy::Victim> ArcPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId incoming) {
  // REPLACE(x, p): evict from T1 if it exceeds its target (or exactly meets
  // it and the missing page is a frequency ghost), else from T2.
  bool incoming_in_b2 = false;
  if (auto it = index_.find(incoming); it != index_.end()) {
    incoming_in_b2 = it->second->list == ListId::kB2;
  }
  const bool prefer_t1 =
      !t1_.empty() &&
      (t1_.size() > p_ || (incoming_in_b2 && t1_.size() == p_) || t2_.empty());

  List* primary = prefer_t1 ? &t1_ : &t2_;
  List* secondary = prefer_t1 ? &t2_ : &t1_;
  const ListId primary_ghost = prefer_t1 ? ListId::kB1 : ListId::kB2;
  const ListId secondary_ghost = prefer_t1 ? ListId::kB2 : ListId::kB1;

  for (auto [list, ghost] :
       {std::pair{primary, primary_ghost}, {secondary, secondary_ghost}}) {
    for (Node* node = list->Back(); node != nullptr; node = list->Prev(node)) {
      if (!evictable(node->frame)) continue;
      const Victim victim{node->page, node->frame};
      EvictToGhost(node, ghost);
      return victim;
    }
  }
  return Status::ResourceExhausted("arc: no evictable frame");
}

void ArcPolicy::OnMiss(PageId page, FrameId frame) {
  const size_t c = num_frames();
  auto it = index_.find(page);
  if (it != index_.end() && IsGhost(it->second->list)) {
    Node* node = it->second.get();
    // Cases II/III: ghost hit — adapt the target and promote to T2.
    if (node->list == ListId::kB1) {
      const size_t delta =
          std::max<size_t>(1, b1_.empty() ? 1 : b2_.size() / b1_.size());
      p_ = std::min(c, p_ + delta);
    } else {
      const size_t delta =
          std::max<size_t>(1, b2_.empty() ? 1 : b1_.size() / b2_.size());
      p_ = p_ > delta ? p_ - delta : 0;
    }
    ListOf(node->list).Remove(node);
    node->list = ListId::kT2;
    node->frame = frame;
    t2_.PushFront(node);
    frame_nodes_[frame] = node;
    SetPrefetchTarget(frame, node);
    return;
  }
  if (it != index_.end()) return;  // stale: already resident

  // Case IV: a brand-new page. Enforce the directory bounds before
  // inserting into T1.
  if (t1_.size() + b1_.size() >= c && !b1_.empty()) {
    DropGhostLru(ListId::kB1);
  }
  BPW_BOUNDED_BY(b1_.size() + b2_.size());
  while (t1_.size() + t2_.size() + b1_.size() + b2_.size() >= 2 * c) {
    if (!b2_.empty()) {
      DropGhostLru(ListId::kB2);
    } else if (!b1_.empty()) {
      DropGhostLru(ListId::kB1);
    } else {
      break;  // directory is all-resident; nothing to trim
    }
  }
  auto owned = std::make_unique<Node>();
  Node* node = owned.get();
  node->page = page;
  node->frame = frame;
  node->list = ListId::kT1;
  index_.emplace(page, std::move(owned));
  t1_.PushFront(node);
  frame_nodes_[frame] = node;
  SetPrefetchTarget(frame, node);
}

void ArcPolicy::OnErase(PageId page, FrameId frame) {
  auto it = index_.find(page);
  if (it == index_.end()) return;
  Node* node = it->second.get();
  if (!IsGhost(node->list) && node->frame != frame) return;
  ListOf(node->list).Remove(node);
  if (node->frame != kInvalidFrameId) {
    frame_nodes_[node->frame] = nullptr;
    SetPrefetchTarget(node->frame, nullptr);
  }
  index_.erase(it);
}

Status ArcPolicy::CheckInvariants() const {
  const size_t c = num_frames();
  if (t1_.size() + t2_.size() > c) {
    return Status::Corruption("arc: resident lists above capacity");
  }
  if (t1_.size() + b1_.size() > c) {
    return Status::Corruption("arc: |T1|+|B1| above c");
  }
  if (t1_.size() + t2_.size() + b1_.size() + b2_.size() > 2 * c) {
    return Status::Corruption("arc: directory above 2c");
  }
  if (p_ > c) return Status::Corruption("arc: p above c");
  size_t counted = 0;
  for (const auto& [page, node] : index_) {
    if (node->page != page) {
      return Status::Corruption("arc: index key/page mismatch");
    }
    ++counted;
    const bool ghost =
        node->list == ListId::kB1 || node->list == ListId::kB2;
    if (ghost) {
      if (node->frame != kInvalidFrameId) {
        return Status::Corruption("arc: ghost node has a frame");
      }
    } else {
      if (node->frame >= frame_nodes_.size() ||
          frame_nodes_[node->frame] != node.get()) {
        return Status::Corruption("arc: frame binding broken");
      }
    }
  }
  if (counted !=
      t1_.size() + t2_.size() + b1_.size() + b2_.size()) {
    return Status::Corruption("arc: index size disagrees with lists");
  }
  return Status::OK();
}

bool ArcPolicy::IsResident(PageId page) const {
  auto it = index_.find(page);
  return it != index_.end() && it->second->list != ListId::kB1 &&
         it->second->list != ListId::kB2;
}

}  // namespace bpw
