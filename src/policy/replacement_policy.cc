#include "policy/replacement_policy.h"

#include "sync/prefetch.h"

namespace bpw {

ReplacementPolicy::ReplacementPolicy(size_t num_frames)
    : num_frames_(num_frames), prefetch_targets_(num_frames) {
  for (auto& t : prefetch_targets_) {
    t.store(nullptr, std::memory_order_relaxed);
  }
}

void ReplacementPolicy::PrefetchHint(FrameId frame) const {
  if (frame >= prefetch_targets_.size()) return;
  const void* target = prefetch_targets_[frame].load(std::memory_order_relaxed);
  PrefetchWrite(target);
}

void ReplacementPolicy::SetPrefetchTarget(FrameId frame, const void* node) {
  if (frame >= prefetch_targets_.size()) return;
  prefetch_targets_[frame].store(node, std::memory_order_relaxed);
}

}  // namespace bpw
