// SEQ replacement (Glass & Cao, SIGMETRICS 1997), simplified.
//
// The paper names SEQ twice as the reason its framework must preserve
// access ordering: "many sophisticated replacement algorithms do not have
// clock-based approximations since the access information they need cannot
// be approximated by the clock structure. Examples include the SEQ
// algorithm ... as they need to know in which order the buffer pages are
// accessed for the detection of sequences" (§I), and again against
// distributed locks, which scatter a sequence over partitions (§V-A).
//
// SEQ behaves like LRU until it detects long sequences of faults to
// consecutive pages (a scan); inside a detected sequence it switches to
// pseudo-MRU, evicting pages just behind the sequence head — a scan then
// flushes itself instead of the working set.
//
// This implementation is the standard simplification: a small table of
// active miss streams {start, last, length}; eviction prefers the page a
// fixed distance behind the head of the longest stream past a detection
// threshold, falling back to LRU.
#pragma once

#include <unordered_map>

#include "policy/intrusive_list.h"
#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class SeqPolicy : public ReplacementPolicy {
 public:
  struct Params {
    /// Streams tracked concurrently; 0 means 8 (interleaved scans).
    size_t max_streams = 0;
    /// Consecutive misses before a stream counts as a sequence; 0 means 8.
    uint64_t detect_length = 0;
  };

  explicit SeqPolicy(size_t num_frames) : SeqPolicy(num_frames, Params()) {}
  SeqPolicy(size_t num_frames, Params params);

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this);
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this)
      BPW_HOLD_EFFECT_OK(indirect, "evictable is the pool pin check: it "
                                   "reads frame state and never blocks");
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return list_.size();
  }
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override { return "seq"; }

  // Introspection for tests.
  size_t active_streams() const;
  /// Length of the stream currently containing `page` as its head, or 0.
  uint64_t StreamLengthAt(PageId head) const;

 private:
  struct Node {
    PageId page = kInvalidPageId;
    bool resident = false;
    Link link;
  };

  struct Stream {
    PageId start = kInvalidPageId;
    PageId last = kInvalidPageId;
    uint64_t length = 0;
    uint64_t last_update = 0;  // for LRU replacement of stream slots

    bool active() const { return start != kInvalidPageId; }
  };

  /// Updates stream detection with a missed page.
  void ObserveMiss(PageId page);

  /// Frame currently holding `page`, or kInvalidFrameId (O(1) via map-free
  /// scan is too slow; the policy keeps a small open-addressed index).
  FrameId FrameOf(PageId page) const;

  std::vector<Node> nodes_;                // indexed by FrameId
  IntrusiveList<Node, &Node::link> list_;  // front = MRU, back = LRU
  std::unordered_map<PageId, FrameId> page_index_;

  std::vector<Stream> streams_;
  uint64_t detect_length_;
  uint64_t tick_ = 0;
};

}  // namespace bpw
