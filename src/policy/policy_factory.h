// Construction of replacement policies by name, used by the harness,
// benches, and examples so experiment configs can be plain strings.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "policy/replacement_policy.h"

namespace bpw {

/// Creates the policy named `name` ("lru", "fifo", "clock", "gclock",
/// "clockpro", "2q", "lirs", "mq", "arc", "car") sized for `num_frames`
/// frames.
/// Returns InvalidArgument for unknown names.
StatusOr<std::unique_ptr<ReplacementPolicy>> CreatePolicy(
    const std::string& name, size_t num_frames);

/// All registered policy names, in a stable order.
std::vector<std::string> KnownPolicies();

}  // namespace bpw
