// 2Q replacement (Johnson & Shasha, VLDB 1994) — the "full version" with
// A1in / A1out / Am. This is the advanced algorithm the paper wires into
// PostgreSQL as its representative high-hit-ratio policy ("pg2Q"): hits in
// the Am list move pages to the MRU end, which requires the lock on every
// access — the behaviour BP-Wrapper exists to make scalable.
//
// Structure:
//   A1in  — FIFO of resident pages seen once recently (no movement on hit)
//   A1out — FIFO *ghost* list of page ids evicted from A1in
//   Am    — LRU of resident pages re-referenced while in A1out ("hot")
#pragma once

#include <unordered_map>

#include "policy/intrusive_list.h"
#include "policy/replacement_policy.h"
#include "util/thread_annotations.h"

namespace bpw {

class TwoQPolicy : public ReplacementPolicy {
 public:
  /// Tuning knobs from the 2Q paper: Kin defaults to 25% of the buffer,
  /// Kout to 50% (in pages).
  struct Params {
    size_t kin = 0;   ///< A1in target size; 0 means num_frames/4
    size_t kout = 0;  ///< A1out ghost capacity; 0 means num_frames/2
  };

  explicit TwoQPolicy(size_t num_frames) : TwoQPolicy(num_frames, Params()) {}
  TwoQPolicy(size_t num_frames, Params params);

  void OnHit(PageId page, FrameId frame) override BPW_REQUIRES(this);
  void OnMiss(PageId page, FrameId frame) override BPW_REQUIRES(this);
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId incoming) override BPW_REQUIRES(this);
  void OnErase(PageId page, FrameId frame) override BPW_REQUIRES(this);
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this);
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return a1in_.size() + am_.size();
  }
  bool IsResident(PageId page) const override BPW_REQUIRES_SHARED(this);
  std::string name() const override { return "2q"; }
  size_t ghost_count() const override BPW_REQUIRES_SHARED(this) {
    return a1out_.size();
  }
  bool IsGhostPage(PageId page) const override BPW_REQUIRES_SHARED(this) {
    return InA1out(page);
  }

  // Introspection for tests.
  size_t a1in_size() const { return a1in_.size(); }
  size_t a1out_size() const { return a1out_.size(); }
  size_t am_size() const { return am_.size(); }
  size_t kin() const { return kin_; }
  size_t kout() const { return kout_; }
  /// True if `page` is currently on the A1out ghost list.
  bool InA1out(PageId page) const {
    return a1out_index_.find(page) != a1out_index_.end();
  }

 private:
  enum class Where : uint8_t { kNone, kA1in, kAm };

  struct Node {
    PageId page = kInvalidPageId;
    Where where = Where::kNone;
    Link link;
  };

  struct GhostNode {
    PageId page = kInvalidPageId;
    Link link;
  };

  /// Evicts the first evictable node from `list` scanning from the back
  /// (oldest). Returns nullptr if none qualifies.
  Node* TakeVictimFrom(IntrusiveList<Node, &Node::link>& list,
                       const EvictableFn& evictable)
      BPW_HOLD_EFFECT_OK(indirect, "evictable is the pool pin check: it "
                                   "reads frame state and never blocks");

  /// Pushes `page` onto the A1out ghost list, trimming it to kout_.
  void AddGhost(PageId page)
      BPW_HOLD_EFFECT_OK(alloc, "ghost-index node insert; bounded by kout_");

  std::vector<Node> nodes_;                 // indexed by FrameId
  IntrusiveList<Node, &Node::link> a1in_;   // front = newest
  IntrusiveList<Node, &Node::link> am_;     // front = MRU

  std::unordered_map<PageId, GhostNode> a1out_index_;
  IntrusiveList<GhostNode, &GhostNode::link> a1out_;  // front = newest

  size_t kin_;
  size_t kout_;
};

}  // namespace bpw
