#include "policy/mq.h"

#include <algorithm>
#include <bit>

namespace bpw {

MqPolicy::MqPolicy(size_t num_frames, Params params)
    : ReplacementPolicy(num_frames),
      nodes_(num_frames),
      queues_(std::max<size_t>(1, params.num_queues)) {
  life_time_ = params.life_time != 0 ? params.life_time : 2 * num_frames;
  qout_capacity_ =
      params.qout_capacity != 0 ? params.qout_capacity : 4 * num_frames;
}

uint8_t MqPolicy::QueueFor(uint64_t ref_count) const {
  if (ref_count <= 1) return 0;
  const auto level = static_cast<size_t>(63 - std::countl_zero(ref_count));
  return static_cast<uint8_t>(std::min(level, queues_.size() - 1));
}

void MqPolicy::Adjust() {
  // Check the head (LRU end) of each queue above 0; demote if its lifetime
  // elapsed. One pass per access keeps the cost O(m).
  for (size_t k = 1; k < queues_.size(); ++k) {
    Node* head = queues_[k].Front();
    if (head == nullptr || head->expire > time_) continue;
    queues_[k].Remove(head);
    head->queue = static_cast<uint8_t>(k - 1);
    head->expire = time_ + life_time_;
    queues_[k - 1].PushBack(head);  // MRU end of the lower queue
  }
}

void MqPolicy::OnHit(PageId page, FrameId frame) {
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident || node.page != page) return;  // stale
  ++time_;
  ++node.ref_count;
  queues_[node.queue].Remove(&node);
  node.queue = QueueFor(node.ref_count);
  node.expire = time_ + life_time_;
  queues_[node.queue].PushBack(&node);
  Adjust();
}

void MqPolicy::OnMiss(PageId page, FrameId frame) {
  ++time_;
  Node& node = nodes_[frame];
  node.page = page;
  node.resident = true;
  uint64_t saved = 0;
  auto ghost = qout_index_.find(page);
  if (ghost != qout_index_.end()) {
    saved = ghost->second.ref_count;
    qout_.Remove(&ghost->second);
    qout_index_.erase(ghost);
  }
  node.ref_count = saved + 1;
  node.queue = QueueFor(node.ref_count);
  node.expire = time_ + life_time_;
  queues_[node.queue].PushBack(&node);
  ++resident_;
  SetPrefetchTarget(frame, &node);
  Adjust();
}

StatusOr<ReplacementPolicy::Victim> MqPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId /*incoming*/) {
  for (auto& queue : queues_) {
    for (Node* node = queue.Front(); node != nullptr; node = queue.Next(node)) {
      const auto frame = static_cast<FrameId>(node - nodes_.data());
      if (!evictable(frame)) continue;
      queue.Remove(node);
      node->resident = false;
      --resident_;
      SetPrefetchTarget(frame, nullptr);
      AddGhost(node->page, node->ref_count);
      return Victim{node->page, frame};
    }
  }
  return Status::ResourceExhausted("mq: no evictable frame");
}

void MqPolicy::AddGhost(PageId page, uint64_t ref_count) {
  auto [it, inserted] = qout_index_.try_emplace(page);
  if (!inserted) {
    it->second.ref_count = ref_count;
    qout_.MoveToFront(&it->second);
    return;
  }
  it->second.page = page;
  it->second.ref_count = ref_count;
  qout_.PushFront(&it->second);
  BPW_BOUNDED_BY(qout_.size() - qout_capacity_);
  while (qout_.size() > qout_capacity_) {
    GhostNode* oldest = qout_.PopBack();
    qout_index_.erase(oldest->page);
  }
}

void MqPolicy::OnErase(PageId page, FrameId frame) {
  auto ghost = qout_index_.find(page);
  if (ghost != qout_index_.end()) {
    qout_.Remove(&ghost->second);
    qout_index_.erase(ghost);
  }
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident || node.page != page) return;
  queues_[node.queue].Remove(&node);
  node.resident = false;
  --resident_;
  SetPrefetchTarget(frame, nullptr);
}

Status MqPolicy::CheckInvariants() const {
  size_t in_queues = 0;
  for (size_t k = 0; k < queues_.size(); ++k) {
    for (const Node* n = queues_[k].Front(); n != nullptr;
         n = queues_[k].Next(n)) {
      if (!n->resident) {
        return Status::Corruption("mq: non-resident node in queue");
      }
      if (n->queue != k) {
        return Status::Corruption("mq: node queue tag mismatch");
      }
      ++in_queues;
    }
  }
  if (in_queues != resident_) {
    return Status::Corruption("mq: resident counter mismatch");
  }
  if (in_queues > num_frames()) {
    return Status::Corruption("mq: more resident nodes than frames");
  }
  if (qout_.size() != qout_index_.size()) {
    return Status::Corruption("mq: ghost list/index size mismatch");
  }
  if (qout_.size() > qout_capacity_) {
    return Status::Corruption("mq: ghost list above capacity");
  }
  return Status::OK();
}

bool MqPolicy::IsResident(PageId page) const {
  for (const Node& n : nodes_) {
    if (n.resident && n.page == page) return true;
  }
  return false;
}

uint64_t MqPolicy::RefCountOf(PageId page) const {
  for (const Node& n : nodes_) {
    if (n.resident && n.page == page) return n.ref_count;
  }
  return 0;
}

}  // namespace bpw
