#include "policy/gclock.h"

#include "util/fingerprint.h"

namespace bpw {

GClockPolicy::GClockPolicy(size_t num_frames, uint32_t max_count)
    : ReplacementPolicy(num_frames),
      nodes_(num_frames),
      max_count_(max_count) {}

void GClockPolicy::OnHit(PageId page, FrameId frame) {
  OnHitLockFree(page, frame);
}

void GClockPolicy::OnHitLockFree(PageId page, FrameId frame) {
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident.load(std::memory_order_relaxed) ||
      node.page.load(std::memory_order_relaxed) != page) {
    return;
  }
  // Saturating increment. A racy double-increment under the lock-free path
  // is benign (usage counts are heuristic), mirroring PostgreSQL.
  uint32_t c = node.count.load(std::memory_order_relaxed);
  if (c < max_count_) {
    node.count.store(c + 1, std::memory_order_relaxed);
  }
}

void GClockPolicy::OnMiss(PageId page, FrameId frame) {
  Node& node = nodes_[frame];
  node.page.store(page, std::memory_order_relaxed);
  node.count.store(1, std::memory_order_relaxed);
  node.resident.store(true, std::memory_order_relaxed);
  ++resident_;
  SetPrefetchTarget(frame, &node);
}

StatusOr<ReplacementPolicy::Victim> GClockPolicy::ChooseVictim(
    const EvictableFn& evictable, PageId /*incoming*/) {
  // Worst case the hand must decrement max_count_ counters to zero.
  const size_t limit = (max_count_ + 2) * nodes_.size();
  for (size_t step = 0; step < limit; ++step) {
    Node& node = nodes_[hand_];
    const auto frame = static_cast<FrameId>(hand_);
    hand_ = (hand_ + 1) % nodes_.size();
    if (!node.resident.load(std::memory_order_relaxed)) continue;
    if (!evictable(frame)) continue;
    uint32_t c = node.count.load(std::memory_order_relaxed);
    if (c > 0) {
      node.count.store(c - 1, std::memory_order_relaxed);
      continue;
    }
    node.resident.store(false, std::memory_order_relaxed);
    --resident_;
    SetPrefetchTarget(frame, nullptr);
    return Victim{node.page.load(std::memory_order_relaxed), frame};
  }
  return Status::ResourceExhausted("gclock: no evictable frame");
}

void GClockPolicy::OnErase(PageId page, FrameId frame) {
  if (frame >= nodes_.size()) return;
  Node& node = nodes_[frame];
  if (!node.resident.load(std::memory_order_relaxed) ||
      node.page.load(std::memory_order_relaxed) != page) {
    return;
  }
  node.resident.store(false, std::memory_order_relaxed);
  node.count.store(0, std::memory_order_relaxed);
  --resident_;
  SetPrefetchTarget(frame, nullptr);
}

Status GClockPolicy::CheckInvariants() const {
  size_t resident = 0;
  for (const Node& n : nodes_) {
    if (n.resident.load(std::memory_order_relaxed)) {
      ++resident;
      if (n.count.load(std::memory_order_relaxed) > max_count_) {
        return Status::Corruption("gclock: count above cap");
      }
    }
  }
  if (resident != resident_) {
    return Status::Corruption("gclock: resident counter mismatch");
  }
  return Status::OK();
}

bool GClockPolicy::IsResident(PageId page) const {
  for (const Node& n : nodes_) {
    if (n.resident.load(std::memory_order_relaxed) &&
        n.page.load(std::memory_order_relaxed) == page) {
      return true;
    }
  }
  return false;
}

uint64_t GClockPolicy::StateFingerprint() const {
  Fingerprint fp;
  for (const Node& n : nodes_) {
    fp.Combine(n.page.load(std::memory_order_relaxed));
    fp.Combine(n.resident.load(std::memory_order_relaxed) ? 1 : 0);
    fp.Combine(n.count.load(std::memory_order_relaxed));
  }
  fp.Combine(hand_);
  fp.Combine(resident_);
  return fp.value();
}

}  // namespace bpw
