// Micro-benchmarks for the synchronization primitives: the uncontended
// cost of ContentionLock (counted and timed variants), TryLock, and
// SpinLock. The gap between `kCounts` and `kTiming` shows what the clock
// reads add — which is why throughput experiments default to kCounts.
#include <benchmark/benchmark.h>

#include "sync/contention_lock.h"
#include "sync/spinlock.h"
#include "util/thread_annotations.h"

namespace bpw {
namespace {

void BM_ContentionLockCounts(benchmark::State& state) {
  ContentionLock lock(LockInstrumentation::kCounts);
  for (auto _ : state) {
    lock.Lock();
    benchmark::DoNotOptimize(&lock);
    lock.Unlock();
  }
}
BENCHMARK(BM_ContentionLockCounts);

void BM_ContentionLockTiming(benchmark::State& state) {
  ContentionLock lock(LockInstrumentation::kTiming);
  for (auto _ : state) {
    lock.Lock();
    benchmark::DoNotOptimize(&lock);
    lock.Unlock();
  }
}
BENCHMARK(BM_ContentionLockTiming);

void BM_ContentionLockNone(benchmark::State& state) {
  ContentionLock lock(LockInstrumentation::kNone);
  for (auto _ : state) {
    lock.Lock();
    benchmark::DoNotOptimize(&lock);
    lock.Unlock();
  }
}
BENCHMARK(BM_ContentionLockNone);

// Measures the raw TryLock edge without branching on the result — a shape
// the thread-safety analysis rejects by design, so this opts out.
void BM_TryLockSuccess(benchmark::State& state)
    BPW_NO_THREAD_SAFETY_ANALYSIS {
  ContentionLock lock;
  for (auto _ : state) {
    // bpw-lint-allow(trylock-no-fallback)
    benchmark::DoNotOptimize(lock.TryLock());
    lock.Unlock();
  }
}
BENCHMARK(BM_TryLockSuccess);

// TryLock on a lock the same thread already holds: also analysis-hostile
// on purpose (it measures the failure edge).
void BM_TryLockFailure(benchmark::State& state)
    BPW_NO_THREAD_SAFETY_ANALYSIS {
  ContentionLock lock;
  lock.Lock();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lock.TryLock());
  }
  lock.Unlock();
}
BENCHMARK(BM_TryLockFailure);

void BM_SpinLock(benchmark::State& state) {
  SpinLock lock;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}
BENCHMARK(BM_SpinLock);

void BM_ContendedLock(benchmark::State& state) {
  static ContentionLock lock;
  for (auto _ : state) {
    lock.Lock();
    benchmark::DoNotOptimize(&lock);
    lock.Unlock();
  }
}
BENCHMARK(BM_ContendedLock)->Threads(1)->Threads(4)->Threads(8);

}  // namespace
}  // namespace bpw
