// Figure 2 reproduction: average lock acquisition + holding time per page
// access as the batch size grows from 1 to 64.
//
// Paper setup (§III-A): 16 processors, DBT-2 workload, 2Q replacement; the
// per-access lock time (acquisition wait + holding) is measured while
// varying how many accesses are accumulated before one lock-holding
// period. Expected shape: a steep fall with batch size (the paper plots
// both axes in log scale), flattening by batch 16-64 — "a small number of
// batch size such as 64 is sufficient".
//
// Primary axis: the multiprocessor simulator (16 simulated processors).
// A host-thread measurement with the timing-instrumented real lock
// follows for validation.
#include "bench_common.h"

using namespace bpw;
using namespace bpw::bench;

namespace {

const std::vector<size_t> kBatchSizes = {1, 2, 4, 8, 16, 32, 64};

DriverConfig BaseConfig(uint64_t duration_ms) {
  DriverConfig base =
      ScalabilityRunConfig("dbt2", /*footprint_pages=*/8192, duration_ms);
  base.system.policy = "2q";
  base.system.coordinator = "bp-wrapper";
  return base;
}

int RunBench() {
  const uint32_t threads = MaxThreads();

  {
    TableReporter table({"batch size", "lock time/access (us)", "hold (us)",
                         "wait (us)", "acquisitions", "accesses"});
    for (size_t batch : kBatchSizes) {
      DriverConfig config = BaseConfig(/*duration_ms=*/100);
      config.warmup_ms = 20;
      config.num_threads = threads;
      // Queue == threshold == batch: the processor accumulates exactly
      // `batch` accesses, then commits under one lock-holding period (the
      // §III-A measurement protocol).
      config.system.queue_size = batch;
      config.system.batch_threshold = batch;
      SimCosts costs;
      costs.access_work = 3500;
      DriverResult result =
          MustOk(RunSimulation(config, costs), "fig2 sim cell");
      const double accesses = static_cast<double>(result.accesses);
      table.AddRow(
          {std::to_string(batch),
           FormatDouble(result.lock_nanos_per_access / 1000.0, 4),
           FormatDouble(result.lock.hold_nanos / accesses / 1000.0, 4),
           FormatDouble(result.lock.wait_nanos / accesses / 1000.0, 4),
           std::to_string(result.lock.acquisitions),
           std::to_string(result.accesses)});
    }
    table.Print("Simulated 16 processors (paper Fig. 2: log-log; expect a "
                "steep fall flattening by batch 16-64)");
    std::printf("CSV:\n%s\n", table.ToCsv().c_str());
  }

  {
    TableReporter table({"batch size", "lock time/access (us)", "hold (us)",
                         "wait (us)", "acquisitions", "accesses"});
    for (size_t batch : kBatchSizes) {
      DriverConfig config = BaseConfig(CellMillis());
      config.num_threads = threads;
      config.system.queue_size = batch;
      config.system.batch_threshold = batch;
      config.system.instrumentation = LockInstrumentation::kTiming;
      config.think_work = 64;
      DriverResult result = MustOk(RunDriver(config), "fig2 host cell");
      const double accesses = static_cast<double>(result.accesses);
      table.AddRow(
          {std::to_string(batch),
           FormatDouble(result.lock_nanos_per_access / 1000.0, 4),
           FormatDouble(result.lock.hold_nanos / accesses / 1000.0, 4),
           FormatDouble(result.lock.wait_nanos / accesses / 1000.0, 4),
           std::to_string(result.lock.acquisitions),
           std::to_string(result.accesses)});
    }
    table.Print("Host-thread validation (timing-instrumented real lock; "
                "expect the same falling trend, noisier)");
  }
  return 0;
}

}  // namespace

BPW_BENCH_MAIN("fig2",
               "Figure 2 — lock acquisition and holding time vs batch size",
               "2Q under BP-Wrapper, DBT-2-like workload, 16 processors; "
               "queue size == batch threshold == batch size",
               RunBench)
