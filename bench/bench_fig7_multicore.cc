// Figure 7 reproduction: the PowerEdge 1900 (8-core Xeon) counterpart of
// Fig. 6, on the multiprocessor simulator.
//
// The paper found contention *more* intensive on the multi-core Xeon than
// on the 16-way Itanium: its hardware prefetchers accelerate the
// sequential non-critical-section code but not the pointer-chasing
// critical section, so a larger fraction of time sits inside the lock
// (§IV-D). The simulator reproduces that profile directly: the non-CS
// access work shrinks (prefetcher speed-up) while the critical-section
// costs stay put.
//
// Expected shapes: same ranking as Fig. 6, but saturation sets in earlier
// (TableScan by ~4 processors) and contention counts at equal processor
// counts are higher than Fig. 6's.
#include "bench_common.h"

using namespace bpw;
using namespace bpw::bench;

namespace {

struct WorkloadRow {
  const char* name;
  uint64_t footprint;
  uint64_t sim_access_work;  // ~2.5x less than Fig. 6: HW prefetch speed-up
  uint64_t host_think_work;
};

constexpr WorkloadRow kWorkloads[] = {
    {"dbt1", 8192, 1200, 16},
    {"dbt2", 8192, 1400, 16},
    {"tablescan", 2048, 600, 4},
};

int RunBench() {
  const auto systems = PaperSystemNames();
  const uint32_t limit = std::min<uint32_t>(MaxThreads(), 8);
  const auto threads = ThreadAxis(limit);

  for (const WorkloadRow& workload : kWorkloads) {
    DriverConfig base = ScalabilityRunConfig(
        workload.name, workload.footprint, /*duration_ms=*/100);
    base.warmup_ms = 20;
    SimCosts costs;
    costs.access_work = workload.sim_access_work;
    auto cells = MustOk(RunSystemMatrixSim(base, systems, threads, costs),
                        "fig7 sim cell");
    PrintScalabilityTables(
        std::string("Fig. 7 / ") + workload.name + " (simulated processors)",
        cells, systems, threads);
  }

  // Host validation at the two endpoints.
  std::printf("---- host-thread validation (real locks) ----\n\n");
  const std::vector<uint32_t> host_threads = {1, limit};
  for (const WorkloadRow& workload : kWorkloads) {
    DriverConfig base = ScalabilityRunConfig(workload.name,
                                             workload.footprint, CellMillis());
    base.think_work = workload.host_think_work;
    auto cells = MustOk(RunSystemMatrix(base, systems, host_threads),
                        "fig7 host cell");
    PrintScalabilityTables(
        std::string("Fig. 7 / ") + workload.name + " (host threads)", cells,
        systems, host_threads);
  }
  return 0;
}

}  // namespace

BPW_BENCH_MAIN("fig7", "Figure 7 — multicore profile (PowerEdge-like sweep)",
               "Zero-miss; simulated processors 1..8; non-critical work "
               "accelerated (HW-prefetch emulation) => higher critical-"
               "section share",
               RunBench)
