// Table II reproduction: throughput and average lock contention of
// pgBatPre as the per-thread FIFO queue size grows 1..64 with
// batch_threshold = queue_size / 2, on all three workloads at the largest
// thread count.
//
// Expected shape (paper §IV-E): contention falls by orders of magnitude
// between size 1 and 16; beyond ~16, further growth keeps reducing
// contention but no longer buys throughput ("the improvement can hardly be
// translated into throughput improvement").
#include "bench_common.h"

using namespace bpw;
using namespace bpw::bench;

namespace {

int RunBench() {
  const std::vector<size_t> queue_sizes = {1, 2, 4, 8, 16, 32, 64};
  const uint32_t threads = MaxThreads();

  struct WorkloadRow {
    const char* name;
    uint64_t footprint;
    uint64_t sim_access_work;
  };
  const WorkloadRow workloads[] = {
      {"dbt1", 8192, 3000},
      {"dbt2", 8192, 3500},
      {"tablescan", 2048, 1500},
  };

  std::vector<std::string> header{"queue size"};
  for (const auto& w : workloads) {
    header.push_back(std::string(w.name) + " tps");
  }
  for (const auto& w : workloads) {
    header.push_back(std::string(w.name) + " cont/1M");
  }

  TableReporter table(header);
  for (size_t queue : queue_sizes) {
    std::vector<std::string> row{std::to_string(queue)};
    std::vector<std::string> contention;
    for (const WorkloadRow& workload : workloads) {
      DriverConfig config = ScalabilityRunConfig(
          workload.name, workload.footprint, /*duration_ms=*/100);
      config.warmup_ms = 20;
      config.num_threads = threads;
      config.system = MustOk(PaperSystemConfig("pgBatPre"), "system");
      config.system.queue_size = queue;
      config.system.batch_threshold = std::max<size_t>(1, queue / 2);
      SimCosts costs;
      costs.access_work = workload.sim_access_work;
      DriverResult result =
          MustOk(RunSimulation(config, costs), "table2 cell");
      row.push_back(FormatDouble(result.throughput_tps, 0));
      contention.push_back(FormatDouble(result.contentions_per_million, 1));
    }
    row.insert(row.end(), contention.begin(), contention.end());
    table.AddRow(std::move(row));
  }
  table.Print("Table II — throughput and average lock contention vs queue "
              "size (expect contention to collapse by ~queue size 16)");
  std::printf("CSV:\n%s\n", table.ToCsv().c_str());
  return 0;
}

}  // namespace

BPW_BENCH_MAIN("table2", "Table II — pgBatPre sensitivity to FIFO queue size",
               "threshold = queue/2; 16 threads; zero-miss runs", RunBench)
