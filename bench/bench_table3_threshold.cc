// Table III reproduction: throughput and average lock contention of
// pgBatPre as the batch threshold grows 1..64 with the queue size fixed
// at 64.
//
// Expected shape (paper §IV-E): a U-curve. Very small thresholds commit
// prematurely (tiny batches, many TryLock attempts); thresholds near the
// queue size leave no room for TryLock to fail gracefully — at threshold ==
// queue size every commit is a blocking Lock() and contention jumps. The
// sweet spot sits around queue/2 (32).
#include "bench_common.h"

using namespace bpw;
using namespace bpw::bench;

namespace {

int RunBench() {
  const std::vector<size_t> thresholds = {1, 2, 4, 8, 16, 32, 48, 64};
  const uint32_t threads = MaxThreads();

  struct WorkloadRow {
    const char* name;
    uint64_t footprint;
    uint64_t sim_access_work;
  };
  const WorkloadRow workloads[] = {
      {"dbt1", 8192, 3000},
      {"dbt2", 8192, 3500},
      {"tablescan", 2048, 1500},
  };

  std::vector<std::string> header{"threshold"};
  for (const auto& w : workloads) {
    header.push_back(std::string(w.name) + " tps");
  }
  for (const auto& w : workloads) {
    header.push_back(std::string(w.name) + " cont/1M");
  }
  for (const auto& w : workloads) {
    header.push_back(std::string(w.name) + " tryfail/1M");
  }

  TableReporter table(header);
  for (size_t threshold : thresholds) {
    std::vector<std::string> row{std::to_string(threshold)};
    std::vector<std::string> contention;
    std::vector<std::string> tryfails;
    for (const WorkloadRow& workload : workloads) {
      DriverConfig config = ScalabilityRunConfig(
          workload.name, workload.footprint, /*duration_ms=*/100);
      config.warmup_ms = 20;
      config.num_threads = threads;
      config.system = MustOk(PaperSystemConfig("pgBatPre"), "system");
      config.system.queue_size = 64;
      config.system.batch_threshold = threshold;
      SimCosts costs;
      costs.access_work = workload.sim_access_work;
      DriverResult result =
          MustOk(RunSimulation(config, costs), "table3 cell");
      row.push_back(FormatDouble(result.throughput_tps, 0));
      contention.push_back(FormatDouble(result.contentions_per_million, 1));
      const double tryfail_rate =
          result.accesses == 0
              ? 0.0
              : static_cast<double>(result.lock.trylock_failures) * 1e6 /
                    static_cast<double>(result.accesses);
      tryfails.push_back(FormatDouble(tryfail_rate, 1));
    }
    row.insert(row.end(), contention.begin(), contention.end());
    row.insert(row.end(), tryfails.begin(), tryfails.end());
    table.AddRow(std::move(row));
  }
  table.Print("Table III — throughput / contention / TryLock failures vs "
              "batch threshold (expect the contention jump at threshold 64)");
  std::printf("CSV:\n%s\n", table.ToCsv().c_str());
  return 0;
}

}  // namespace

BPW_BENCH_MAIN("table3", "Table III — pgBatPre sensitivity to batch threshold",
               "queue size = 64; 16 threads; zero-miss runs", RunBench)
