// Shared plumbing for the paper-reproduction bench binaries: environment
// knobs so a full run can be scaled up or down without recompiling.
//
//   BPW_BENCH_MS       per-cell measurement window in ms (default 300)
//   BPW_MAX_THREADS    cap on the thread-count axis (default 16)
//   BPW_QUICK=1        shorthand: 120 ms cells, thread axis capped at 8
//
// Every binary prints the table/figure id it reproduces, the substitution
// caveats that apply (see DESIGN.md §2), and CSV-ready tables.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/driver.h"
#include "harness/reporter.h"
#include "harness/systems.h"

namespace bpw {
namespace bench {

inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

inline bool Quick() { return EnvU64("BPW_QUICK", 0) != 0; }

inline uint64_t CellMillis() {
  return EnvU64("BPW_BENCH_MS", Quick() ? 120 : 300);
}

inline uint32_t MaxThreads() {
  return static_cast<uint32_t>(
      EnvU64("BPW_MAX_THREADS", Quick() ? 8 : 16));
}

/// Thread axis {1,2,4,...,limit}, as in Figs. 6-7.
inline std::vector<uint32_t> ThreadAxis(uint32_t limit) {
  std::vector<uint32_t> axis;
  for (uint32_t t = 1; t <= limit; t *= 2) axis.push_back(t);
  return axis;
}

inline void PrintHeader(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("Host substitution: the paper's multiprocessor runs map to a\n");
  std::printf("thread-count sweep on this machine (over-committed, as the\n");
  std::printf("paper itself does); compare *shapes*, not absolute numbers.\n");
  std::printf("==============================================================\n\n");
}

/// Fails the whole binary on the first experiment error.
template <typename T>
T MustOk(StatusOr<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Registration record for one paper-reproduction bench binary. Every
/// binary declares itself through BPW_BENCH_MAIN instead of hand-rolling
/// main(): the shared BenchMain provides uniform flags (--quick, --ms,
/// --max-threads), a --describe line for tooling, the standard header, and
/// an elapsed-time footer.
struct BenchInfo {
  const char* id;           ///< short machine id, e.g. "fig6"
  const char* title;        ///< header line (figure/table being reproduced)
  const char* description;  ///< setup summary printed under the title
};

/// Shared entry point (bench_common.cc).
int BenchMain(int argc, char** argv, const BenchInfo& info, int (*body)());

#define BPW_BENCH_MAIN(ID, TITLE, DESCRIPTION, BODY)                     \
  int main(int argc, char** argv) {                                      \
    return ::bpw::bench::BenchMain(                                      \
        argc, argv, ::bpw::bench::BenchInfo{ID, TITLE, DESCRIPTION},     \
        BODY);                                                           \
  }

}  // namespace bench
}  // namespace bpw
