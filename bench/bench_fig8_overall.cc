// Figure 8 reproduction: overall performance with real misses — hit ratio
// and normalized throughput of pgClock, pg2Q and pgBatPre as the buffer
// grows from a small fraction of the data set to (nearly) all of it.
// 8 worker threads, simulated disk latency on miss, direct-I/O-style (no
// OS cache under the pool).
//
// Expected shapes (paper §IV-F):
//  - hit ratio: pg2Q and pgBatPre overlap exactly and sit above pgClock
//    (2Q's ghost list beats the clock approximation at every size);
//  - throughput, small buffers (I/O-bound): the 2Q systems win on hit
//    ratio;
//  - throughput, large buffers (CPU/lock-bound): pg2Q falls *below*
//    pgClock (lock contention eats its hit-ratio advantage) while pgBatPre
//    keeps the lead — the crossover is the paper's punchline.
#include "bench_common.h"

using namespace bpw;
using namespace bpw::bench;

namespace {

// Simulated-processor version: 8 simulated processors, 100 us simulated disk
// per miss. This is the axis where the paper's crossover is crisp: at
// small buffers the systems are I/O-bound and hit ratio decides; at large
// buffers the lock decides and pg2Q falls below pgClock.
void RunSimulatedSection() {
  const std::vector<std::string> systems = {"pgClock", "pg2Q", "pgBatPre"};
  const uint64_t footprint = 16384;
  const std::vector<size_t> buffer_sizes = {512,  1024, 2048,
                                            4096, 8192, 16384};
  for (const char* workload_name : {"dbt1", "dbt2"}) {
    struct Cell {
      double hit_ratio;
      double tps;
    };
    std::vector<std::vector<Cell>> grid(
        systems.size(), std::vector<Cell>(buffer_sizes.size()));
    for (size_t s = 0; s < systems.size(); ++s) {
      for (size_t b = 0; b < buffer_sizes.size(); ++b) {
        DriverConfig config;
        config.workload.name = workload_name;
        config.workload.num_pages = footprint;
        config.num_threads = 8;
        config.warmup_ms = 3000;   // simulated: let the cache settle
        config.duration_ms = 2000;
        config.num_frames = buffer_sizes[b];
        config.prewarm = true;
        SimCosts costs;
        costs.access_work = 3000;
        // 100 us per I/O: a cached RAID controller (the paper's FAStT600
        // class). Slow enough that hit ratio decides at small buffers,
        // fast enough that the lock decides once the buffer holds the
        // working set -- which is where the paper's crossover lives.
        costs.io_read = 100'000;
        costs.io_write = 100'000;
        config.system = MustOk(PaperSystemConfig(systems[s]), "system");
        DriverResult result =
            MustOk(RunSimulation(config, costs), "fig8 sim cell");
        grid[s][b] = Cell{result.hit_ratio, result.throughput_tps};
      }
    }
    std::vector<std::string> header{"system"};
    for (size_t b : buffer_sizes) header.push_back(std::to_string(b) + "pg");
    TableReporter hit_table(header);
    TableReporter tps_table(header);
    for (size_t s = 0; s < systems.size(); ++s) {
      std::vector<double> hits, tps_norm;
      for (size_t b = 0; b < buffer_sizes.size(); ++b) {
        hits.push_back(grid[s][b].hit_ratio * 100.0);
        const double base = grid[1][b].tps;
        tps_norm.push_back(base > 0 ? grid[s][b].tps / base : 0.0);
      }
      hit_table.AddNumericRow(systems[s], hits, 1);
      tps_table.AddNumericRow(systems[s], tps_norm, 2);
    }
    hit_table.Print(std::string("Fig. 8 / ") + workload_name +
                    " (simulated) — hit ratio (%) vs buffer size (expect "
                    "pg2Q == pgBatPre > pgClock)");
    tps_table.Print(std::string("Fig. 8 / ") + workload_name +
                    " (simulated) — throughput normalized to pg2Q (expect "
                    "pgClock to pass pg2Q at large buffers; pgBatPre stays "
                    "on top)");
  }
}

int RunBench() {
  RunSimulatedSection();

  std::printf("---- host-thread validation (real pool, sleeping disk) ----\n\n");
  const std::vector<std::string> systems = {"pgClock", "pg2Q", "pgBatPre"};
  const uint64_t footprint = 16384;  // data set, in pages
  const std::vector<size_t> buffer_sizes = {512,  1024, 2048,
                                            4096, 8192, 16384};
  const uint32_t threads = std::min<uint32_t>(MaxThreads(), 8);

  for (const char* workload_name : {"dbt1", "dbt2"}) {
    struct Cell {
      double hit_ratio;
      double tps;
    };
    std::vector<std::vector<Cell>> grid(
        systems.size(), std::vector<Cell>(buffer_sizes.size()));

    for (size_t s = 0; s < systems.size(); ++s) {
      for (size_t b = 0; b < buffer_sizes.size(); ++b) {
        DriverConfig config;
        config.workload.name = workload_name;
        config.workload.num_pages = footprint;
        config.num_threads = threads;
        config.duration_ms = CellMillis();
        config.warmup_ms = CellMillis() / 2;  // longer: cache must settle
        config.num_frames = buffer_sizes[b];
        config.prewarm = false;  // warm through the workload itself
        config.think_work = 32;
        // A scaled-down disk: 250us reads/writes (sleeping) keep miss cost
        // dominant at small buffers without making the bench take minutes.
        config.storage_latency = StorageLatencyModel::SleepingMicros(250, 250);
        config.system = MustOk(PaperSystemConfig(systems[s]), "system");
        DriverResult result = MustOk(RunDriver(config), "fig8 cell");
        grid[s][b] = Cell{result.hit_ratio, result.throughput_tps};
      }
    }

    std::vector<std::string> header{"system"};
    for (size_t b : buffer_sizes) {
      header.push_back(std::to_string(b) + "pg");
    }
    TableReporter hit_table(header);
    TableReporter tps_table(header);
    for (size_t s = 0; s < systems.size(); ++s) {
      std::vector<double> hits, tps_norm;
      for (size_t b = 0; b < buffer_sizes.size(); ++b) {
        hits.push_back(grid[s][b].hit_ratio * 100.0);
        // Normalize against pg2Q at the same buffer size, as the paper
        // normalizes its throughput plot.
        const double base = grid[1][b].tps;
        tps_norm.push_back(base > 0 ? grid[s][b].tps / base : 0.0);
      }
      hit_table.AddNumericRow(systems[s], hits, 1);
      tps_table.AddNumericRow(systems[s], tps_norm, 2);
    }
    hit_table.Print(std::string("Fig. 8 / ") + workload_name +
                    " — hit ratio (%) vs buffer size (expect pg2Q == "
                    "pgBatPre > pgClock)");
    tps_table.Print(std::string("Fig. 8 / ") + workload_name +
                    " — throughput normalized to pg2Q (expect pgClock to "
                    "pass pg2Q at large buffers; pgBatPre stays on top)");
  }
  return 0;
}

}  // namespace

BPW_BENCH_MAIN("fig8", "Figure 8 — overall performance vs buffer size",
               "pgClock / pg2Q / pgBatPre; DBT-1-like and DBT-2-like; 8 "
               "processors; disk latency on miss",
               RunBench)
