// Micro-benchmarks for the BP-Wrapper hot path: the cost of recording an
// access in the private FIFO queue (the paper's claim is that this is
// nearly free compared with a lock acquisition), and the end-to-end
// amortized OnHit cost through each coordinator.
#include <benchmark/benchmark.h>

#include "core/access_queue.h"
#include "core/bp_wrapper.h"
#include "core/clock_coordinator.h"
#include "core/serialized_coordinator.h"
#include "policy/clock.h"
#include "policy/two_q.h"

namespace bpw {
namespace {

constexpr size_t kFrames = 4096;

void BM_QueueRecord(benchmark::State& state) {
  AccessQueue queue(64);
  PageId page = 0;
  for (auto _ : state) {
    if (queue.full()) queue.Clear();
    queue.Record(page++, 0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueRecord);

template <typename MakeCoordinator>
void HitThroughCoordinator(benchmark::State& state, MakeCoordinator make) {
  auto coordinator = make();
  auto slot = coordinator->RegisterThread();
  for (PageId p = 0; p < kFrames; ++p) {
    coordinator->CompleteMiss(slot.get(), p, static_cast<FrameId>(p));
  }
  PageId page = 0;
  for (auto _ : state) {
    coordinator->OnHit(slot.get(), page, static_cast<FrameId>(page));
    page = (page + 1) % kFrames;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_HitSerialized2Q(benchmark::State& state) {
  HitThroughCoordinator(state, [] {
    return std::make_unique<SerializedCoordinator>(
        std::make_unique<TwoQPolicy>(kFrames));
  });
}
BENCHMARK(BM_HitSerialized2Q);

void BM_HitBpWrapper2Q(benchmark::State& state) {
  HitThroughCoordinator(state, [] {
    BpWrapperCoordinator::Options options;
    options.queue_size = 64;
    options.batch_threshold = 32;
    return std::make_unique<BpWrapperCoordinator>(
        std::make_unique<TwoQPolicy>(kFrames), options);
  });
}
BENCHMARK(BM_HitBpWrapper2Q);

void BM_HitBpWrapper2QPrefetch(benchmark::State& state) {
  HitThroughCoordinator(state, [] {
    BpWrapperCoordinator::Options options;
    options.queue_size = 64;
    options.batch_threshold = 32;
    options.prefetch = true;
    return std::make_unique<BpWrapperCoordinator>(
        std::make_unique<TwoQPolicy>(kFrames), options);
  });
}
BENCHMARK(BM_HitBpWrapper2QPrefetch);

void BM_HitClockLockFree(benchmark::State& state) {
  HitThroughCoordinator(state, [] {
    return std::make_unique<ClockCoordinator>(
        std::make_unique<ClockPolicy>(kFrames));
  });
}
BENCHMARK(BM_HitClockLockFree);

}  // namespace
}  // namespace bpw
