// Ablation bench (ours, motivated by the paper's design discussion):
//
//  A. Distributed locks (§V-A) vs BP-Wrapper: a hash-partitioned buffer
//     with per-partition locks against one global policy behind BP-Wrapper.
//     Two effects measured: (1) raw contention/throughput under a skewed
//     OLTP load where hot pages hash to few partitions; (2) the hit-ratio
//     cost of localizing history to small partitions.
//  B. TryLock protocol: batch threshold = queue/2 (TryLock gets a chance)
//     vs threshold = queue (every commit is a blocking Lock), isolating the
//     value of the non-blocking attempt.
//  C. Batching vs prefetching in isolation vs combined (condensed view of
//     the Fig. 6 ranking at the largest thread count).
#include "bench_common.h"

#include "buffer/partitioned_pool.h"
#include "util/clock.h"
#include "workload/trace_generator.h"

#include <cstring>
#include <thread>

using namespace bpw;
using namespace bpw::bench;

namespace {

// Runs the partitioned pool with N worker threads on a workload; the
// regular Driver only handles BufferPool, so this is a condensed local
// driver for the ablation.
struct PartitionedResult {
  double tps = 0;
  double contentions_per_million = 0;
  double hit_ratio = 0;
};

PartitionedResult RunPartitioned(size_t partitions, uint32_t threads,
                                 const WorkloadSpec& workload,
                                 size_t num_frames, uint64_t duration_ms,
                                 uint64_t think_work) {
  StorageEngine storage(workload.num_pages, 4096);
  BufferPoolConfig config;
  config.num_frames = num_frames;
  config.page_size = 4096;
  SystemConfig system;
  system.policy = "2q";
  system.coordinator = "serialized";
  PartitionedPool pool(config, partitions, system, &storage);

  // Pre-warm.
  {
    auto session = pool.CreateSession();
    const uint64_t warm = std::min<uint64_t>(workload.num_pages, num_frames);
    for (PageId p = 0; p < warm; ++p) {
      auto handle = pool.FetchPage(*session, p);
      if (!handle.ok()) break;
    }
  }
  pool.ResetLockStats();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> transactions{0};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto session = pool.CreateSession();
      auto trace = CreateTrace(workload, t);
      uint64_t local_tx = 0;
      uint64_t sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const PageAccess access = trace->Next();
        if (access.begins_transaction) ++local_tx;
        auto handle = pool.FetchPage(*session, access.page);
        if (handle.ok() && access.is_write) handle.value().MarkDirty();
        sink += SpinWork(think_work);
      }
      transactions.fetch_add(local_tx);
      const AccessStats stats = session->stats();
      hits.fetch_add(stats.hits);
      misses.fetch_add(stats.misses);
      volatile uint64_t consume = sink;  // keep SpinWork alive
      (void)consume;
    });
  }
  const uint64_t start = NowNanos();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (auto& w : workers) w.join();
  const double seconds = static_cast<double>(NowNanos() - start) / 1e9;

  PartitionedResult result;
  result.tps = static_cast<double>(transactions.load()) / seconds;
  const uint64_t accesses = hits.load() + misses.load();
  const LockStats lock = pool.lock_stats();
  result.contentions_per_million =
      accesses == 0 ? 0
                    : static_cast<double>(lock.contentions) * 1e6 /
                          static_cast<double>(accesses);
  result.hit_ratio =
      accesses == 0 ? 0 : static_cast<double>(hits.load()) / accesses;
  return result;
}

int RunBench() {
  const uint32_t threads = MaxThreads();
  const uint64_t cell_ms = CellMillis();

  // ---- A1: contention & throughput, zero-miss skewed OLTP -----------------
  {
    WorkloadSpec workload;
    workload.name = "dbt2";
    workload.num_pages = 8192;

    TableReporter table({"configuration", "tps", "contention/1M"});
    for (size_t partitions : {1, 4, 16, 64}) {
      PartitionedResult r = RunPartitioned(partitions, threads, workload,
                                           8192, cell_ms, 64);
      table.AddRow({"partitioned-2q/" + std::to_string(partitions),
                    FormatDouble(r.tps, 0),
                    FormatDouble(r.contentions_per_million, 1)});
    }
    // BP-Wrapper with ONE global policy for comparison.
    DriverConfig config = ScalabilityRunConfig("dbt2", 8192, cell_ms);
    config.num_threads = threads;
    config.think_work = 64;
    config.system = MustOk(PaperSystemConfig("pgBatPre"), "system");
    DriverResult bp = MustOk(RunDriver(config), "ablation A1");
    table.AddRow({"bp-wrapper (global 2q)", FormatDouble(bp.throughput_tps, 0),
                  FormatDouble(bp.contentions_per_million, 1)});
    table.Print("A1 — partitioned 2Q vs BP-Wrapper, DBT-2-like, zero-miss "
                "(partitioning needs many partitions to tame contention; "
                "BP-Wrapper does it with one global policy)");
  }

  // ---- A2: hit-ratio cost of localized history ----------------------------
  {
    WorkloadSpec workload;
    workload.name = "dbt1";
    workload.num_pages = 16384;
    const size_t frames = 2048;  // 1/8 of the data set: real misses

    TableReporter table({"configuration", "hit ratio %"});
    for (size_t partitions : {1, 16, 64, 256}) {
      PartitionedResult r = RunPartitioned(partitions, 4, workload, frames,
                                           cell_ms, 16);
      table.AddRow({"partitioned-2q/" + std::to_string(partitions),
                    FormatDouble(r.hit_ratio * 100, 2)});
    }
    table.Print("A2 — hit ratio vs partition count at fixed total buffer "
                "(paper §V-A drawback (3): small partitions hurt the "
                "replacement algorithm's history)");
  }

  // ---- B: the TryLock design point (simulated processors) -----------------
  {
    TableReporter table(
        {"commit protocol", "tps", "contention/1M", "tryfail/1M"});
    for (bool trylock_room : {true, false}) {
      DriverConfig config = ScalabilityRunConfig("dbt2", 8192, 100);
      config.warmup_ms = 20;
      config.num_threads = threads;
      config.system = MustOk(PaperSystemConfig("pgBat"), "system");
      config.system.queue_size = 64;
      config.system.batch_threshold = trylock_room ? 32 : 64;
      SimCosts costs;
      costs.access_work = 2500;  // below lock saturation: TryLock can win
      DriverResult r = MustOk(RunSimulation(config, costs), "ablation B");
      const double tryfail =
          r.accesses == 0 ? 0
                          : static_cast<double>(r.lock.trylock_failures) *
                                1e6 / static_cast<double>(r.accesses);
      table.AddRow({trylock_room ? "threshold 32 (TryLock window)"
                                 : "threshold 64 (always blocking)",
                    FormatDouble(r.throughput_tps, 0),
                    FormatDouble(r.contentions_per_million, 1),
                    FormatDouble(tryfail, 1)});
    }
    table.Print("B — value of the non-blocking TryLock window "
                "(threshold == queue size forces blocking commits)");
  }

  // ---- C: technique mix at max processors (simulated) ---------------------
  {
    TableReporter table({"system", "tps", "contention/1M"});
    for (const auto& name : PaperSystemNames()) {
      DriverConfig config = ScalabilityRunConfig("dbt2", 8192, 100);
      config.warmup_ms = 20;
      config.num_threads = threads;
      config.system = MustOk(PaperSystemConfig(name), "system");
      SimCosts costs;
      costs.access_work = 3500;
      DriverResult r = MustOk(RunSimulation(config, costs), "ablation C");
      table.AddRow({name, FormatDouble(r.throughput_tps, 0),
                    FormatDouble(r.contentions_per_million, 1)});
    }
    table.Print("C — batching vs prefetching in isolation (condensed Fig. 6 "
                "ranking at the largest thread count)");
  }

  // ---- D: private vs shared FIFO queues (host threads) ---------------------
  // The paper's §III-A design decision: a single shared queue synchronizes
  // on every page hit (its own lock + cache-line traffic); private queues
  // record for free.
  {
    TableReporter table({"queue design", "tps", "policy-lock acq",
                         "queue-lock acq"});
    for (const char* kind : {"bp-wrapper", "shared-queue"}) {
      DriverConfig config = ScalabilityRunConfig("dbt2", 8192, cell_ms);
      config.num_threads = threads;
      config.think_work = 64;
      config.system.policy = "2q";
      config.system.coordinator = kind;
      config.system.queue_size = 64;
      config.system.batch_threshold = 32;
      DriverResult r = MustOk(RunDriver(config), "ablation D");
      const char* queue_locks =
          std::strcmp(kind, "shared-queue") == 0 ? "1 per access" : "0";
      table.AddRow({kind, FormatDouble(r.throughput_tps, 0),
                    std::to_string(r.lock.acquisitions), queue_locks});
    }
    table.Print("D — private (BP-Wrapper) vs shared FIFO queue (the §III-A "
                "alternative the paper rejected): same policy-lock batching, "
                "but the shared queue adds a per-access synchronization "
                "point");
  }
  return 0;
}

}  // namespace

BPW_BENCH_MAIN("ablation",
               "Ablation — distributed locks, TryLock protocol, technique mix",
               "quantifies the paper's §V-A criticism of partitioned buffers "
               "and the §IV-E TryLock design point",
               RunBench)
