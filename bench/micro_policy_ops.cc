// Micro-benchmarks: per-operation cost of every replacement policy's hit,
// miss and victim paths. These are the "operations protected by the lock"
// whose duration the paper's prefetching technique targets — knowing their
// raw cost puts the lock-time measurements of Fig. 2 in context.
#include <benchmark/benchmark.h>

#include "policy/policy_factory.h"
#include "util/random.h"

namespace bpw {
namespace {

constexpr size_t kFrames = 4096;

std::unique_ptr<ReplacementPolicy> MakeFilled(const std::string& name) {
  auto policy = CreatePolicy(name, kFrames);
  ReplacementPolicy* raw = policy.value().get();
  raw->AssertExclusiveAccess();  // single-threaded benchmark
  for (PageId p = 0; p < kFrames; ++p) {
    raw->OnMiss(p, static_cast<FrameId>(p));
  }
  return std::move(policy).value();
}

void BM_PolicyHit(benchmark::State& state, const std::string& name) {
  auto policy = MakeFilled(name);
  policy->AssertExclusiveAccess();  // single-threaded benchmark
  Random rng(1);
  for (auto _ : state) {
    const PageId page = rng.Uniform(kFrames);
    policy->OnHit(page, static_cast<FrameId>(page));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PolicyMissEvictCycle(benchmark::State& state,
                             const std::string& name) {
  auto policy = MakeFilled(name);
  policy->AssertExclusiveAccess();  // single-threaded benchmark
  auto evictable = [](FrameId) { return true; };
  PageId next = kFrames;
  for (auto _ : state) {
    auto victim = policy->ChooseVictim(evictable, next);
    if (!victim.ok()) state.SkipWithError("no victim");
    policy->OnMiss(next, victim->frame);
    ++next;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PolicyPrefetchHint(benchmark::State& state, const std::string& name) {
  auto policy = MakeFilled(name);
  Random rng(2);
  for (auto _ : state) {
    policy->PrefetchHint(static_cast<FrameId>(rng.Uniform(kFrames)));
  }
  state.SetItemsProcessed(state.iterations());
}

void RegisterAll() {
  for (const auto& name : KnownPolicies()) {
    benchmark::RegisterBenchmark(("hit/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_PolicyHit(s, name);
                                 });
    benchmark::RegisterBenchmark(("miss_evict/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_PolicyMissEvictCycle(s, name);
                                 });
    benchmark::RegisterBenchmark(("prefetch_hint/" + name).c_str(),
                                 [name](benchmark::State& s) {
                                   BM_PolicyPrefetchHint(s, name);
                                 });
  }
}

const bool registered = (RegisterAll(), true);

}  // namespace
}  // namespace bpw
