// Figure 6 reproduction: throughput, average response time, and average
// lock contention of the five systems (pgClock, pg2Q, pgPre, pgBat,
// pgBatPre) under DBT-1, DBT-2 and TableScan as the processor count scales
// 1..16 (SGI Altix 350 in the paper).
//
// Primary axis: the multiprocessor simulator (src/sim) — this host has one
// core, and the paper's processor sweep cannot physically exist on it (see
// DESIGN.md §2). The simulator executes the real policies and the real
// BP-Wrapper protocol in simulated time. A host-thread validation section
// (real locks, real threads, over-committed on this machine) follows so
// the direction of the effects can be checked against genuine hardware.
//
// Zero-miss setting: buffer = working set, pre-warmed — "performance
// differences ... result completely from the differences in the
// scalability of their implementations" (§IV).
//
// Expected shapes (paper §IV-D):
//  - pg2Q saturates around 4 processors, then declines slightly; lock
//    contention grows to ~1e6 per million accesses (every access blocks).
//  - pgPre is better but insufficient ("as poor as pg2Q" at high counts).
//  - pgBat / pgBatPre track pgClock nearly linearly through 16 processors;
//    their contention is orders of magnitude below pg2Q's.
#include "bench_common.h"

using namespace bpw;
using namespace bpw::bench;

namespace {

struct WorkloadRow {
  const char* name;
  uint64_t footprint;
  uint64_t sim_access_work;   // simulated non-CS nanoseconds per access
  uint64_t host_think_work;   // host-mode SpinWork iterations per access
};

constexpr WorkloadRow kWorkloads[] = {
    {"dbt1", 8192, 3000, 64},
    {"dbt2", 8192, 3500, 64},
    // A scan processes ~80 rows per page: less work per page than an OLTP
    // access, which is why it contends hardest (§IV-D: saturates earliest).
    {"tablescan", 2048, 1500, 16},
};

int RunBench() {
  const auto systems = PaperSystemNames();
  const auto threads = ThreadAxis(MaxThreads());

  for (const WorkloadRow& workload : kWorkloads) {
    DriverConfig base = ScalabilityRunConfig(
        workload.name, workload.footprint, /*duration_ms=*/100);
    base.warmup_ms = 20;
    SimCosts costs;
    costs.access_work = workload.sim_access_work;
    auto cells = MustOk(RunSystemMatrixSim(base, systems, threads, costs),
                        "fig6 sim cell");
    PrintScalabilityTables(
        std::string("Fig. 6 / ") + workload.name + " (simulated processors)",
        cells, systems, threads);
  }

  // Host validation: real threads on this machine. Over-committed beyond
  // the core count, contention manifests as scheduler pressure; expect the
  // same ordering, compressed magnitudes.
  std::printf("---- host-thread validation (%u-way, real locks) ----\n\n",
              MaxThreads());
  const std::vector<uint32_t> host_threads = {1, MaxThreads()};
  for (const WorkloadRow& workload : kWorkloads) {
    DriverConfig base = ScalabilityRunConfig(workload.name,
                                             workload.footprint, CellMillis());
    base.think_work = workload.host_think_work;
    auto cells = MustOk(RunSystemMatrix(base, systems, host_threads),
                        "fig6 host cell");
    PrintScalabilityTables(
        std::string("Fig. 6 / ") + workload.name + " (host threads)", cells,
        systems, host_threads);
  }
  return 0;
}

}  // namespace

BPW_BENCH_MAIN("fig6",
               "Figure 6 — scalability of the five systems (Altix-like sweep)",
               "Zero-miss, pre-warmed buffer; simulated processors 1..16; "
               "workloads DBT-1-like, DBT-2-like, TableScan",
               RunBench)
