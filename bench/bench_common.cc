#include "bench_common.h"

#include <cstring>

#include "util/clock.h"

namespace bpw {
namespace bench {

int BenchMain(int argc, char** argv, const BenchInfo& info,
              int (*body)()) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--describe") == 0) {
      // Machine-readable one-liner for orchestration/tooling.
      std::printf("%s\t%s\n", info.id, info.title);
      return 0;
    }
    if (std::strcmp(arg, "--quick") == 0) {
      setenv("BPW_QUICK", "1", 1);
      continue;
    }
    if (std::strcmp(arg, "--ms") == 0) {
      setenv("BPW_BENCH_MS", next("--ms"), 1);
      continue;
    }
    if (std::strcmp(arg, "--max-threads") == 0) {
      setenv("BPW_MAX_THREADS", next("--max-threads"), 1);
      continue;
    }
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf(
          "%s — %s\n\n"
          "  --quick           short cells, thread axis capped at 8\n"
          "  --ms N            per-cell measurement window in ms\n"
          "  --max-threads N   cap on the thread-count axis\n"
          "  --describe        print 'id<TAB>title' and exit\n\n"
          "Environment knobs BPW_QUICK / BPW_BENCH_MS / BPW_MAX_THREADS are\n"
          "equivalent; flags win.\n",
          info.id, info.title);
      return 0;
    }
    std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg);
    return 2;
  }

  PrintHeader(info.title, info.description);
  const uint64_t start = NowNanos();
  const int rc = body();
  std::printf("[%s] done in %.1f s\n", info.id,
              static_cast<double>(NowNanos() - start) / 1e9);
  return rc;
}

}  // namespace bench
}  // namespace bpw
