// Micro-benchmarks for the buffer-pool hot paths: the full FetchPage hit
// path under each coordinator (hash lookup + pin + bookkeeping), the miss
// path, and the page-table primitives. These bound what any replacement
// strategy can cost end-to-end on this host.
#include <benchmark/benchmark.h>

#include "buffer/buffer_pool.h"
#include "buffer/page_table.h"
#include "core/coordinator_factory.h"
#include "util/random.h"

namespace bpw {
namespace {

constexpr size_t kPageSize = 512;
constexpr size_t kFrames = 1024;

void FetchHitLoop(benchmark::State& state, const char* system_name) {
  StorageEngine storage(kFrames, kPageSize);
  auto system = PaperSystemConfig(system_name);
  auto coordinator = CreateCoordinator(system.value(), kFrames);
  BufferPoolConfig config;
  config.num_frames = kFrames;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator).value());
  auto session = pool.CreateSession();
  if (!pool.Prewarm(*session, 0, kFrames).ok()) {
    state.SkipWithError("prewarm failed");
    return;
  }
  Random rng(7);
  for (auto _ : state) {
    auto handle = pool.FetchPage(*session, rng.Uniform(kFrames));
    benchmark::DoNotOptimize(handle.value().data());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FetchHit_pgClock(benchmark::State& state) {
  FetchHitLoop(state, "pgClock");
}
BENCHMARK(BM_FetchHit_pgClock);

void BM_FetchHit_pg2Q(benchmark::State& state) {
  FetchHitLoop(state, "pg2Q");
}
BENCHMARK(BM_FetchHit_pg2Q);

void BM_FetchHit_pgBatPre(benchmark::State& state) {
  FetchHitLoop(state, "pgBatPre");
}
BENCHMARK(BM_FetchHit_pgBatPre);

void BM_FetchMissEvict(benchmark::State& state) {
  // Steady-state miss path: every fetch evicts (sequential sweep through a
  // space twice the pool size, zero storage latency).
  StorageEngine storage(kFrames * 2, kPageSize);
  auto system = PaperSystemConfig("pgBatPre");
  auto coordinator = CreateCoordinator(system.value(), kFrames);
  BufferPoolConfig config;
  config.num_frames = kFrames;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator).value());
  auto session = pool.CreateSession();
  PageId next = 0;
  for (auto _ : state) {
    auto handle = pool.FetchPage(*session, next);
    benchmark::DoNotOptimize(handle.value().data());
    next = (next + 1) % (kFrames * 2);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FetchMissEvict);

void BM_PageTableLookupHit(benchmark::State& state) {
  PageTable table(128);
  for (PageId p = 0; p < 10000; ++p) {
    table.Insert(p, static_cast<FrameId>(p % 1024));
  }
  Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(rng.Uniform(10000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableLookupHit);

void BM_PageTableLookupMiss(benchmark::State& state) {
  PageTable table(128);
  for (PageId p = 0; p < 10000; ++p) {
    table.Insert(p, static_cast<FrameId>(p % 1024));
  }
  Random rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(10000 + rng.Uniform(10000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableLookupMiss);

void BM_PageTableInsertErase(benchmark::State& state) {
  PageTable table(128);
  PageId p = 0;
  for (auto _ : state) {
    table.Insert(p, 0);
    table.Erase(p, 0);
    ++p;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageTableInsertErase);

}  // namespace
}  // namespace bpw
