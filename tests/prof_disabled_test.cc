// Compile-time coverage for the BPW_PROF=0 macro surface.
//
// This TU forces BPW_PROF=0 *before* including the profiler header, so the
// disabled expansions of BPW_PROF_SITE / BPW_PROF_PHASE are compiled and
// exercised even in a default (profiler-on) build — the branch a
// -DBPW_PROF=0 release build lives on is never allowed to rot. Only
// obs/contention_profiler.h may be included here: it carries no inline
// function whose body changes with BPW_PROF, so redefining the macro for
// one TU is ODR-safe. (The lock headers are exactly what must NOT be
// included: their inline hot paths compile differently per BPW_PROF, and
// the build-wide CMake option is the only sanctioned way to flip them.)
#define BPW_PROF 0
#include "obs/contention_profiler.h"

#include "gtest/gtest.h"

namespace bpw {
namespace obs {
namespace {

static_assert(BPW_PROF == 0, "this TU must compile the disabled macros");

TEST(ProfDisabledTest, SiteMacroYieldsInvalidSite) {
  const ProfSiteId site = BPW_PROF_SITE("disabled.site");
  EXPECT_EQ(site, kInvalidProfSite);
}

TEST(ProfDisabledTest, PhaseMacroIsAStatementNoOp) {
  // Must compile in statement position, nest, and register nothing.
  {
    BPW_PROF_PHASE("disabled.outer");
    {
      BPW_PROF_PHASE("disabled.inner");
    }
  }
  const ProfSnapshot snap = CollectProfSnapshot();
  EXPECT_EQ(snap.Find("disabled.outer"), nullptr);
  EXPECT_EQ(snap.Find("disabled.inner"), nullptr);
  EXPECT_EQ(snap.Find("disabled.outer;disabled.inner"), nullptr);
}

TEST(ProfDisabledTest, RecordingIntoInvalidSiteIsSafe) {
  // The runtime entry points stay linkable and reject the invalid id, so
  // code written against the macros needs no conditionals of its own.
  SetProfilerEnabled(true);
  ProfRecordAcquire(kInvalidProfSite, true, 123);
  ProfRecordHold(kInvalidProfSite, 456);
  ProfWaiterEnter(kInvalidProfSite);
  ProfWaiterExit(kInvalidProfSite);
  SetProfilerEnabled(false);
  const ProfSnapshot snap = CollectProfSnapshot();
  EXPECT_EQ(snap.TotalLockNanos(), 0u);
}

TEST(ProfDisabledTest, PhaseMacroWorksInsideIfWithoutBraces) {
  // The do/while(0) expansion must behave as one statement.
  const bool flag = true;
  if (flag) BPW_PROF_PHASE("disabled.branch");
  EXPECT_EQ(CollectProfSnapshot().Find("disabled.branch"), nullptr);
}

}  // namespace
}  // namespace obs
}  // namespace bpw
