// Self-tests for bpw_lint, the lock-discipline linter. Each test feeds the
// library a snippet shaped like real coordinator code and checks that the
// seeded violation (and only it) is flagged. The two seeded cases required
// by the acceptance bar — prefetch issued after Lock() and heap allocation
// inside the critical section — are the first two tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace bpw {
namespace lint {
namespace {

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

bool Has(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

std::string Dump(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) out += FormatFinding(f) + "\n";
  return out;
}

TEST(LintTest, SeededPrefetchAfterLockIsFlagged) {
  const char* src = R"cpp(
void BpWrapper::OnHit(AccessQueue& queue) {
  ContentionLockGuard guard(lock_);
  PrefetchForCommit(queue);
  CommitLocked(queue);
}
)cpp";
  auto findings = LintSource("seed.cc", src);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "prefetch-in-critical-section");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintTest, SeededAllocationInCriticalSectionIsFlagged) {
  const char* src = R"cpp(
void SharedQueue::CommitLocked() {
  std::vector<Entry> batch;
  batch.reserve(64);
  Replay(batch);
}
)cpp";
  auto findings = LintSource("seed.cc", src);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "critical-section-alloc");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintTest, PrefetchBeforeLockIsClean) {
  const char* src = R"cpp(
void BpWrapper::OnHit(AccessQueue& queue) {
  PrefetchForCommit(queue);
  if (lock_.TryLock()) {
    ContentionLockAdoptGuard guard(lock_);
    CommitLocked(queue);
    return;
  }
  ContentionLockGuard guard(lock_);
  CommitLocked(queue);
}
)cpp";
  auto findings = LintSource("clean.cc", src);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(LintTest, GuardScopeEndsWithItsBlock) {
  // The guard lives in the TryLock block; the allocation after the block
  // is outside the critical section.
  const char* src = R"cpp(
void Commit() {
  if (lock_.TryLock()) {
    ContentionLockAdoptGuard guard(lock_);
    Replay();
  }
  buffer_.reserve(64);
  ContentionLockGuard guard(lock_);
}
)cpp";
  auto findings = LintSource("scope.cc", src);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(LintTest, ClockReadUnderLockIsFlagged) {
  const char* src = R"cpp(
void Commit() {
  ContentionLockGuard guard(lock_);
  const uint64_t now = NowNanos();
  Replay(now);
}
)cpp";
  auto findings = LintSource("clock.cc", src);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "clock-read-in-critical-section");
}

TEST(LintTest, ProfPhaseMacroUnderLockIsSanctioned) {
  // BPW_PROF_* macros are the blessed way to measure inside a critical
  // section: their clock reads are the measurement itself and compile out
  // under -DBPW_PROF=0, so the commit-phase breakdown stays lintable.
  const char* src = R"cpp(
void Commit() {
  ContentionLockGuard guard(lock_);
  BPW_PROF_PHASE("commit");
  {
    BPW_PROF_PHASE("replay");
    Replay();
  }
}
)cpp";
  auto findings = LintSource("prof_macro.cc", src);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(LintTest, RawProfilerPrimitiveUnderLockIsFlagged) {
  // The exemption is scoped to the macro spelling: constructing the RAII
  // scope (or calling the record functions) directly cannot compile out at
  // the call site, so under a lock it is a clock read like any other.
  const char* src = R"cpp(
void Commit() {
  ContentionLockGuard guard(lock_);
  obs::ScopedProfPhase phase(site_);
  obs::ProfRecordHold(site_, 100);
  Replay();
}
)cpp";
  auto findings = LintSource("prof_raw.cc", src);
  ASSERT_EQ(findings.size(), 2u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "clock-read-in-critical-section");
  EXPECT_EQ(findings[1].rule, "clock-read-in-critical-section");
}

TEST(LintTest, RawClockStaysFlaggedNextToProfMacro) {
  // The macro exempts its own line only — a raw NowNanos() elsewhere in
  // the same critical section is still a violation.
  const char* src = R"cpp(
void Commit() {
  ContentionLockGuard guard(lock_);
  BPW_PROF_PHASE("commit");
  const uint64_t now = NowNanos();
  Replay(now);
}
)cpp";
  auto findings = LintSource("prof_mixed.cc", src);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "clock-read-in-critical-section");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(LintTest, LoggingUnderLockIsFlagged) {
  const char* src = R"cpp(
void Commit() {
  ContentionLockGuard guard(lock_);
  BPW_LOG_ERROR << "inside the critical section";
}
)cpp";
  auto findings = LintSource("log.cc", src);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "logging-in-critical-section");
}

TEST(LintTest, ManualLockUnlockSpanIsTracked) {
  const char* src = R"cpp(
void Manual() {
  lock_.Lock();
  scratch_.push_back(1);
  lock_.Unlock();
  scratch_.push_back(2);
}
)cpp";
  auto findings = LintSource("manual.cc", src);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "critical-section-alloc");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintTest, LockedSuffixFunctionsAreCriticalSections) {
  const char* src = R"cpp(
void Coordinator::ReplayLocked() {
  entries_.push_back(Entry{});
}
void Coordinator::Replay() {
  entries_.push_back(Entry{});
}
)cpp";
  auto findings = LintSource("locked.cc", src);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintTest, DiscardedTryLockIsFlagged) {
  const char* src = R"cpp(
void Broken() {
  lock_.TryLock();
  lock_.Lock();
  lock_.Unlock();
}
)cpp";
  auto findings = LintSource("trylock.cc", src);
  EXPECT_TRUE(Has(findings, "trylock-unchecked")) << Dump(findings);
}

TEST(LintTest, TryLockWithoutFallbackIsFlagged) {
  const char* src = R"cpp(
void NoFallback(AccessQueue& queue) {
  if (lock_.TryLock()) {
    ContentionLockAdoptGuard guard(lock_);
    CommitLocked(queue);
  }
}
)cpp";
  // The adopt guard counts as handling the success path, so this
  // particular shape is accepted; removing the guard and the blocking
  // fallback must flag.
  const char* bare = R"cpp(
bool Poll() {
  if (lock_.TryLock()) {
    commit();
    unlock();
  }
  return false;
}
)cpp";
  auto findings = LintSource("bare.cc", bare);
  EXPECT_TRUE(Has(findings, "trylock-no-fallback")) << Dump(findings);
  findings = LintSource("guarded.cc", src);
  EXPECT_FALSE(Has(findings, "trylock-no-fallback")) << Dump(findings);
}

TEST(LintTest, AllowCommentSuppresses) {
  const char* src = R"cpp(
void CommitLocked() {
  // Traced commits time themselves; see the design note.
  // bpw-lint-allow(clock-read-in-critical-section)
  const uint64_t start = NowNanos();
  Replay(start);
}
)cpp";
  auto findings = LintSource("allow.cc", src);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(LintTest, AllowOnlySilencesTheNamedRule) {
  const char* src = R"cpp(
void CommitLocked() {
  // bpw-lint-allow(clock-read-in-critical-section)
  scratch_.push_back(NowNanos());
}
)cpp";
  auto findings = LintSource("allow2.cc", src);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "critical-section-alloc");
}

TEST(LintTest, CommentsAndStringsAreIgnored) {
  const char* src = R"cpp(
void Commit() {
  ContentionLockGuard guard(lock_);
  // NowNanos() in a comment is fine
  Log("calling NowNanos() by name in a string is fine");
  /* batch.reserve(64) in a block comment too */
}
)cpp";
  auto findings = LintSource("comments.cc", src);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(LintTest, RawMutexIsFlaggedInLibraryCode) {
  const char* src = R"cpp(
class Pool {
  std::mutex mu_;
  std::condition_variable_any cv_;
};
void Wait(std::unique_lock<std::mutex>& lk);
)cpp";
  auto findings = LintSource("src/buffer/pool.h", src);
  ASSERT_EQ(findings.size(), 2u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "raw-mutex");
  EXPECT_EQ(findings[0].line, 3) << "condition_variable_any is allowed "
                                    "(it waits on the annotated Mutex)";
  EXPECT_EQ(findings[1].line, 6);
}

TEST(LintTest, RawMutexIsScopedToSrcOutsideSync) {
  const char* src = R"cpp(
std::mutex mu_;
)cpp";
  EXPECT_TRUE(LintSource("src/sync/mutex.h", src).empty())
      << "the wrappers themselves live in src/sync/";
  EXPECT_TRUE(LintSource("tests/foo_test.cc", src).empty());
  EXPECT_TRUE(LintSource("tools/bpw_run.cc", src).empty());
  EXPECT_FALSE(LintSource("src/mc/sched.h", src).empty());
  EXPECT_FALSE(LintSource("/abs/path/src/core/x.cc", src).empty());
  EXPECT_TRUE(LintSource("mysrc/core/x.cc", src).empty())
      << "\"src/\" must match a whole path component";
}

TEST(LintTest, FileLevelAllowSuppressesEverywhereInTheFile) {
  const char* src = R"cpp(
// The monitor must not re-enter the instrumented wrappers.
// bpw-lint-allow-file(raw-mutex)
class Sched {
  std::mutex mu_;
};
std::unique_lock<std::mutex> Lk();
)cpp";
  auto findings = LintSource("src/mc/sched.h", src);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(LintTest, FileLevelAllowOnlySilencesTheNamedRule) {
  const char* src = R"cpp(
// bpw-lint-allow-file(raw-mutex)
void CommitLocked() {
  std::mutex mu;
  scratch_.push_back(1);
}
)cpp";
  auto findings = LintSource("src/core/x.cc", src);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "critical-section-alloc");
}

TEST(LintTest, LockWithoutSchedulePointIsFlagged) {
  const char* src = R"cpp(
void Coordinator::OnHit(AccessQueue& queue) {
  if (lock_.TryLock()) {
    ContentionLockAdoptGuard guard(lock_);
    CommitLocked(queue);
    return;
  }
  ContentionLockGuard guard(lock_);
  CommitLocked(queue);
}
)cpp";
  auto findings = LintSource("src/core/coordinator.cc", src);
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "lock-no-schedule-point");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintTest, AnyScheduleMarkerSatisfiesTheLockRule) {
  const char* with_point = R"cpp(
void OnHit(AccessQueue& queue) {
  BPW_SCHEDULE_POINT("hit.before_trylock");
  if (lock_.TryLock()) {
    ContentionLockAdoptGuard guard(lock_);
    CommitLocked(queue);
    return;
  }
  ContentionLockGuard guard(lock_);
  CommitLocked(queue);
}
)cpp";
  const char* with_access = R"cpp(
void Drain() {
  lock_.Lock();
  BPW_MC_ACCESS_WRITE("queue", &queue_);
  lock_.Unlock();
}
)cpp";
  EXPECT_FALSE(Has(LintSource("src/core/a.cc", with_point),
                   "lock-no-schedule-point"));
  EXPECT_FALSE(Has(LintSource("src/core/b.cc", with_access),
                   "lock-no-schedule-point"));
}

TEST(LintTest, LockRuleIsScopedAndSuppressible) {
  const char* src = R"cpp(
void Drain() {
  lock_.Lock();
  Replay();
  lock_.Unlock();
}
)cpp";
  EXPECT_TRUE(Has(LintSource("src/core/c.cc", src), "lock-no-schedule-point"));
  EXPECT_FALSE(Has(LintSource("src/sync/c.cc", src),
                   "lock-no-schedule-point"));
  EXPECT_FALSE(Has(LintSource("tools/c.cc", src), "lock-no-schedule-point"));
  const char* allowed = R"cpp(
void Drain() {
  // startup path, runs before any worker exists
  // bpw-lint-allow(lock-no-schedule-point)
  lock_.Lock();
  Replay();
  lock_.Unlock();
}
)cpp";
  EXPECT_FALSE(Has(LintSource("src/core/c.cc", allowed),
                   "lock-no-schedule-point"));
}

TEST(LintTest, SeededPostCommitBookkeepingUnderLockIsFlagged) {
  // The anti-pattern the combining coordinator's early-release split
  // exists to remove: replay done, but the relaxed counters and the trace
  // emission still sit inside the critical section.
  const char* src = R"cpp(
void Coordinator::CommitLocked(AccessQueue& queue) {
  Replay(queue);
  commit_batches_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceEmit(obs::TraceEventKind::kBatchCommit, start, dur, n);
}
)cpp";
  auto findings = LintSource("src/core/seed.cc", src);
  ASSERT_EQ(findings.size(), 2u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "post-commit-under-lock");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_EQ(findings[1].rule, "post-commit-under-lock");
  EXPECT_EQ(findings[1].line, 5);
}

TEST(LintTest, BookkeepingAfterEarlyReleaseIsClean) {
  // The fixed shape: apply under the lock, Unlock(), then count and emit.
  const char* src = R"cpp(
void Coordinator::CombineAndRelease(Slot* slot) {
  lock_.Lock();
  ApplyLocked(slot);
  lock_.Unlock();
  BPW_SCHEDULE_POINT("combining.post_commit");
  commit_batches_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceEmit(obs::TraceEventKind::kBatchCommit, start, dur, n);
}
)cpp";
  auto findings = LintSource("src/core/clean.cc", src);
  EXPECT_FALSE(Has(findings, "post-commit-under-lock")) << Dump(findings);
}

TEST(LintTest, PostCommitRuleIsScopedToLibraryCode) {
  // Tests and tools legitimately poke counters under locks they own; the
  // rule polices the library's commit path only.
  const char* src = R"cpp(
void HarnessLocked() {
  observed_.fetch_add(1, std::memory_order_relaxed);
}
)cpp";
  EXPECT_TRUE(Has(LintSource("src/core/x.cc", src),
                  "post-commit-under-lock"));
  EXPECT_FALSE(Has(LintSource("tests/stress/x.cc", src),
                   "post-commit-under-lock"));
  EXPECT_FALSE(Has(LintSource("tools/x.cc", src),
                   "post-commit-under-lock"));
  EXPECT_FALSE(Has(LintSource("src/sync/x.cc", src),
                   "post-commit-under-lock"))
      << "the lock's own instrumentation counters live in src/sync/";
}

TEST(LintTest, PostCommitRuleIsSuppressible) {
  // pgBat/pgBatPre keep bookkeeping under the lock on purpose (they are
  // the baseline the early-release split is measured against) and carry
  // exactly this annotation.
  const char* src = R"cpp(
void Coordinator::CommitLocked(AccessQueue& queue) {
  Replay(queue);
  // baseline semantics: bookkeeping stays in the measured span
  // bpw-lint-allow(post-commit-under-lock)
  commit_batches_.fetch_add(1, std::memory_order_relaxed);
}
)cpp";
  auto findings = LintSource("src/core/allowed.cc", src);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(LintTest, FormatFindingIsStable) {
  Finding f{"a.cc", 12, "critical-section-alloc", "msg"};
  EXPECT_EQ(FormatFinding(f), "a.cc:12: [critical-section-alloc] msg");
}

TEST(LintTest, RulesHelperSeesEveryFinding) {
  const char* src = R"cpp(
void CommitLocked() {
  scratch_.push_back(NowNanos());
}
)cpp";
  auto findings = LintSource("multi.cc", src);
  auto rules = Rules(findings);
  EXPECT_EQ(rules.size(), 2u) << Dump(findings);
}

// --- tokenizer hardening: the linter rides the shared lexer, so literal
// --- contents, raw strings, and spliced macros must never look like code.

TEST(LintTest, AllocWordsInsideStringLiteralsAreNotCode) {
  const char* src = R"cpp(
void Pool::CommitLocked() {
  Log("new std::vector<Entry> malloc push_back reserve");
  Apply();
}
)cpp";
  auto findings = LintSource("src/core/pool.cc", src);
  EXPECT_FALSE(Has(findings, "critical-section-alloc")) << Dump(findings);
}

TEST(LintTest, RawStringBodySpanningLinesIsInvisibleToRules) {
  // The raw string holds both an allocation spelling and a clock call; a
  // naive line scanner would flag both lines.
  const char* src =
      "void Pool::CommitLocked() {\n"
      "  const char* doc = R\"txt(\n"
      "    batch.reserve(64); new Entry;\n"
      "    NowNanos();\n"
      "  )txt\";\n"
      "  Apply(doc);\n"
      "}\n";
  auto findings = LintSource("src/core/pool.cc", src);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(LintTest, AllowCommentInsideAStringDoesNotSuppress) {
  const char* src = R"cpp(
void Pool::CommitLocked() {
  Log("// bpw-lint-allow(critical-section-alloc)");
  batch_.push_back(1);
}
)cpp";
  auto findings = LintSource("src/core/pool.cc", src);
  EXPECT_TRUE(Has(findings, "critical-section-alloc")) << Dump(findings);
}

TEST(LintTest, SplicedMacroDefinitionIsNotScannedAsCode) {
  // A line-continuation macro whose body allocates must not be attributed
  // to the surrounding function.
  const char* src =
      "#define POOL_GROW(v) \\\n"
      "  (v).push_back(new Entry)\n"
      "void Pool::CommitLocked() {\n"
      "  Apply();\n"
      "}\n";
  auto findings = LintSource("src/core/pool.cc", src);
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(LintTest, EscapedQuoteCharLiteralKeepsLaterLinesLive) {
  // If the lexer derailed on '\'' the later allocation would be blanked
  // out along with everything else.
  const char* src = R"cpp(
void Pool::CommitLocked() {
  char sep = '\'';
  (void)sep;
  batch_.push_back(1);
}
)cpp";
  auto findings = LintSource("src/core/pool.cc", src);
  EXPECT_TRUE(Has(findings, "critical-section-alloc")) << Dump(findings);
}

}  // namespace
}  // namespace lint
}  // namespace bpw
