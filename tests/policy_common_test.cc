// Property tests that every replacement policy must pass, parameterized
// over all nine algorithms. These pin down the ReplacementPolicy contract
// the coordinators (and therefore BP-Wrapper) rely on:
//   - capacity is never exceeded, resident accounting is exact
//   - ChooseVictim returns a page that was resident and detaches it
//   - the evictability predicate is always honoured (pinned pages survive)
//   - stale OnHit calls are no-ops (required for batched commits)
//   - behaviour is deterministic for a fixed operation sequence
//   - CheckInvariants holds after every kind of mutation
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "policy/policy_factory.h"
#include "util/random.h"

namespace bpw {
namespace {

constexpr size_t kFrames = 32;

class PolicyTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<ReplacementPolicy> MakePolicy(size_t frames = kFrames) {
    auto policy = CreatePolicy(GetParam(), frames);
    EXPECT_TRUE(policy.ok()) << policy.status().ToString();
    return std::move(policy).value();
  }

  static ReplacementPolicy::EvictableFn AllEvictable() {
    return [](FrameId) { return true; };
  }
};

// A shadow model of buffer residency: page -> frame, frame -> page.
struct ShadowPool {
  std::map<PageId, FrameId> page_to_frame;
  std::map<FrameId, PageId> frame_to_page;
  std::vector<FrameId> free_frames;

  explicit ShadowPool(size_t frames) {
    for (size_t i = frames; i-- > 0;) {
      free_frames.push_back(static_cast<FrameId>(i));
    }
  }

  bool resident(PageId p) const { return page_to_frame.count(p) > 0; }
  FrameId frame_of(PageId p) const { return page_to_frame.at(p); }
  bool full() const { return free_frames.empty(); }

  FrameId Insert(PageId p) {
    FrameId f = free_frames.back();
    free_frames.pop_back();
    page_to_frame[p] = f;
    frame_to_page[f] = p;
    return f;
  }

  void Evict(PageId p) {
    FrameId f = page_to_frame.at(p);
    page_to_frame.erase(p);
    frame_to_page.erase(f);
    free_frames.push_back(f);
  }
};

// Drives one access against policy + shadow, evicting when needed.
void Access(ReplacementPolicy& policy, ShadowPool& shadow, PageId page,
            const ReplacementPolicy::EvictableFn& evictable) {
  if (shadow.resident(page)) {
    policy.OnHit(page, shadow.frame_of(page));
    return;
  }
  if (shadow.full()) {
    auto victim = policy.ChooseVictim(evictable, page);
    ASSERT_TRUE(victim.ok()) << victim.status().ToString();
    ASSERT_TRUE(shadow.resident(victim->page))
        << "policy evicted a non-resident page";
    ASSERT_EQ(shadow.frame_of(victim->page), victim->frame)
        << "policy returned wrong frame for victim";
    shadow.Evict(victim->page);
  }
  FrameId frame = shadow.Insert(page);
  policy.OnMiss(page, frame);
}

TEST_P(PolicyTest, StartsEmpty) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  EXPECT_EQ(policy->resident_count(), 0u);
  EXPECT_EQ(policy->num_frames(), kFrames);
  EXPECT_TRUE(policy->CheckInvariants().ok());
  EXPECT_FALSE(policy->IsResident(0));
}

TEST_P(PolicyTest, NameMatchesFactoryKey) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  EXPECT_EQ(policy->name(), GetParam());
}

TEST_P(PolicyTest, VictimOnEmptyIsResourceExhausted) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  auto victim = policy->ChooseVictim(AllEvictable(), 123);
  ASSERT_FALSE(victim.ok());
  EXPECT_EQ(victim.status().code(), StatusCode::kResourceExhausted);
}

TEST_P(PolicyTest, FillToCapacity) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  for (PageId p = 0; p < kFrames; ++p) {
    policy->OnMiss(p, static_cast<FrameId>(p));
    EXPECT_EQ(policy->resident_count(), p + 1);
    ASSERT_TRUE(policy->CheckInvariants().ok())
        << policy->CheckInvariants().ToString();
  }
  for (PageId p = 0; p < kFrames; ++p) {
    EXPECT_TRUE(policy->IsResident(p));
  }
}

TEST_P(PolicyTest, EvictInsertCycleKeepsCapacityExact) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  ShadowPool shadow(kFrames);
  for (PageId p = 0; p < kFrames; ++p) Access(*policy, shadow, p, AllEvictable());
  for (PageId p = kFrames; p < kFrames * 20; ++p) {
    Access(*policy, shadow, p, AllEvictable());
    ASSERT_EQ(policy->resident_count(), kFrames);
    if (p % 7 == 0) {
      ASSERT_TRUE(policy->CheckInvariants().ok())
          << policy->CheckInvariants().ToString();
    }
  }
}

TEST_P(PolicyTest, VictimNoLongerResident) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  ShadowPool shadow(kFrames);
  for (PageId p = 0; p < kFrames; ++p) Access(*policy, shadow, p, AllEvictable());
  auto victim = policy->ChooseVictim(AllEvictable(), 999);
  ASSERT_TRUE(victim.ok());
  EXPECT_FALSE(policy->IsResident(victim->page));
  EXPECT_EQ(policy->resident_count(), kFrames - 1);
}

TEST_P(PolicyTest, StaleHitWrongPageIsNoop) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  for (PageId p = 0; p < kFrames; ++p) {
    policy->OnMiss(p, static_cast<FrameId>(p));
  }
  // Frame 3 holds page 3; a batched commit might deliver a stale hit for a
  // page long gone.
  policy->OnHit(/*page=*/7777, /*frame=*/3);
  EXPECT_EQ(policy->resident_count(), kFrames);
  EXPECT_TRUE(policy->CheckInvariants().ok());
  EXPECT_FALSE(policy->IsResident(7777));
}

TEST_P(PolicyTest, StaleHitOutOfRangeFrameIsNoop) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  policy->OnMiss(1, 0);
  policy->OnHit(1, static_cast<FrameId>(kFrames + 5));
  policy->OnHit(1, kInvalidFrameId);
  EXPECT_EQ(policy->resident_count(), 1u);
  EXPECT_TRUE(policy->CheckInvariants().ok());
}

TEST_P(PolicyTest, HitAfterEvictionIsNoop) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  ShadowPool shadow(kFrames);
  for (PageId p = 0; p < kFrames; ++p) Access(*policy, shadow, p, AllEvictable());
  auto victim = policy->ChooseVictim(AllEvictable(), 1000);
  ASSERT_TRUE(victim.ok());
  // Deliver the late hit for the evicted page on its old frame.
  policy->OnHit(victim->page, victim->frame);
  EXPECT_FALSE(policy->IsResident(victim->page));
  EXPECT_TRUE(policy->CheckInvariants().ok());
}

TEST_P(PolicyTest, EvictableFilterIsHonoured) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  for (PageId p = 0; p < kFrames; ++p) {
    policy->OnMiss(p, static_cast<FrameId>(p));
  }
  // Pin frames 0..kFrames/2.
  const FrameId pin_limit = kFrames / 2;
  auto evictable = [pin_limit](FrameId f) { return f >= pin_limit; };
  std::set<FrameId> evicted;
  for (size_t i = 0; i < kFrames - pin_limit; ++i) {
    auto victim = policy->ChooseVictim(evictable, 5000 + i);
    ASSERT_TRUE(victim.ok()) << victim.status().ToString();
    EXPECT_GE(victim->frame, pin_limit) << "evicted a pinned frame";
    EXPECT_TRUE(evicted.insert(victim->frame).second)
        << "same frame evicted twice";
    ASSERT_TRUE(policy->CheckInvariants().ok());
  }
  // Now everything remaining is pinned.
  auto none = policy->ChooseVictim(evictable, 9999);
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(policy->resident_count(), pin_limit);
}

TEST_P(PolicyTest, EraseRemovesResident) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  for (PageId p = 0; p < 10; ++p) {
    policy->OnMiss(p, static_cast<FrameId>(p));
  }
  policy->OnErase(4, 4);
  EXPECT_FALSE(policy->IsResident(4));
  EXPECT_EQ(policy->resident_count(), 9u);
  EXPECT_TRUE(policy->CheckInvariants().ok());
}

TEST_P(PolicyTest, EraseUnknownAndDoubleEraseAreNoops) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  policy->OnErase(55, 3);  // never inserted
  EXPECT_TRUE(policy->CheckInvariants().ok());
  policy->OnMiss(1, 0);
  policy->OnErase(1, 0);
  policy->OnErase(1, 0);  // double erase
  EXPECT_EQ(policy->resident_count(), 0u);
  EXPECT_TRUE(policy->CheckInvariants().ok());
}

TEST_P(PolicyTest, EraseWrongFrameIsNoop) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  policy->OnMiss(1, 0);
  policy->OnMiss(2, 1);
  policy->OnErase(1, /*frame=*/1);  // page 1 lives in frame 0, not 1
  EXPECT_TRUE(policy->IsResident(1));
  EXPECT_EQ(policy->resident_count(), 2u);
}

TEST_P(PolicyTest, ReuseFrameAfterErase) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  policy->OnMiss(1, 0);
  policy->OnErase(1, 0);
  policy->OnMiss(2, 0);
  EXPECT_TRUE(policy->IsResident(2));
  EXPECT_FALSE(policy->IsResident(1));
  EXPECT_TRUE(policy->CheckInvariants().ok());
}

TEST_P(PolicyTest, SingleFramePolicyWorks) {
  auto policy = MakePolicy(1);
  policy->AssertExclusiveAccess();
  ShadowPool shadow(1);
  for (PageId p = 0; p < 50; ++p) {
    Access(*policy, shadow, p % 5, AllEvictable());
    ASSERT_LE(policy->resident_count(), 1u);
    ASSERT_TRUE(policy->CheckInvariants().ok())
        << policy->CheckInvariants().ToString();
  }
}

TEST_P(PolicyTest, DeterministicVictimSequence) {
  auto run = [&](std::vector<PageId>& victims) {
    auto policy = MakePolicy();
    policy->AssertExclusiveAccess();
    ShadowPool shadow(kFrames);
    Random rng(99);
    for (int i = 0; i < 2000; ++i) {
      const PageId page = rng.Uniform(kFrames * 3);
      if (shadow.resident(page)) {
        policy->OnHit(page, shadow.frame_of(page));
      } else {
        if (shadow.full()) {
          auto victim = policy->ChooseVictim(AllEvictable(), page);
          ASSERT_TRUE(victim.ok());
          victims.push_back(victim->page);
          shadow.Evict(victim->page);
        }
        policy->OnMiss(page, shadow.Insert(page));
      }
    }
  };
  std::vector<PageId> first, second;
  run(first);
  run(second);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST_P(PolicyTest, RandomizedFuzzAgainstShadowModel) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  ShadowPool shadow(kFrames);
  Random rng(12345);
  for (int step = 0; step < 20000; ++step) {
    const uint64_t op = rng.Uniform(100);
    if (op < 70) {
      // Access a page, skewed to a small working set.
      const PageId page = rng.Bernoulli(0.7) ? rng.Uniform(kFrames)
                                             : rng.Uniform(kFrames * 8);
      Access(*policy, shadow, page, AllEvictable());
    } else if (op < 85 && !shadow.page_to_frame.empty()) {
      // Erase a random resident page.
      auto it = shadow.page_to_frame.begin();
      std::advance(it, rng.Uniform(shadow.page_to_frame.size()));
      policy->OnErase(it->first, it->second);
      shadow.Evict(it->first);
    } else if (shadow.full()) {
      // Spontaneous eviction (as the pool would on demand).
      auto victim = policy->ChooseVictim(AllEvictable(), 1 << 20);
      ASSERT_TRUE(victim.ok());
      shadow.Evict(victim->page);
    }
    ASSERT_EQ(policy->resident_count(), shadow.page_to_frame.size());
    if (step % 500 == 0) {
      ASSERT_TRUE(policy->CheckInvariants().ok())
          << policy->CheckInvariants().ToString();
      for (const auto& [page, frame] : shadow.page_to_frame) {
        ASSERT_TRUE(policy->IsResident(page)) << "page " << page;
      }
    }
  }
  EXPECT_TRUE(policy->CheckInvariants().ok());
}

TEST_P(PolicyTest, PrefetchHintNeverCrashes) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  // Empty policy, all frames.
  for (FrameId f = 0; f <= kFrames + 2; ++f) policy->PrefetchHint(f);
  for (PageId p = 0; p < kFrames; ++p) {
    policy->OnMiss(p, static_cast<FrameId>(p));
  }
  for (FrameId f = 0; f <= kFrames + 2; ++f) policy->PrefetchHint(f);
  auto victim = policy->ChooseVictim([](FrameId) { return true; }, 500);
  ASSERT_TRUE(victim.ok());
  policy->PrefetchHint(victim->frame);  // hint for an unbound frame
  SUCCEED();
}

TEST_P(PolicyTest, HitsDoNotChangeResidency) {
  auto policy = MakePolicy();
  policy->AssertExclusiveAccess();
  for (PageId p = 0; p < kFrames; ++p) {
    policy->OnMiss(p, static_cast<FrameId>(p));
  }
  Random rng(4);
  for (int i = 0; i < 5000; ++i) {
    const PageId page = rng.Uniform(kFrames);
    policy->OnHit(page, static_cast<FrameId>(page));
  }
  EXPECT_EQ(policy->resident_count(), kFrames);
  for (PageId p = 0; p < kFrames; ++p) EXPECT_TRUE(policy->IsResident(p));
  EXPECT_TRUE(policy->CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::ValuesIn(KnownPolicies()),
                         [](const auto& info) {
                           std::string name = info.param;
                           if (name == "2q") return std::string("twoq");
                           return name;
                         });

TEST(PolicyFactoryTest, UnknownNameRejected) {
  auto policy = CreatePolicy("not-a-policy", 16);
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kInvalidArgument);
}

TEST(PolicyFactoryTest, ZeroFramesRejected) {
  auto policy = CreatePolicy("lru", 0);
  ASSERT_FALSE(policy.ok());
}

TEST(PolicyFactoryTest, KnownPoliciesAllConstruct) {
  for (const auto& name : KnownPolicies()) {
    auto policy = CreatePolicy(name, 8);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ(policy.value()->name(), name);
  }
}

}  // namespace
}  // namespace bpw
