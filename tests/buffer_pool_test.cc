// Single-threaded functional tests for the buffer pool: hit/miss paths,
// pinning, eviction, dirty write-back, drop, and integrity.
#include <gtest/gtest.h>

#include "buffer/buffer_pool.h"
#include "core/serialized_coordinator.h"
#include "policy/lru.h"

namespace bpw {
namespace {

constexpr size_t kPageSize = 1024;

std::unique_ptr<BufferPool> MakePool(StorageEngine* storage,
                                     size_t num_frames) {
  BufferPoolConfig config;
  config.num_frames = num_frames;
  config.page_size = kPageSize;
  auto coordinator = std::make_unique<SerializedCoordinator>(
      std::make_unique<LruPolicy>(num_frames));
  return std::make_unique<BufferPool>(config, storage,
                                      std::move(coordinator));
}

TEST(BufferPoolTest, FirstFetchIsMissSecondIsHit) {
  StorageEngine storage(64, kPageSize);
  auto pool = MakePool(&storage, 8);
  auto session = pool->CreateSession();

  auto h1 = pool->FetchPage(*session, 5);
  ASSERT_TRUE(h1.ok()) << h1.status().ToString();
  h1.value().Release();
  EXPECT_EQ(session->stats().misses, 1u);
  EXPECT_EQ(session->stats().hits, 0u);

  auto h2 = pool->FetchPage(*session, 5);
  ASSERT_TRUE(h2.ok());
  h2.value().Release();
  EXPECT_EQ(session->stats().hits, 1u);
}

TEST(BufferPoolTest, FetchReadsStorageContent) {
  StorageEngine storage(64, kPageSize);
  auto pool = MakePool(&storage, 8);
  auto session = pool->CreateSession();
  auto handle = pool->FetchPage(*session, 9);
  ASSERT_TRUE(handle.ok());
  auto [word, version] = StorageEngine::ReadStamp(handle.value().data());
  EXPECT_EQ(version, 0u);
  EXPECT_EQ(word, storage.VerificationWord(9));
}

TEST(BufferPoolTest, InvalidPageRejected) {
  StorageEngine storage(16, kPageSize);
  auto pool = MakePool(&storage, 8);
  auto session = pool->CreateSession();
  auto handle = pool->FetchPage(*session, 999);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
}

TEST(BufferPoolTest, EvictionHappensWhenFull) {
  StorageEngine storage(64, kPageSize);
  auto pool = MakePool(&storage, 4);
  auto session = pool->CreateSession();
  for (PageId p = 0; p < 8; ++p) {
    auto handle = pool->FetchPage(*session, p);
    ASSERT_TRUE(handle.ok()) << "page " << p;
  }
  EXPECT_EQ(session->stats().misses, 8u);
  EXPECT_EQ(pool->evictions(), 4u);
  EXPECT_TRUE(pool->CheckIntegrity().ok());
  // LRU: pages 4..7 resident; page 0 must re-miss.
  session->ResetStats();
  auto handle = pool->FetchPage(*session, 0);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(session->stats().misses, 1u);
}

TEST(BufferPoolTest, PinnedPageIsNotEvicted) {
  StorageEngine storage(64, kPageSize);
  auto pool = MakePool(&storage, 2);
  auto session = pool->CreateSession();
  auto pinned = pool->FetchPage(*session, 0);
  ASSERT_TRUE(pinned.ok());
  // Fill and churn the other frame repeatedly.
  for (PageId p = 1; p < 6; ++p) {
    auto h = pool->FetchPage(*session, p);
    ASSERT_TRUE(h.ok());
  }
  // Page 0 must still be a hit (it was pinned the whole time).
  session->ResetStats();
  auto again = pool->FetchPage(*session, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(session->stats().hits, 1u);
  pinned.value().Release();
}

TEST(BufferPoolTest, AllPinnedFetchFails) {
  StorageEngine storage(64, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 2;
  config.page_size = kPageSize;
  config.eviction_retries = 2;  // fail fast
  auto pool = std::make_unique<BufferPool>(
      config, &storage,
      std::make_unique<SerializedCoordinator>(std::make_unique<LruPolicy>(2)));
  auto session = pool->CreateSession();
  auto h0 = pool->FetchPage(*session, 0);
  auto h1 = pool->FetchPage(*session, 1);
  ASSERT_TRUE(h0.ok());
  ASSERT_TRUE(h1.ok());
  auto h2 = pool->FetchPage(*session, 2);
  ASSERT_FALSE(h2.ok());
  EXPECT_EQ(h2.status().code(), StatusCode::kResourceExhausted);
  h0.value().Release();
  h1.value().Release();
  // After releasing, the fetch succeeds.
  auto h3 = pool->FetchPage(*session, 2);
  EXPECT_TRUE(h3.ok());
}

TEST(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  StorageEngine storage(64, kPageSize);
  auto pool = MakePool(&storage, 2);
  auto session = pool->CreateSession();
  {
    auto handle = pool->FetchPage(*session, 3);
    ASSERT_TRUE(handle.ok());
    StorageEngine::StampPage(handle.value().data(), kPageSize, 3, 77);
    handle.value().MarkDirty();
  }
  // Evict page 3 by filling the pool.
  for (PageId p = 10; p < 14; ++p) {
    auto h = pool->FetchPage(*session, p);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_GE(pool->writebacks(), 1u);
  // Re-fetch page 3: the stamped version must come back from storage.
  auto handle = pool->FetchPage(*session, 3);
  ASSERT_TRUE(handle.ok());
  auto [word, version] = StorageEngine::ReadStamp(handle.value().data());
  EXPECT_EQ(version, 77u);
}

TEST(BufferPoolTest, CleanPageNotWrittenBack) {
  StorageEngine storage(64, kPageSize);
  auto pool = MakePool(&storage, 2);
  auto session = pool->CreateSession();
  for (PageId p = 0; p < 6; ++p) {
    auto h = pool->FetchPage(*session, p);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(pool->writebacks(), 0u);
  EXPECT_EQ(storage.stats().writes, 0u);
}

TEST(BufferPoolTest, FlushAllPersistsDirtyPages) {
  StorageEngine storage(64, kPageSize);
  auto pool = MakePool(&storage, 4);
  auto session = pool->CreateSession();
  for (PageId p = 0; p < 3; ++p) {
    auto handle = pool->FetchPage(*session, p);
    ASSERT_TRUE(handle.ok());
    StorageEngine::StampPage(handle.value().data(), kPageSize, p, 100 + p);
    handle.value().MarkDirty();
  }
  ASSERT_TRUE(pool->FlushAll().ok());
  EXPECT_EQ(storage.stats().writes, 3u);
  for (PageId p = 0; p < 3; ++p) {
    EXPECT_EQ(storage.VerificationWord(p),
              p * 0x9E3779B97F4A7C15ULL + (100 + p));
  }
  // Second flush: nothing dirty anymore.
  ASSERT_TRUE(pool->FlushAll().ok());
  EXPECT_EQ(storage.stats().writes, 3u);
}

TEST(BufferPoolTest, DropPageRemovesMapping) {
  StorageEngine storage(64, kPageSize);
  auto pool = MakePool(&storage, 4);
  auto session = pool->CreateSession();
  {
    auto h = pool->FetchPage(*session, 1);
    ASSERT_TRUE(h.ok());
  }
  ASSERT_TRUE(pool->DropPage(*session, 1).ok());
  EXPECT_TRUE(pool->CheckIntegrity().ok());
  session->ResetStats();
  auto h = pool->FetchPage(*session, 1);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(session->stats().misses, 1u) << "dropped page must re-miss";
}

TEST(BufferPoolTest, DropPinnedPageFails) {
  StorageEngine storage(64, kPageSize);
  auto pool = MakePool(&storage, 4);
  auto session = pool->CreateSession();
  auto h = pool->FetchPage(*session, 1);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(pool->DropPage(*session, 1).code(),
            StatusCode::kFailedPrecondition);
  h.value().Release();
  EXPECT_TRUE(pool->DropPage(*session, 1).ok());
}

TEST(BufferPoolTest, DropUnknownPageIsNotFound) {
  StorageEngine storage(64, kPageSize);
  auto pool = MakePool(&storage, 4);
  auto session = pool->CreateSession();
  EXPECT_TRUE(pool->DropPage(*session, 5).IsNotFound());
}

TEST(BufferPoolTest, HandleMoveSemantics) {
  StorageEngine storage(64, kPageSize);
  auto pool = MakePool(&storage, 4);
  auto session = pool->CreateSession();
  auto h1 = pool->FetchPage(*session, 2);
  ASSERT_TRUE(h1.ok());
  PageHandle moved = std::move(h1.value());
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(moved.page(), 2u);
  PageHandle assigned;
  assigned = std::move(moved);
  EXPECT_FALSE(moved.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(assigned.valid());
  assigned.Release();
  EXPECT_FALSE(assigned.valid());
  // Pin count must be zero now: the page is evictable.
  EXPECT_TRUE(pool->DropPage(*session, 2).ok());
}

TEST(BufferPoolTest, PrewarmLoadsSequentialPages) {
  StorageEngine storage(64, kPageSize);
  auto pool = MakePool(&storage, 16);
  auto session = pool->CreateSession();
  ASSERT_TRUE(pool->Prewarm(*session, 0, 16).ok());
  session->ResetStats();
  for (PageId p = 0; p < 16; ++p) {
    auto h = pool->FetchPage(*session, p);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(session->stats().hits, 16u);
  EXPECT_EQ(session->stats().misses, 0u);
}

TEST(BufferPoolTest, IntegrityAfterChurn) {
  StorageEngine storage(256, kPageSize);
  auto pool = MakePool(&storage, 16);
  auto session = pool->CreateSession();
  Random rng(3);
  for (int i = 0; i < 5000; ++i) {
    const PageId p = rng.Uniform(256);
    auto h = pool->FetchPage(*session, p);
    ASSERT_TRUE(h.ok());
    if (rng.Bernoulli(0.3)) h.value().MarkDirty();
  }
  EXPECT_TRUE(pool->CheckIntegrity().ok())
      << pool->CheckIntegrity().ToString();
  EXPECT_TRUE(pool->FlushAll().ok());
}

}  // namespace
}  // namespace bpw
