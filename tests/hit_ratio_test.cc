// Hit-ratio properties across policies — the caching-quality side of the
// paper's argument: advanced algorithms (2Q/LIRS/ARC/MQ) earn their lock
// cost by out-hitting clock approximations on patterns the clock cannot
// see; BP-Wrapper then removes that lock cost without touching the ratios.
#include <gtest/gtest.h>

#include <map>

#include "buffer/buffer_pool.h"
#include "core/coordinator_factory.h"
#include "policy/policy_factory.h"
#include "workload/trace_generator.h"

namespace bpw {
namespace {

constexpr size_t kPageSize = 512;

double MeasureHitRatio(const SystemConfig& system,
                       const WorkloadSpec& workload, size_t frames,
                       int accesses) {
  StorageEngine storage(workload.num_pages, kPageSize);
  auto coordinator = CreateCoordinator(system, frames);
  EXPECT_TRUE(coordinator.ok());
  BufferPoolConfig config;
  config.num_frames = frames;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator).value());
  auto session = pool.CreateSession();
  auto trace = CreateTrace(workload, 0);
  EXPECT_NE(trace, nullptr);
  for (int i = 0; i < accesses; ++i) {
    auto handle = pool.FetchPage(*session, trace->Next().page);
    EXPECT_TRUE(handle.ok());
  }
  return session->stats().hit_ratio();
}

SystemConfig Serialized(const std::string& policy) {
  SystemConfig system;
  system.policy = policy;
  system.coordinator = "serialized";
  return system;
}

TEST(HitRatioTest, EveryPolicyBeatsColdCacheOnSkewedWorkload) {
  WorkloadSpec workload;
  workload.name = "zipfian";
  workload.num_pages = 2048;
  workload.zipf_theta = 0.9;
  for (const auto& policy : KnownPolicies()) {
    const double ratio =
        MeasureHitRatio(Serialized(policy), workload, 256, 30000);
    EXPECT_GT(ratio, 0.4) << policy
                          << ": skew keeps the hot set cacheable";
  }
}

TEST(HitRatioTest, FifoIsNotBetterThanLruOnSkew) {
  WorkloadSpec workload;
  workload.name = "zipfian";
  workload.num_pages = 4096;
  workload.zipf_theta = 0.8;
  const double lru = MeasureHitRatio(Serialized("lru"), workload, 256, 40000);
  const double fifo =
      MeasureHitRatio(Serialized("fifo"), workload, 256, 40000);
  EXPECT_GE(lru + 0.02, fifo) << "LRU should not lose clearly to FIFO";
}

TEST(HitRatioTest, BatchingDoesNotHurtHitRatio) {
  // Fig. 8's "hit ratio curves ... overlap very well": same policy, with
  // and without BP-Wrapper, same single-threaded stream => same ratio.
  WorkloadSpec workload;
  workload.name = "dbt1";
  workload.num_pages = 4096;
  for (const auto& policy : {"2q", "lirs", "mq"}) {
    SystemConfig batched;
    batched.policy = policy;
    batched.coordinator = "bp-wrapper";
    const double base =
        MeasureHitRatio(Serialized(policy), workload, 512, 30000);
    const double bat = MeasureHitRatio(batched, workload, 512, 30000);
    EXPECT_DOUBLE_EQ(base, bat) << policy;
  }
}

TEST(HitRatioTest, TwoQBeatsClockOnGhostFriendlyPattern) {
  // A pattern with reuse just beyond the cache: pages cycle through and
  // return. 2Q's A1out remembers them; CLOCK cannot.
  constexpr size_t kFrames = 64;
  constexpr int kAccesses = 60000;
  WorkloadSpec workload;
  workload.name = "seqloop";
  workload.num_pages = 80;  // loop slightly larger than the cache
  const double two_q =
      MeasureHitRatio(Serialized("2q"), workload, kFrames, kAccesses);
  const double clock =
      MeasureHitRatio(Serialized("clock"), workload, kFrames, kAccesses);
  EXPECT_LT(clock, 0.05) << "clock thrashes on a loop like LRU";
  EXPECT_GT(two_q, clock + 0.2);
}

TEST(HitRatioTest, LirsBeatsClockOnLoop) {
  constexpr size_t kFrames = 64;
  WorkloadSpec workload;
  workload.name = "seqloop";
  workload.num_pages = 80;
  const double lirs =
      MeasureHitRatio(Serialized("lirs"), workload, kFrames, 60000);
  const double clock =
      MeasureHitRatio(Serialized("clock"), workload, kFrames, 60000);
  EXPECT_GT(lirs, clock + 0.4);
}

TEST(HitRatioTest, ArcAtLeastMatchesItsClockApproximation) {
  // The paper (§I): clock approximations (CAR vs ARC) "usually cannot
  // achieve the high hit ratio" of the original. On a skewed DBT-1-like
  // stream ARC should be at least as good as CAR (small tolerance).
  WorkloadSpec workload;
  workload.name = "dbt1";
  workload.num_pages = 4096;
  const double arc = MeasureHitRatio(Serialized("arc"), workload, 256, 40000);
  const double car = MeasureHitRatio(Serialized("car"), workload, 256, 40000);
  EXPECT_GE(arc + 0.03, car);
}

TEST(HitRatioTest, BiggerBufferNeverHurtsMuch) {
  // Monotonicity (within noise): doubling the buffer must not reduce the
  // hit ratio appreciably, for every policy, on the OLTP workload. This is
  // the sanity behind the Fig. 8 buffer-size sweep.
  WorkloadSpec workload;
  workload.name = "dbt2";
  workload.num_pages = 4096;
  for (const auto& policy : KnownPolicies()) {
    const double small =
        MeasureHitRatio(Serialized(policy), workload, 128, 30000);
    const double large =
        MeasureHitRatio(Serialized(policy), workload, 1024, 30000);
    EXPECT_GE(large + 0.03, small) << policy;
  }
}

}  // namespace
}  // namespace bpw
