// Behavioural tests for LIRS: LIR/HIR status transitions, stack pruning,
// non-resident bounding, and the signature loop-access advantage over LRU.
#include <gtest/gtest.h>

#include "policy/lirs.h"
#include "policy/lru.h"

namespace bpw {
namespace {

ReplacementPolicy::EvictableFn All() {
  return [](FrameId) { return true; };
}

// Drives an access against a policy plus a local residency map (single
// "pool" emulation for policy-only tests).
class PolicyDriver {
 public:
  explicit PolicyDriver(ReplacementPolicy& policy) : policy_(policy) {
    free_.reserve(policy.num_frames());
    for (size_t i = policy.num_frames(); i-- > 0;) {
      free_.push_back(static_cast<FrameId>(i));
    }
    frame_of_.resize(policy.num_frames(), kInvalidPageId);
  }

  // Returns true on hit.
  bool Access(PageId page) {
    policy_.AssertExclusiveAccess();  // drivers run single-threaded
    for (FrameId f = 0; f < frame_of_.size(); ++f) {
      if (frame_of_[f] == page) {
        policy_.OnHit(page, f);
        return true;
      }
    }
    FrameId frame;
    if (!free_.empty()) {
      frame = free_.back();
      free_.pop_back();
    } else {
      auto victim = policy_.ChooseVictim(All(), page);
      EXPECT_TRUE(victim.ok()) << victim.status().ToString();
      frame = victim->frame;
      frame_of_[frame] = kInvalidPageId;
    }
    frame_of_[frame] = page;
    policy_.OnMiss(page, frame);
    return false;
  }

 private:
  ReplacementPolicy& policy_;
  std::vector<FrameId> free_;
  std::vector<PageId> frame_of_;
};

TEST(LirsTest, CapacitySplit) {
  LirsPolicy lirs(100);
  lirs.AssertExclusiveAccess();
  EXPECT_EQ(lirs.hir_capacity(), 2u);  // max(2, 100/100)
  EXPECT_EQ(lirs.lir_capacity(), 98u);
  LirsPolicy big(1000);
  big.AssertExclusiveAccess();
  EXPECT_EQ(big.hir_capacity(), 10u);
  EXPECT_EQ(big.lir_capacity(), 990u);
}

TEST(LirsTest, WarmupFillsLirFirst) {
  LirsPolicy lirs(10, LirsPolicy::Params{.hir_capacity = 2});
  lirs.AssertExclusiveAccess();
  PolicyDriver driver(lirs);
  for (PageId p = 0; p < 8; ++p) driver.Access(p);
  EXPECT_EQ(lirs.lir_count(), 8u);
  EXPECT_EQ(lirs.resident_hir_count(), 0u);
  driver.Access(8);
  driver.Access(9);
  EXPECT_EQ(lirs.lir_count(), 8u);
  EXPECT_EQ(lirs.resident_hir_count(), 2u);
  EXPECT_TRUE(lirs.CheckInvariants().ok());
}

TEST(LirsTest, EvictsResidentHirNotLir) {
  LirsPolicy lirs(10, LirsPolicy::Params{.hir_capacity = 2});
  lirs.AssertExclusiveAccess();
  PolicyDriver driver(lirs);
  for (PageId p = 0; p < 10; ++p) driver.Access(p);
  // Pages 0..7 are LIR; 8,9 resident HIR. A new page must evict a HIR.
  auto victim = lirs.ChooseVictim(All(), 100);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->page, 8u) << "front of Q (oldest resident HIR)";
  EXPECT_TRUE(lirs.IsResident(0));
  EXPECT_TRUE(lirs.IsResident(7));
}

TEST(LirsTest, NonResidentHirReloadBecomesLir) {
  LirsPolicy lirs(10, LirsPolicy::Params{.hir_capacity = 2});
  lirs.AssertExclusiveAccess();
  PolicyDriver driver(lirs);
  for (PageId p = 0; p < 10; ++p) driver.Access(p);
  const size_t lir_before = lirs.lir_count();
  // Evict page 8 (resident HIR, in S) and fault it back: its reuse
  // distance is short, so it must be promoted to LIR.
  driver.Access(100);  // evicts 8, inserts 100 as HIR
  EXPECT_EQ(lirs.nonresident_count(), 1u);
  driver.Access(8);  // non-resident HIR hit
  EXPECT_TRUE(lirs.IsResident(8));
  EXPECT_EQ(lirs.lir_count(), lir_before);  // promoted, another demoted
  EXPECT_TRUE(lirs.CheckInvariants().ok());
}

TEST(LirsTest, LirHitKeepsStatus) {
  LirsPolicy lirs(10, LirsPolicy::Params{.hir_capacity = 2});
  lirs.AssertExclusiveAccess();
  PolicyDriver driver(lirs);
  for (PageId p = 0; p < 10; ++p) driver.Access(p);
  const size_t lir_before = lirs.lir_count();
  driver.Access(0);
  driver.Access(3);
  EXPECT_EQ(lirs.lir_count(), lir_before);
  EXPECT_TRUE(lirs.CheckInvariants().ok());
}

TEST(LirsTest, NonResidentBoundEnforced) {
  LirsPolicy lirs(8, LirsPolicy::Params{.hir_capacity = 2,
                                        .max_nonresident = 6});
  PolicyDriver driver(lirs);
  for (PageId p = 0; p < 500; ++p) {
    driver.Access(p);
    ASSERT_LE(lirs.nonresident_count(), 6u);
  }
  EXPECT_TRUE(lirs.CheckInvariants().ok());
}

TEST(LirsTest, StackBottomAlwaysLir) {
  LirsPolicy lirs(12, LirsPolicy::Params{.hir_capacity = 3});
  lirs.AssertExclusiveAccess();
  PolicyDriver driver(lirs);
  for (PageId p = 0; p < 200; ++p) {
    driver.Access(p % 30);
    ASSERT_TRUE(lirs.CheckInvariants().ok())
        << lirs.CheckInvariants().ToString();
  }
}

TEST(LirsTest, LoopWorkloadBeatsLru) {
  // The LIRS paper's motivating case: a cyclic access pattern slightly
  // larger than the cache. LRU gets ~0% hits; LIRS keeps the LIR set
  // resident and hits on it every lap.
  constexpr size_t kFrames = 50;
  constexpr PageId kLoop = 60;  // loop of 60 pages over 50 frames
  constexpr int kLaps = 40;

  auto run = [&](ReplacementPolicy& policy) {
    PolicyDriver driver(policy);
    uint64_t hits = 0, accesses = 0;
    for (int lap = 0; lap < kLaps; ++lap) {
      for (PageId p = 0; p < kLoop; ++p) {
        hits += driver.Access(p);
        ++accesses;
      }
    }
    return static_cast<double>(hits) / accesses;
  };

  LirsPolicy lirs(kFrames);
  lirs.AssertExclusiveAccess();
  LruPolicy lru(kFrames);
  lru.AssertExclusiveAccess();
  const double lirs_ratio = run(lirs);
  const double lru_ratio = run(lru);
  EXPECT_LT(lru_ratio, 0.02) << "LRU should thrash on a loop";
  EXPECT_GT(lirs_ratio, 0.5) << "LIRS should stabilize the LIR set";
}

TEST(LirsTest, EraseEveryState) {
  LirsPolicy lirs(10, LirsPolicy::Params{.hir_capacity = 2});
  lirs.AssertExclusiveAccess();
  PolicyDriver driver(lirs);
  for (PageId p = 0; p < 10; ++p) driver.Access(p);
  driver.Access(50);  // makes page 8 non-resident
  // Erase a LIR page.
  lirs.OnErase(0, 0);
  EXPECT_FALSE(lirs.IsResident(0));
  EXPECT_TRUE(lirs.CheckInvariants().ok());
  // Erase a non-resident entry (page 8 left the cache above).
  lirs.OnErase(8, kInvalidFrameId);
  EXPECT_TRUE(lirs.CheckInvariants().ok());
  EXPECT_EQ(lirs.nonresident_count(), 0u);
}

}  // namespace
}  // namespace bpw
