// Tests for the contention-report exporters: folded-stack golden output,
// JSON round-trip (ToJson → FromJson → identical render), and the table.
//
// The golden test builds the snapshot by hand rather than through the
// recording hot path, so the expected folded text is exact — this is the
// contract flamegraph tooling depends on.
#include "obs/profile_export.h"

#include <string>

#include "gtest/gtest.h"

namespace bpw {
namespace obs {
namespace {

ProfSiteSnapshot MakeSite(const std::string& label, ProfSiteKind kind,
                          int depth, uint64_t uncontended, uint64_t contended,
                          uint64_t wait, uint64_t hold) {
  ProfSiteSnapshot s;
  s.label = label;
  s.file = "src/fake.cc";
  s.line = 42;
  s.kind = kind;
  s.depth = depth;
  s.uncontended = uncontended;
  s.contended = contended;
  s.wait_nanos = wait;
  s.hold_nanos = hold;
  // Build the histograms in bucket-canonical form (counts at BucketLow),
  // the same shape CollectProfSnapshot produces from the sharded atomic
  // buckets — that is what makes ToJson a fixpoint under round-tripping.
  const uint64_t wait_each = contended == 0 ? 0 : wait / contended;
  s.wait_hist.Add(Histogram::BucketLow(Histogram::BucketFor(wait_each)),
                  contended);
  const uint64_t n = uncontended + contended;
  const uint64_t hold_each = n == 0 ? 0 : hold / n;
  s.hold_hist.Add(Histogram::BucketLow(Histogram::BucketFor(hold_each)), n);
  return s;
}

/// The snapshot every test renders: one contended lock, one uncontended
/// lock, a two-level phase tree, and one zero-weight phase.
ProfSnapshot GoldenSnapshot() {
  ProfSnapshot snap;
  snap.sites.push_back(MakeSite("bpw.policy_lock", ProfSiteKind::kLock, 0,
                                /*uncontended=*/90, /*contended=*/10,
                                /*wait=*/5000, /*hold=*/20000));
  snap.sites.back().max_waiters = 3;
  snap.sites.push_back(MakeSite("choose_victim", ProfSiteKind::kPhase, 0,
                                /*entries=*/100, 0,
                                /*inclusive=*/18000, /*exclusive=*/6000));
  snap.sites.push_back(MakeSite("choose_victim;commit", ProfSiteKind::kPhase,
                                1, /*entries=*/100, 0,
                                /*inclusive=*/12000, /*exclusive=*/12000));
  snap.sites.push_back(MakeSite("pool.free_list", ProfSiteKind::kLock, 0,
                                /*uncontended=*/40, /*contended=*/0,
                                /*wait=*/0, /*hold=*/800));
  snap.sites.push_back(MakeSite("quiet_phase", ProfSiteKind::kPhase, 0,
                                /*entries=*/0, 0, /*inclusive=*/0,
                                /*exclusive=*/0));
  return snap;
}

TEST(ProfileExportTest, FoldedGolden) {
  // Locks split into ;wait and ;hold leaves, phases weigh their exclusive
  // nanoseconds, zero-weight rows vanish (pool.free_list has no wait line,
  // quiet_phase no line at all). Byte-exact on purpose: downstream
  // flamegraph scripts parse this with `awk`, not a tolerant parser.
  const std::string expected =
      "bpw.policy_lock;wait 5000\n"
      "bpw.policy_lock;hold 20000\n"
      "choose_victim 6000\n"
      "choose_victim;commit 12000\n"
      "pool.free_list;hold 800\n";
  EXPECT_EQ(ProfSnapshotToFolded(GoldenSnapshot()), expected);
}

TEST(ProfileExportTest, JsonRoundTripsThroughFromJson) {
  const ProfSnapshot original = GoldenSnapshot();
  const std::string json = ProfSnapshotToJson(original);

  StatusOr<ProfSnapshot> reparsed = ProfSnapshotFromJson(json);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();

  // The round-trip must preserve everything the renderers consume: folded
  // output, the table, and a re-serialization are all byte-identical.
  EXPECT_EQ(ProfSnapshotToFolded(reparsed.value()),
            ProfSnapshotToFolded(original));
  EXPECT_EQ(ProfSnapshotToTable(reparsed.value()),
            ProfSnapshotToTable(original));
  EXPECT_EQ(ProfSnapshotToJson(reparsed.value()), json);

  const ProfSiteSnapshot* lock = reparsed.value().Find("bpw.policy_lock");
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(lock->kind, ProfSiteKind::kLock);
  EXPECT_EQ(lock->uncontended, 90u);
  EXPECT_EQ(lock->contended, 10u);
  EXPECT_EQ(lock->max_waiters, 3u);
  // Sparse bucket pairs reconstruct the distribution exactly.
  EXPECT_EQ(lock->wait_hist.count(), 10u);
  EXPECT_DOUBLE_EQ(lock->wait_hist.Percentile(95),
                   original.sites[0].wait_hist.Percentile(95));
  EXPECT_EQ(reparsed.value().TotalLockNanos(), original.TotalLockNanos());
}

TEST(ProfileExportTest, FromJsonFindsReportInsideFullRunDocument) {
  const std::string report = ProfSnapshotToJson(GoldenSnapshot());
  const std::string run_doc =
      "{\"config\":{\"threads\":8},\"result\":{\"throughput_tps\":1},"
      "\"contention\":" + report + "}";
  StatusOr<ProfSnapshot> parsed = ProfSnapshotFromJson(run_doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(ProfSnapshotToFolded(parsed.value()),
            ProfSnapshotToFolded(GoldenSnapshot()));
}

TEST(ProfileExportTest, FromJsonRejectsNonReports) {
  EXPECT_FALSE(ProfSnapshotFromJson("{\"result\":{}}").ok());
  EXPECT_FALSE(ProfSnapshotFromJson("not json at all").ok());
  EXPECT_FALSE(ProfSnapshotFromJson("{\"sites\":12}").ok());
}

TEST(ProfileExportTest, TableSkipsZeroEventRowsAndIndentsPhases) {
  const std::string table = ProfSnapshotToTable(GoldenSnapshot());
  EXPECT_NE(table.find("bpw.policy_lock"), std::string::npos);
  EXPECT_EQ(table.find("quiet_phase"), std::string::npos);
  // Depth-1 phase is indented under its parent.
  EXPECT_NE(table.find("  choose_victim;commit"), std::string::npos);
}

TEST(ProfileExportTest, JsonIsParseableAndCarriesSummary) {
  const std::string json = ProfSnapshotToJson(GoldenSnapshot());
  EXPECT_NE(json.find("\"total_lock_nanos\":25800"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"lock\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[["), std::string::npos);
}

TEST(ReconcileTest, JoinsRanksFlagsDivergenceAndUnmatchedRows) {
  // Static side: three labeled hold sites. The weights say shard_lock is
  // the heavy region and free_list the light one.
  const std::string costs = R"json({"sites":[
    {"label":"sharded.shard_lock","lock":"shard.lock","lock_class":"shard",
     "file":"src/a.cc","line":10,"function":"F","kind":"guard","weight":90.0},
    {"label":"pool.free_list","lock":"mu_","lock_class":"pool",
     "file":"src/b.cc","line":20,"function":"G","kind":"guard","weight":4.0},
    {"label":"combining.policy_lock","lock":"lock_","lock_class":"comb",
     "file":"src/c.cc","line":30,"function":"H","kind":"guard","weight":6.0}]})json";
  // Measured side: free_list held LONGEST, shard_lock shortest — both
  // joined ranks invert, so both rows must be flagged. policy_lock never
  // contended (count 0) and an extra lock the static side has no label
  // for rounds out the unmatched cases.
  ProfSnapshot snap;
  snap.sites.push_back(MakeSite("sharded.shard_lock", ProfSiteKind::kLock, 0,
                                /*uncontended=*/90, /*contended=*/10,
                                /*wait=*/1000, /*hold=*/100000));
  snap.sites.push_back(MakeSite("pool.free_list", ProfSiteKind::kLock, 0,
                                /*uncontended=*/90, /*contended=*/10,
                                /*wait=*/1000, /*hold=*/6400000));
  snap.sites.push_back(MakeSite("page_table.shard", ProfSiteKind::kLock, 0,
                                /*uncontended=*/90, /*contended=*/10,
                                /*wait=*/1000, /*hold=*/800000));
  snap.sites.push_back(MakeSite("combining.policy_lock", ProfSiteKind::kLock,
                                0, /*uncontended=*/0, /*contended=*/0,
                                /*wait=*/0, /*hold=*/0));
  snap.sites.push_back(MakeSite("drain", ProfSiteKind::kPhase, 0,
                                /*entries=*/10, 0, /*inclusive=*/100,
                                /*exclusive=*/100));
  StatusOr<std::string> table = ReconcileHoldCosts(costs, snap);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  const std::string& out = table.value();
  // Joined static ranks: shard_lock #1, free_list #2. Measured ranks:
  // free_list #1, shard_lock #3 (the unlabeled page_table.shard sits
  // between them) — shard_lock's d-rank of -2 crosses the flag
  // threshold, free_list's +1 does not.
  EXPECT_NE(out.find("DIVERGES"), std::string::npos) << out;
  EXPECT_NE(out.find("1 rank divergence(s)"), std::string::npos) << out;
  // Never-contended static label: listed, but unranked.
  EXPECT_NE(out.find("static only (never contended in this run)"),
            std::string::npos)
      << out;
  // Measured site the static model has no label for.
  EXPECT_NE(out.find("measured only (site not in static costs)"),
            std::string::npos)
      << out;
  // Phase rows are not lock sites and must not leak into the join.
  EXPECT_EQ(out.find("drain"), std::string::npos) << out;
}

TEST(ReconcileTest, RejectsNonCostsDocuments) {
  ProfSnapshot snap;
  EXPECT_FALSE(ReconcileHoldCosts("{\"result\":1}", snap).ok());
  EXPECT_FALSE(ReconcileHoldCosts("nope", snap).ok());
}

}  // namespace
}  // namespace obs
}  // namespace bpw
