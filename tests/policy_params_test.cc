// Parameter-sweep property tests: every policy at awkward capacities, and
// every tunable policy across its parameter space, driven by the shadow-
// model fuzzer. These sweeps catch the off-by-one and boundary bugs that
// fixed-size unit tests miss (capacity 1, capacity == parameter, parameter
// larger than capacity, ...).
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "policy/lirs.h"
#include "policy/lru_k.h"
#include "policy/mq.h"
#include "policy/policy_factory.h"
#include "policy/two_q.h"
#include "util/random.h"

namespace bpw {
namespace {

// Shadow-model fuzz shared by all sweeps: random skewed accesses with
// evictions and occasional erases; verifies residency agreement, capacity
// bounds, and structural invariants throughout.
void FuzzPolicy(ReplacementPolicy& policy, int steps, uint64_t seed) {
  const size_t frames = policy.num_frames();
  std::map<PageId, FrameId> resident;
  std::vector<FrameId> free;
  for (size_t i = frames; i-- > 0;) free.push_back(static_cast<FrameId>(i));
  Random rng(seed);
  const uint64_t page_space = frames * 4 + 8;

  for (int step = 0; step < steps; ++step) {
    const uint64_t op = rng.Uniform(100);
    if (op < 75) {
      const PageId page = rng.Bernoulli(0.6) ? rng.Uniform(frames + 1)
                                             : rng.Uniform(page_space);
      auto it = resident.find(page);
      if (it != resident.end()) {
        policy.OnHit(page, it->second);
      } else {
        FrameId frame;
        if (!free.empty()) {
          frame = free.back();
          free.pop_back();
        } else {
          auto victim =
              policy.ChooseVictim([](FrameId) { return true; }, page);
          ASSERT_TRUE(victim.ok()) << victim.status().ToString();
          ASSERT_EQ(resident.at(victim->page), victim->frame);
          resident.erase(victim->page);
          frame = victim->frame;
        }
        policy.OnMiss(page, frame);
        resident[page] = frame;
      }
    } else if (op < 85 && !resident.empty()) {
      auto it = resident.begin();
      std::advance(it, rng.Uniform(resident.size()));
      policy.OnErase(it->first, it->second);
      free.push_back(it->second);
      resident.erase(it);
    } else if (op < 95) {
      // Stale hit barrage: wrong pages, wrong frames.
      policy.OnHit(rng.Uniform(page_space),
                   static_cast<FrameId>(rng.Uniform(frames + 2)));
    } else if (free.empty() && !resident.empty()) {
      auto victim = policy.ChooseVictim([](FrameId) { return true; },
                                        page_space + step);
      ASSERT_TRUE(victim.ok());
      resident.erase(victim->page);
      free.push_back(victim->frame);
    }
    ASSERT_EQ(policy.resident_count(), resident.size()) << "step " << step;
    if (step % 512 == 0) {
      ASSERT_TRUE(policy.CheckInvariants().ok())
          << policy.name() << ": " << policy.CheckInvariants().ToString();
    }
  }
  ASSERT_TRUE(policy.CheckInvariants().ok())
      << policy.CheckInvariants().ToString();
}

// ---- capacity sweep over every policy ------------------------------------

using CapacityParam = std::tuple<std::string, size_t>;

class PolicyCapacityTest : public ::testing::TestWithParam<CapacityParam> {};

TEST_P(PolicyCapacityTest, FuzzAtCapacity) {
  const auto& [name, frames] = GetParam();
  auto policy = CreatePolicy(name, frames);
  ASSERT_TRUE(policy.ok());
  FuzzPolicy(*policy.value(), 4000, 0xC0FFEE + frames);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyCapacityTest,
    ::testing::Combine(::testing::ValuesIn(KnownPolicies()),
                       ::testing::Values<size_t>(1, 2, 3, 5, 16, 63, 257)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      if (name == "2q") name = "twoq";
      return name + "_f" + std::to_string(std::get<1>(info.param));
    });

// ---- 2Q parameter grid -----------------------------------------------------

using TwoQParam = std::tuple<size_t, size_t>;  // (kin, kout)

class TwoQParamTest : public ::testing::TestWithParam<TwoQParam> {};

TEST_P(TwoQParamTest, FuzzAcrossKinKout) {
  const auto& [kin, kout] = GetParam();
  TwoQPolicy policy(32, TwoQPolicy::Params{.kin = kin, .kout = kout});
  policy.AssertExclusiveAccess();
  FuzzPolicy(policy, 4000, kin * 131 + kout);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TwoQParamTest,
    ::testing::Combine(::testing::Values<size_t>(1, 4, 16, 31, 64),
                       ::testing::Values<size_t>(1, 8, 32, 128)),
    [](const auto& info) {
      return "kin" + std::to_string(std::get<0>(info.param)) + "_kout" +
             std::to_string(std::get<1>(info.param));
    });

// ---- LIRS parameter grid ---------------------------------------------------

using LirsParam = std::tuple<size_t, size_t>;  // (hir capacity, max nonres)

class LirsParamTest : public ::testing::TestWithParam<LirsParam> {};

TEST_P(LirsParamTest, FuzzAcrossHirAndBound) {
  const auto& [hir, nonres] = GetParam();
  LirsPolicy policy(32, LirsPolicy::Params{.hir_capacity = hir,
                                           .max_nonresident = nonres});
  FuzzPolicy(policy, 4000, hir * 977 + nonres);
  EXPECT_LE(policy.nonresident_count(), nonres);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LirsParamTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 8, 16, 31),
                       ::testing::Values<size_t>(1, 8, 64, 256)),
    [](const auto& info) {
      return "hir" + std::to_string(std::get<0>(info.param)) + "_nr" +
             std::to_string(std::get<1>(info.param));
    });

// ---- MQ parameter grid -----------------------------------------------------

using MqParam = std::tuple<size_t, uint64_t>;  // (num queues, lifetime)

class MqParamTest : public ::testing::TestWithParam<MqParam> {};

TEST_P(MqParamTest, FuzzAcrossQueuesAndLifetime) {
  const auto& [queues, lifetime] = GetParam();
  MqPolicy policy(32, MqPolicy::Params{.num_queues = queues,
                                       .life_time = lifetime,
                                       .qout_capacity = 32});
  FuzzPolicy(policy, 4000, queues * 31 + lifetime);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MqParamTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 8, 16),
                       ::testing::Values<uint64_t>(1, 8, 128, 100000)),
    [](const auto& info) {
      return "q" + std::to_string(std::get<0>(info.param)) + "_life" +
             std::to_string(std::get<1>(info.param));
    });

// ---- LRU-2 history sweep ----------------------------------------------------

class LruKParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LruKParamTest, FuzzAcrossHistoryCapacity) {
  LruKPolicy policy(32, LruKPolicy::Params{.history_capacity = GetParam()});
  policy.AssertExclusiveAccess();
  FuzzPolicy(policy, 4000, GetParam() * 7919);
  EXPECT_LE(policy.history_size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sweep, LruKParamTest,
                         ::testing::Values<size_t>(1, 2, 16, 64, 1024));

}  // namespace
}  // namespace bpw
