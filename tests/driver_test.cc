// Tests for the experiment driver (the harness behind every bench).
#include <gtest/gtest.h>

#include "harness/driver.h"
#include "harness/reporter.h"
#include "harness/systems.h"

namespace bpw {
namespace {

DriverConfig BaseConfig() {
  DriverConfig config;
  config.num_threads = 2;
  config.transactions_per_thread = 200;  // count mode: deterministic tests
  config.workload.name = "zipfian";
  config.workload.num_pages = 1024;
  config.system.policy = "2q";
  config.system.coordinator = "serialized";
  config.think_work = 8;
  config.page_size = 512;
  return config;
}

TEST(DriverTest, CountModeRunsExactTransactionCount) {
  DriverConfig config = BaseConfig();
  auto result = RunDriver(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->transactions, 400u);  // 2 threads x 200
  EXPECT_GT(result->accesses, result->transactions);
  EXPECT_GT(result->throughput_tps, 0.0);
  EXPECT_GT(result->avg_response_us, 0.0);
  EXPECT_GE(result->p95_response_us, 0.0);
}

TEST(DriverTest, PrewarmedFullBufferHasNoMisses) {
  // The paper's scalability setting: buffer >= working set, pre-warmed.
  DriverConfig config = BaseConfig();
  config.prewarm = true;
  config.num_frames = 0;  // = footprint
  auto result = RunDriver(config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->misses, 0u);
  EXPECT_DOUBLE_EQ(result->hit_ratio, 1.0);
}

TEST(DriverTest, SmallBufferProducesMisses) {
  DriverConfig config = BaseConfig();
  config.num_frames = 64;  // much smaller than the 1024-page footprint
  auto result = RunDriver(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->misses, 0u);
  EXPECT_LT(result->hit_ratio, 1.0);
  EXPECT_GT(result->evictions, 0u);
}

TEST(DriverTest, UnknownWorkloadRejected) {
  DriverConfig config = BaseConfig();
  config.workload.name = "not-a-workload";
  EXPECT_FALSE(RunDriver(config).ok());
}

TEST(DriverTest, UnknownSystemRejected) {
  DriverConfig config = BaseConfig();
  config.system.coordinator = "bogus";
  EXPECT_FALSE(RunDriver(config).ok());
}

TEST(DriverTest, ZeroThreadsRejected) {
  DriverConfig config = BaseConfig();
  config.num_threads = 0;
  EXPECT_FALSE(RunDriver(config).ok());
}

TEST(DriverTest, LockStatsReflectCoordinatorKind) {
  DriverConfig serialized = BaseConfig();
  auto ser_result = RunDriver(serialized);
  ASSERT_TRUE(ser_result.ok());
  // Lock-per-access: at least one acquisition per access (hits + misses).
  EXPECT_GE(ser_result->lock.acquisitions, ser_result->accesses);

  DriverConfig batched = BaseConfig();
  batched.system.coordinator = "bp-wrapper";
  batched.system.queue_size = 64;
  batched.system.batch_threshold = 32;
  auto bat_result = RunDriver(batched);
  ASSERT_TRUE(bat_result.ok());
  EXPECT_LT(bat_result->lock.acquisitions,
            ser_result->lock.acquisitions / 4)
      << "batching must slash lock acquisitions";
}

TEST(DriverTest, DurationModeProducesMetrics) {
  DriverConfig config = BaseConfig();
  config.transactions_per_thread = 0;  // duration mode
  config.duration_ms = 120;
  config.warmup_ms = 30;
  auto result = RunDriver(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->transactions, 0u);
  EXPECT_NEAR(result->measure_seconds, 0.12, 0.08);
  EXPECT_GT(result->throughput_tps, 0.0);
}

TEST(DriverTest, TimingInstrumentationYieldsLockNanos) {
  DriverConfig config = BaseConfig();
  config.system.instrumentation = LockInstrumentation::kTiming;
  auto result = RunDriver(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->lock_nanos_per_access, 0.0);
}

TEST(DriverTest, AllPaperSystemsRunAllWorkloads) {
  for (const auto& system_name : PaperSystemNames()) {
    for (const char* workload : {"dbt1", "dbt2", "tablescan"}) {
      DriverConfig config = BaseConfig();
      config.workload.name = workload;
      config.workload.num_pages = 512;
      config.transactions_per_thread = 50;
      auto system = PaperSystemConfig(system_name);
      ASSERT_TRUE(system.ok());
      config.system = system.value();
      auto result = RunDriver(config);
      ASSERT_TRUE(result.ok())
          << system_name << "/" << workload << ": "
          << result.status().ToString();
      EXPECT_EQ(result->transactions, 100u) << system_name << "/" << workload;
    }
  }
}

TEST(SystemMatrixTest, RunsAllCells) {
  DriverConfig base = BaseConfig();
  base.transactions_per_thread = 40;
  auto cells = RunSystemMatrix(base, {"pgClock", "pg2Q"}, {1, 2});
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  ASSERT_EQ(cells->size(), 4u);
  for (const auto& cell : cells.value()) {
    EXPECT_GT(cell.result.transactions, 0u);
  }
}

TEST(SystemMatrixTest, MutateHookApplies) {
  DriverConfig base = BaseConfig();
  base.transactions_per_thread = 40;
  auto cells = RunSystemMatrix(
      base, {"pgBatPre"}, {2},
      [](DriverConfig& config) { config.system.queue_size = 4; });
  ASSERT_TRUE(cells.ok());
  EXPECT_EQ(cells->size(), 1u);
}

TEST(ScalabilityConfigTest, ZeroMissPreset) {
  DriverConfig config = ScalabilityRunConfig("dbt2", 2048, 200);
  EXPECT_EQ(config.workload.name, "dbt2");
  EXPECT_EQ(config.num_frames, 0u);
  EXPECT_TRUE(config.prewarm);
  EXPECT_EQ(config.duration_ms, 200u);
}

TEST(ReporterTest, TableAlignsAndCsvRoundTrips) {
  TableReporter table({"system", "a", "b"});
  table.AddNumericRow("pgClock", {1.5, 2.25}, 2);
  table.AddRow({"pg2Q", "x", "y"});
  const std::string csv = table.ToCsv();
  EXPECT_EQ(csv, "system,a,b\npgClock,1.50,2.25\npg2Q,x,y\n");
  table.Print("test table");  // must not crash
}

TEST(ReporterTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1000.0, 0), "1000");
}

}  // namespace
}  // namespace bpw
