// Tests for the seeded storage fault injector.
#include <gtest/gtest.h>

#include <vector>

#include "testing/fault_injector.h"

namespace bpw {
namespace testing {
namespace {

TEST(FaultInjectorTest, EmptyPlanIsDisabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.torn_write_probability = 0.1;
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultInjectorTest, CertainReadErrorAlwaysFails) {
  FaultPlan plan;
  plan.read_error_probability = 1.0;
  FaultInjector injector(plan);
  for (PageId page = 0; page < 50; ++page) {
    const FaultDecision d = injector.ForRead(page);
    EXPECT_TRUE(d.status.IsIOError());
    EXPECT_FALSE(d.tear_write);
    EXPECT_EQ(d.extra_latency_nanos, 0u);  // fail-fast: no latency on error
  }
  EXPECT_EQ(injector.stats().read_errors, 50u);
  EXPECT_EQ(injector.stats().write_errors, 0u);
  // Writes are untouched by a read-only plan.
  EXPECT_TRUE(injector.ForWrite(0).status.ok());
}

TEST(FaultInjectorTest, CertainTornWriteTearsEveryWrite) {
  FaultPlan plan;
  plan.torn_write_probability = 1.0;
  FaultInjector injector(plan);
  for (PageId page = 0; page < 20; ++page) {
    const FaultDecision d = injector.ForWrite(page);
    EXPECT_TRUE(d.status.ok());  // a torn write still "succeeds"
    EXPECT_TRUE(d.tear_write);
  }
  EXPECT_EQ(injector.stats().torn_writes, 20u);
}

TEST(FaultInjectorTest, SpikesCarryConfiguredLatency) {
  FaultPlan plan;
  plan.read_spike_probability = 1.0;
  plan.write_spike_probability = 1.0;
  plan.latency_spike_nanos = 12345;
  FaultInjector injector(plan);
  EXPECT_EQ(injector.ForRead(1).extra_latency_nanos, 12345u);
  EXPECT_EQ(injector.ForWrite(2).extra_latency_nanos, 12345u);
  EXPECT_EQ(injector.stats().latency_spikes, 2u);
}

TEST(FaultInjectorTest, ProbabilisticRatesLandNearTarget) {
  FaultPlan plan;
  plan.seed = 7;
  plan.read_error_probability = 0.1;
  FaultInjector injector(plan);
  for (int i = 0; i < 10000; ++i) (void)injector.ForRead(i % 64);
  const uint64_t errors = injector.stats().read_errors;
  // 10k Bernoulli(0.1) draws: mean 1000, sd ~30; +/-200 is > 6 sigma.
  EXPECT_GT(errors, 800u);
  EXPECT_LT(errors, 1200u);
}

TEST(FaultInjectorTest, SameSeedSameDecisionSequence) {
  FaultPlan plan;
  plan.seed = 11;
  plan.read_error_probability = 0.3;
  plan.torn_write_probability = 0.3;
  auto collect = [&plan] {
    FaultInjector injector(plan);
    std::vector<int> decisions;
    for (int i = 0; i < 500; ++i) {
      decisions.push_back(injector.ForRead(i).status.ok() ? 0 : 1);
      decisions.push_back(injector.ForWrite(i).tear_write ? 1 : 0);
    }
    return decisions;
  };
  EXPECT_EQ(collect(), collect());
}

}  // namespace
}  // namespace testing
}  // namespace bpw
