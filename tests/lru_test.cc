// Exact-behaviour tests for LRU against a reference model: the policy must
// evict precisely the least-recently-used unpinned page.
#include <gtest/gtest.h>

#include <list>
#include <vector>

#include "policy/lru.h"
#include "util/random.h"

namespace bpw {
namespace {

ReplacementPolicy::EvictableFn All() {
  return [](FrameId) { return true; };
}

TEST(LruTest, EvictsInInsertionOrderWithoutHits) {
  LruPolicy lru(4);
  lru.AssertExclusiveAccess();
  for (PageId p = 0; p < 4; ++p) lru.OnMiss(p, static_cast<FrameId>(p));
  for (PageId expected = 0; expected < 4; ++expected) {
    auto victim = lru.ChooseVictim(All(), 100);
    ASSERT_TRUE(victim.ok());
    EXPECT_EQ(victim->page, expected);
  }
}

TEST(LruTest, HitMovesToMru) {
  LruPolicy lru(3);
  lru.AssertExclusiveAccess();
  lru.OnMiss(10, 0);
  lru.OnMiss(11, 1);
  lru.OnMiss(12, 2);
  lru.OnHit(10, 0);  // 10 becomes MRU; LRU order now 11, 12, 10
  auto v1 = lru.ChooseVictim(All(), 99);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->page, 11u);
  auto v2 = lru.ChooseVictim(All(), 99);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->page, 12u);
  auto v3 = lru.ChooseVictim(All(), 99);
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3->page, 10u);
}

TEST(LruTest, RepeatedHitsAreIdempotentForOrder) {
  LruPolicy lru(3);
  lru.AssertExclusiveAccess();
  lru.OnMiss(1, 0);
  lru.OnMiss(2, 1);
  lru.OnMiss(3, 2);
  for (int i = 0; i < 10; ++i) lru.OnHit(1, 0);
  auto victim = lru.ChooseVictim(All(), 9);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->page, 2u);
}

TEST(LruTest, PinnedLruIsSkipped) {
  LruPolicy lru(3);
  lru.AssertExclusiveAccess();
  lru.OnMiss(1, 0);
  lru.OnMiss(2, 1);
  lru.OnMiss(3, 2);
  // Page 1 (frame 0) is the LRU but pinned.
  auto victim = lru.ChooseVictim([](FrameId f) { return f != 0; }, 9);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->page, 2u);
}

// Reference-model fuzz: a std::list-based textbook LRU must agree exactly.
TEST(LruTest, MatchesReferenceModelExactly) {
  constexpr size_t kFrames = 16;
  LruPolicy lru(kFrames);
  lru.AssertExclusiveAccess();

  std::list<PageId> ref;  // front = MRU
  std::vector<PageId> frame_page(kFrames, kInvalidPageId);
  auto ref_touch = [&](PageId p) {
    ref.remove(p);
    ref.push_front(p);
  };

  Random rng(321);
  for (int i = 0; i < 30000; ++i) {
    const PageId page = rng.Uniform(64);
    auto it = std::find(ref.begin(), ref.end(), page);
    if (it != ref.end()) {
      // hit
      FrameId frame = 0;
      for (FrameId f = 0; f < kFrames; ++f) {
        if (frame_page[f] == page) frame = f;
      }
      lru.OnHit(page, frame);
      ref_touch(page);
    } else {
      if (ref.size() == kFrames) {
        const PageId expect_victim = ref.back();
        auto victim = lru.ChooseVictim(All(), page);
        ASSERT_TRUE(victim.ok());
        ASSERT_EQ(victim->page, expect_victim) << "at step " << i;
        ref.pop_back();
        frame_page[victim->frame] = kInvalidPageId;
      }
      FrameId free = kInvalidFrameId;
      for (FrameId f = 0; f < kFrames; ++f) {
        if (frame_page[f] == kInvalidPageId) {
          free = f;
          break;
        }
      }
      ASSERT_NE(free, kInvalidFrameId);
      frame_page[free] = page;
      lru.OnMiss(page, free);
      ref.push_front(page);
    }
  }
  EXPECT_TRUE(lru.CheckInvariants().ok());
}

TEST(LruTest, EraseMiddleKeepsOrder) {
  LruPolicy lru(4);
  lru.AssertExclusiveAccess();
  for (PageId p = 0; p < 4; ++p) lru.OnMiss(p, static_cast<FrameId>(p));
  lru.OnErase(1, 1);
  auto v = lru.ChooseVictim(All(), 9);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->page, 0u);
  v = lru.ChooseVictim(All(), 9);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->page, 2u);
}

}  // namespace
}  // namespace bpw
