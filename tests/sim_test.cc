// Tests for the multiprocessor simulator: determinism, conservation
// properties, and the qualitative shapes it exists to reproduce.
#include <gtest/gtest.h>

#include "harness/systems.h"
#include "sim/sim_driver.h"

namespace bpw {
namespace {

DriverConfig BaseConfig(const std::string& system_name, uint32_t procs) {
  DriverConfig config = ScalabilityRunConfig("dbt2", 4096, 50);
  config.warmup_ms = 10;
  config.num_threads = procs;
  auto system = PaperSystemConfig(system_name);
  EXPECT_TRUE(system.ok());
  config.system = system.value();
  return config;
}

double SimTps(const std::string& system, uint32_t procs,
              const SimCosts& costs = SimCosts()) {
  auto result = RunSimulation(BaseConfig(system, procs), costs);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->throughput_tps;
}

TEST(SimTest, DeterministicAcrossRuns) {
  auto a = RunSimulation(BaseConfig("pgBatPre", 8));
  auto b = RunSimulation(BaseConfig("pgBatPre", 8));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->transactions, b->transactions);
  EXPECT_EQ(a->accesses, b->accesses);
  EXPECT_EQ(a->lock.acquisitions, b->lock.acquisitions);
  EXPECT_EQ(a->lock.contentions, b->lock.contentions);
}

TEST(SimTest, RejectsBadConfigs) {
  DriverConfig config = BaseConfig("pg2Q", 0);
  EXPECT_FALSE(RunSimulation(config).ok());
  config = BaseConfig("pg2Q", 2);
  config.workload.name = "nope";
  EXPECT_FALSE(RunSimulation(config).ok());
  config = BaseConfig("pg2Q", 2);
  config.system.coordinator = "clock-lockfree";
  config.system.policy = "lru";
  EXPECT_FALSE(RunSimulation(config).ok());
}

TEST(SimTest, ZeroMissWhenPrewarmedAndSized) {
  auto result = RunSimulation(BaseConfig("pg2Q", 4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->misses, 0u);
  EXPECT_DOUBLE_EQ(result->hit_ratio, 1.0);
  EXPECT_GT(result->accesses, 0u);
}

TEST(SimTest, SingleProcessorNeverContends) {
  for (const auto& system : PaperSystemNames()) {
    auto result = RunSimulation(BaseConfig(system, 1));
    ASSERT_TRUE(result.ok()) << system;
    EXPECT_EQ(result->lock.contentions, 0u) << system;
  }
}

TEST(SimTest, ClockScalesNearlyLinearly) {
  const double t1 = SimTps("pgClock", 1);
  const double t16 = SimTps("pgClock", 16);
  EXPECT_GT(t16, t1 * 13) << "pgClock must scale nearly linearly";
}

TEST(SimTest, SerializedTwoQSaturates) {
  const double t4 = SimTps("pg2Q", 4);
  const double t16 = SimTps("pg2Q", 16);
  // The paper's central observation: beyond saturation adding processors
  // does not help (and slightly hurts).
  EXPECT_LT(t16, t4 * 1.2) << "pg2Q must saturate by ~4 processors";
}

TEST(SimTest, BatchingTracksClock) {
  const double clock = SimTps("pgClock", 16);
  const double bat = SimTps("pgBat", 16);
  const double batpre = SimTps("pgBatPre", 16);
  EXPECT_GT(bat, clock * 0.85) << "pgBat must track pgClock";
  EXPECT_GT(batpre, clock * 0.85) << "pgBatPre must track pgClock";
}

TEST(SimTest, BatchingBeatsSerializedAtScale) {
  const double serialized = SimTps("pg2Q", 16);
  const double batched = SimTps("pgBat", 16);
  EXPECT_GT(batched, serialized * 2)
      << "the paper's headline: ~2x throughput from removing contention";
}

TEST(SimTest, PrefetchAloneHelpsButLess) {
  const double base = SimTps("pg2Q", 16);
  const double pre = SimTps("pgPre", 16);
  const double bat = SimTps("pgBat", 16);
  EXPECT_GT(pre, base) << "prefetching alone must help";
  EXPECT_GT(bat, pre) << "batching must beat prefetching alone (§IV-D)";
}

TEST(SimTest, ContentionOrdering) {
  auto pg2q = RunSimulation(BaseConfig("pg2Q", 16));
  auto bat = RunSimulation(BaseConfig("pgBat", 16));
  ASSERT_TRUE(pg2q.ok());
  ASSERT_TRUE(bat.ok());
  EXPECT_GT(pg2q->contentions_per_million, 1000.0);
  EXPECT_LT(bat->contentions_per_million,
            pg2q->contentions_per_million / 50)
      << "batching must cut contention by orders of magnitude";
}

TEST(SimTest, ResponseTimeGrowsWithContention) {
  auto few = RunSimulation(BaseConfig("pg2Q", 2));
  auto many = RunSimulation(BaseConfig("pg2Q", 16));
  ASSERT_TRUE(few.ok());
  ASSERT_TRUE(many.ok());
  EXPECT_GT(many->avg_response_us, few->avg_response_us * 2);
}

TEST(SimTest, LockTimePerAccessFallsWithBatchSize) {
  double previous = 1e18;
  for (size_t batch : {1, 8, 64}) {
    DriverConfig config = BaseConfig("pgBatPre", 16);
    config.system.queue_size = batch;
    config.system.batch_threshold = batch;
    auto result = RunSimulation(config);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->lock_nanos_per_access, previous)
        << "batch " << batch << " (the Fig. 2 trend)";
    previous = result->lock_nanos_per_access;
  }
}

TEST(SimTest, ThresholdEqualToQueueForcesBlocking) {
  DriverConfig half = BaseConfig("pgBatPre", 16);
  half.system.queue_size = 64;
  half.system.batch_threshold = 32;
  DriverConfig full = half;
  full.system.batch_threshold = 64;
  auto r_half = RunSimulation(half);
  auto r_full = RunSimulation(full);
  ASSERT_TRUE(r_half.ok());
  ASSERT_TRUE(r_full.ok());
  // Table III's endpoint: with no TryLock window every busy encounter
  // blocks.
  EXPECT_GT(r_full->contentions_per_million * 1.0 + 1.0,
            r_half->contentions_per_million + 1.0);
}

TEST(SimTest, MissesCostSimulatedIo) {
  DriverConfig config = BaseConfig("pg2Q", 4);
  config.num_frames = 64;  // far below the 4096-page footprint
  config.prewarm = false;
  SimCosts costs;
  costs.io_read = 100'000;  // 0.1 ms
  auto result = RunSimulation(config, costs);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->misses, 0u);
  EXPECT_LT(result->hit_ratio, 1.0);
  EXPECT_GT(result->evictions, 0u);
  // Throughput must be far below the zero-miss run's.
  auto fast = RunSimulation(BaseConfig("pg2Q", 4));
  ASSERT_TRUE(fast.ok());
  EXPECT_LT(result->throughput_tps, fast->throughput_tps / 2);
}

TEST(SimTest, DirtyEvictionsWriteBack) {
  DriverConfig config = BaseConfig("pg2Q", 4);
  config.num_frames = 128;
  config.prewarm = false;
  config.workload.name = "dbt2";  // has writes
  SimCosts costs;
  costs.io_read = 100'000;
  costs.io_write = 100'000;
  auto result = RunSimulation(config, costs);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->writebacks, 0u);
}

TEST(SimTest, HitRatioMatchesRealPoolSingleStream) {
  // The simulator hosts the real policy: its hit ratio on one processor
  // must match the real buffer pool's on the same trace. (Count-based so
  // both consume exactly the same number of transactions.)
  DriverConfig config;
  config.workload.name = "dbt1";
  config.workload.num_pages = 2048;
  config.num_threads = 1;
  config.transactions_per_thread = 2000;
  config.num_frames = 256;
  config.prewarm = false;
  config.system.policy = "2q";
  config.system.coordinator = "serialized";
  config.page_size = 512;
  config.think_work = 1;
  auto sim = RunSimulation(config);
  auto real = RunDriver(config);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE(real.ok()) << real.status().ToString();
  EXPECT_EQ(sim->hits, real->hits);
  EXPECT_EQ(sim->misses, real->misses);
}

TEST(SimTest, BatchingPreservesHitRatioInSim) {
  DriverConfig config = BaseConfig("pg2Q", 8);
  config.num_frames = 512;
  config.prewarm = false;
  auto serialized = RunSimulation(config);
  config.system = PaperSystemConfig("pgBatPre").value();
  auto batched = RunSimulation(config);
  ASSERT_TRUE(serialized.ok());
  ASSERT_TRUE(batched.ok());
  // Multi-processor interleavings differ, so exact equality is not
  // required — but the ratios must be close (Fig. 8's overlapping curves).
  EXPECT_NEAR(serialized->hit_ratio, batched->hit_ratio, 0.02);
}

TEST(SimTest, TwoQOutHitsClockInSim) {
  auto run = [](const char* system) {
    DriverConfig config;
    config.workload.name = "seqloop";
    config.workload.num_pages = 600;
    config.num_threads = 2;
    config.duration_ms = 200;
    config.warmup_ms = 100;
    config.num_frames = 512;
    config.prewarm = false;
    config.system = PaperSystemConfig(system).value();
    SimCosts costs;
    costs.io_read = 100'000;
    auto result = RunSimulation(config, costs);
    EXPECT_TRUE(result.ok());
    return result->hit_ratio;
  };
  EXPECT_GT(run("pg2Q"), run("pgClock") + 0.2)
      << "2Q's ghost list must beat clock on a loop";
}

TEST(SimTest, ShardedAcquiresFewerLocksThanCombining) {
  // The sharded acceptance criterion: at 16 processors on dbt2 the
  // lock-free hit path plus per-shard commits must acquire fewer locks
  // than the flat-combining stack — hits never lock, and the remaining
  // commit traffic splits over the shards.
  auto combining = RunSimulation(BaseConfig("pgBat++", 16));
  auto sharded = RunSimulation(BaseConfig("pgShard", 16));
  ASSERT_TRUE(combining.ok()) << combining.status().ToString();
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_LT(sharded->lock.acquisitions, combining->lock.acquisitions)
      << "pgShard must acquire fewer locks than pgBat++ at 16 processors";
}

TEST(SimTest, ShardedScalesPastSixtyFourProcessors) {
  // The p=64..128 regime the bench sweep covers: throughput must keep
  // growing (or at worst hold) when the machine doubles past the paper's
  // largest configuration — the per-shard locks keep the commit traffic
  // from re-serializing.
  const double t64 = SimTps("pgShard", 64);
  const double t128 = SimTps("pgShard", 128);
  EXPECT_GT(t128, t64 * 0.9)
      << "pgShard must not collapse between 64 and 128 processors";
}

TEST(SimTest, NumaSingleNodeIsBitIdentical) {
  // numa_nodes = 1 must preserve the original (P-1)/P coherence scaling
  // exactly — every existing baseline depends on it.
  SimCosts numa1;
  numa1.numa_nodes = 1;
  auto base = RunSimulation(BaseConfig("pgBatPre", 8));
  auto under_numa1 = RunSimulation(BaseConfig("pgBatPre", 8), numa1);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(under_numa1.ok());
  EXPECT_EQ(base->transactions, under_numa1->transactions);
  EXPECT_EQ(base->lock.acquisitions, under_numa1->lock.acquisitions);
  EXPECT_DOUBLE_EQ(base->throughput_tps, under_numa1->throughput_tps);
}

TEST(SimTest, NumaRemotePenaltySlowsCoherenceBoundSystems) {
  // With 4 nodes most peers are remote, so [coh] transfers cost more and
  // a coherence-bound stack loses throughput relative to flat SMP.
  SimCosts numa4;
  numa4.numa_nodes = 4;
  numa4.numa_remote_mult = 4.0;
  const double flat = SimTps("pg2Q", 16);
  const double numa = SimTps("pg2Q", 16, numa4);
  EXPECT_LT(numa, flat)
      << "cross-node coherence transfers must cost throughput";
}

TEST(SimMatrixTest, RunsAllCells) {
  DriverConfig base = ScalabilityRunConfig("dbt1", 2048, 20);
  base.warmup_ms = 5;
  auto cells = RunSystemMatrixSim(base, {"pgClock", "pg2Q"}, {1, 4},
                                  SimCosts());
  ASSERT_TRUE(cells.ok());
  EXPECT_EQ(cells->size(), 4u);
  for (const auto& cell : cells.value()) {
    EXPECT_GT(cell.result.transactions, 0u);
  }
}

}  // namespace
}  // namespace bpw
