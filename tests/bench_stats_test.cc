// Unit tests for the benchmark-pipeline statistics helpers, including the
// adversarial inputs the compare gate must survive: n = 1, constant
// series, heavy-tailed samples, empty vectors, mismatched lengths.
#include "bench/stats.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace bpw {
namespace bench {
namespace {

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(Percentile({}, 50), 0.0);
}

TEST(Percentile, SingleSampleAtEveryPercentile) {
  EXPECT_EQ(Percentile({7.5}, 0), 7.5);
  EXPECT_EQ(Percentile({7.5}, 50), 7.5);
  EXPECT_EQ(Percentile({7.5}, 100), 7.5);
}

TEST(Percentile, LinearInterpolationBetweenRanks) {
  // Sorted {10, 20, 30, 40}: rank(50%) = 1.5 -> 25; rank(25%) = 0.75 -> 17.5.
  const std::vector<double> v = {40, 10, 30, 20};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 17.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 40.0);
}

TEST(Percentile, OutOfRangePctIsClamped) {
  const std::vector<double> v = {1, 2, 3};
  EXPECT_DOUBLE_EQ(Percentile(v, -10), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 250), 3.0);
}

TEST(Summarize, EmptyIsAllZero) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.p95, 0.0);
}

TEST(Summarize, SingleSampleHasZeroStddev) {
  const Summary s = Summarize({42.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.min, 42.0);
  EXPECT_EQ(s.max, 42.0);
  EXPECT_EQ(s.mean, 42.0);
  EXPECT_EQ(s.stddev, 0.0);  // n-1 denominator undefined at n=1 -> 0
  EXPECT_EQ(s.p50, 42.0);
}

TEST(Summarize, ConstantSeries) {
  const Summary s = Summarize({5, 5, 5, 5, 5});
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p95, 5.0);
}

TEST(Summarize, KnownSampleStddev) {
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  const Summary s = Summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(Summarize, HeavyTailDoesNotOverflowOrReorder) {
  // One extreme outlier: percentiles must stay anchored to the bulk.
  const Summary s = Summarize({1, 1, 1, 1, 1, 1, 1, 1, 1, 1e12});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 1e12);
  EXPECT_DOUBLE_EQ(s.p50, 1.0);
  EXPECT_GT(s.mean, 1e10);  // mean is tail-sensitive, by design
  EXPECT_TRUE(std::isfinite(s.stddev));
}

TEST(AggregateRate, WeightsByWindowNotByTrial) {
  // Trial 1: 100 tx in 1 s. Trial 2: 1 tx in 0.001 s (a straggler whose
  // per-trial rate, 1000 tps, would dominate a mean-of-rates).
  const double rate = AggregateRate({100, 1}, {1.0, 0.001});
  EXPECT_NEAR(rate, 101.0 / 1.001, 1e-9);
}

TEST(AggregateRate, ZeroWindowReturnsZero) {
  EXPECT_EQ(AggregateRate({100}, {0.0}), 0.0);
  EXPECT_EQ(AggregateRate({}, {}), 0.0);
}

TEST(AggregateRate, MismatchedLengthsUseCommonPrefix) {
  EXPECT_DOUBLE_EQ(AggregateRate({10, 10, 999}, {1.0, 1.0}), 10.0);
}

TEST(RelativeDelta, Basics) {
  EXPECT_DOUBLE_EQ(RelativeDelta(100, 110), 0.10);
  EXPECT_DOUBLE_EQ(RelativeDelta(100, 90), -0.10);
  EXPECT_EQ(RelativeDelta(0, 50), 0.0);  // zero baseline -> no ratio
}

TEST(BootstrapMeanDiff, DeterministicForFixedSeed) {
  const std::vector<double> base = {10, 11, 9, 10.5, 9.5};
  const std::vector<double> cand = {12, 13, 11, 12.5, 11.5};
  const BootstrapCI a = BootstrapMeanDiff(base, cand, 2000, 0.95, 7);
  const BootstrapCI b = BootstrapMeanDiff(base, cand, 2000, 0.95, 7);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_TRUE(a.valid);
}

TEST(BootstrapMeanDiff, DetectsAClearShift) {
  // Candidate sits ~2 above baseline with small spread: the CI must
  // exclude zero and bracket the true difference.
  const std::vector<double> base = {10, 11, 9, 10.5, 9.5, 10.2};
  const std::vector<double> cand = {12, 13, 11, 12.5, 11.5, 12.2};
  const BootstrapCI ci = BootstrapMeanDiff(base, cand, 4000, 0.95, 7);
  ASSERT_TRUE(ci.valid);
  EXPECT_GT(ci.lo, 0.0);
  EXPECT_LT(ci.lo, 2.0);
  EXPECT_GT(ci.hi, 2.0);
  EXPECT_LT(ci.hi, 4.0);
}

TEST(BootstrapMeanDiff, OverlappingSamplesIncludeZero) {
  const std::vector<double> base = {10, 12, 9, 11, 10};
  const std::vector<double> cand = {11, 9, 12, 10, 10.5};
  const BootstrapCI ci = BootstrapMeanDiff(base, cand, 4000, 0.95, 7);
  ASSERT_TRUE(ci.valid);
  EXPECT_LT(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.0);
}

TEST(BootstrapMeanDiff, SingleTrialIsInvalidPointEstimate) {
  const BootstrapCI ci = BootstrapMeanDiff({10}, {12}, 4000, 0.95, 7);
  EXPECT_FALSE(ci.valid);
  EXPECT_DOUBLE_EQ(ci.lo, 2.0);
  EXPECT_DOUBLE_EQ(ci.hi, 2.0);
}

TEST(BootstrapMeanDiff, EmptySidesAreInvalid) {
  const BootstrapCI ci = BootstrapMeanDiff({}, {1, 2, 3}, 100, 0.95, 7);
  EXPECT_FALSE(ci.valid);
}

TEST(BootstrapMeanDiff, ConstantSeriesYieldZeroWidthValidInterval) {
  const std::vector<double> base = {5, 5, 5, 5};
  const std::vector<double> cand = {6, 6, 6, 6};
  const BootstrapCI ci = BootstrapMeanDiff(base, cand, 1000, 0.95, 7);
  ASSERT_TRUE(ci.valid);
  EXPECT_DOUBLE_EQ(ci.lo, 1.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

TEST(BootstrapMeanDiff, HeavyTailWidensButStaysFinite) {
  const std::vector<double> base = {10, 10, 10, 10, 10, 10, 10, 500};
  const std::vector<double> cand = {10, 10, 10, 10, 10, 10, 10, 10};
  const BootstrapCI ci = BootstrapMeanDiff(base, cand, 4000, 0.95, 7);
  ASSERT_TRUE(ci.valid);
  EXPECT_TRUE(std::isfinite(ci.lo));
  EXPECT_TRUE(std::isfinite(ci.hi));
  EXPECT_LT(ci.hi - ci.lo, 1000.0);
  // The outlier sits in the baseline, so the diff skews negative.
  EXPECT_LT(ci.lo, 0.0);
}

TEST(BootstrapMeanDiff, WiderConfidenceGivesWiderInterval) {
  const std::vector<double> base = {10, 11, 9, 10.5, 9.5, 10.2, 10.8};
  const std::vector<double> cand = {11, 12, 10, 11.5, 10.5, 11.2, 11.8};
  const BootstrapCI c90 = BootstrapMeanDiff(base, cand, 4000, 0.90, 7);
  const BootstrapCI c99 = BootstrapMeanDiff(base, cand, 4000, 0.99, 7);
  ASSERT_TRUE(c90.valid);
  ASSERT_TRUE(c99.valid);
  EXPECT_GE(c99.hi - c99.lo, c90.hi - c90.lo);
}

}  // namespace
}  // namespace bench
}  // namespace bpw
