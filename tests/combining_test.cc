// Tests for the flat-combining commit path ("pgBat++"): publication at the
// batch threshold, combiner adoption of peer batches, the two-phase
// apply/post-commit split (early lock release), slot recycling, graceful
// degradation when publication slots run out, and the conservation
// invariant that catches each seeded handoff bug.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "core/combining_coordinator.h"
#include "policy/lru.h"

namespace bpw {
namespace {

// An instrumented policy that records the order of operations it sees.
class RecordingPolicy : public ReplacementPolicy {
 public:
  explicit RecordingPolicy(size_t frames) : ReplacementPolicy(frames) {}

  void OnHit(PageId page, FrameId) override { hits.push_back(page); }
  void OnMiss(PageId page, FrameId) override {
    misses.push_back(page);
    resident.insert(page);
  }
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId) override {
    if (resident.empty() || !evictable(0)) {
      return Status::ResourceExhausted("empty");
    }
    const PageId victim = *resident.begin();
    resident.erase(resident.begin());
    return Victim{victim, 0};
  }
  void OnErase(PageId page, FrameId) override {
    erases.push_back(page);
    resident.erase(page);
  }
  Status CheckInvariants() const override { return Status::OK(); }
  size_t resident_count() const override { return resident.size(); }
  bool IsResident(PageId page) const override {
    return resident.count(page) > 0;
  }
  std::string name() const override { return "recording"; }

  std::vector<PageId> hits;
  std::vector<PageId> misses;
  std::vector<PageId> erases;
  std::set<PageId> resident;
};

CombiningCoordinator::Options Opts(size_t queue, size_t threshold,
                                   bool prefetch = false) {
  CombiningCoordinator::Options options;
  options.queue_size = queue;
  options.batch_threshold = threshold;
  options.prefetch = prefetch;
  return options;
}

TEST(CombiningTest, HitsAreDeferredUntilThreshold) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  CombiningCoordinator coord(std::move(owned), Opts(8, 4));
  auto slot = coord.RegisterThread();

  for (PageId p = 0; p < 3; ++p) coord.OnHit(slot.get(), p, 0);
  EXPECT_TRUE(policy->hits.empty()) << "below threshold: nothing committed";
  EXPECT_EQ(coord.lock_stats().acquisitions, 0u);
  EXPECT_EQ(coord.published_batches(), 0u)
      << "publication also waits for the threshold";

  coord.OnHit(slot.get(), 3, 0);  // reaches threshold of 4
  EXPECT_EQ(policy->hits.size(), 4u);
  EXPECT_EQ(coord.lock_stats().acquisitions, 1u);
  EXPECT_EQ(coord.published_batches(), 1u);
  EXPECT_EQ(coord.published_entries(), 4u);
  EXPECT_TRUE(coord.CheckQuiescedInvariants().ok());
}

TEST(CombiningTest, CommitPreservesArrivalOrder) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  CombiningCoordinator coord(std::move(owned), Opts(16, 8));
  auto slot = coord.RegisterThread();
  for (PageId p = 100; p < 108; ++p) coord.OnHit(slot.get(), p, 0);
  std::vector<PageId> expected;
  for (PageId p = 100; p < 108; ++p) expected.push_back(p);
  EXPECT_EQ(policy->hits, expected);
}

// The flat-combining core: a batch published while the lock was held is
// adopted by the NEXT combiner in its single lock-holding period, so the
// publishing thread never re-acquires for it.
TEST(CombiningTest, CombinerAdoptsPeerBatch) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  CombiningCoordinator coord(std::move(owned), Opts(8, 4));
  auto waiter = coord.RegisterThread();
  auto combiner = coord.RegisterThread();

  // Hold the lock from another thread so the waiter's TryLock fails.
  auto blocker_slot = coord.RegisterThread();
  std::atomic<bool> release{false};
  std::atomic<bool> holding{false};
  std::thread blocker([&] {
    coord.CompleteMiss(blocker_slot.get(), 1000, 1);
    auto victim = coord.ChooseVictim(
        blocker_slot.get(),
        [&](FrameId) {
          holding.store(true);
          while (!release.load()) std::this_thread::yield();
          return true;
        },
        2000);
    EXPECT_TRUE(victim.ok());
  });
  while (!holding.load()) std::this_thread::yield();

  // Waiter reaches the threshold: publishes, fails TryLock, spins out its
  // bounded handoff, and returns non-blocked with the batch still posted.
  for (PageId p = 0; p < 4; ++p) coord.OnHit(waiter.get(), p, 0);
  EXPECT_EQ(coord.published_batches(), 1u);
  EXPECT_GE(coord.lock_stats().trylock_failures, 1u);
  EXPECT_EQ(coord.lock_stats().contentions, 0u) << "handoff never blocks";
  release.store(true);
  blocker.join();
  // The blocker's miss path drains only its own slot — the waiter's batch
  // is still published, not yet applied.
  EXPECT_EQ(coord.combined_peer_batches(), 0u);

  // The next combiner retires its own batch AND the waiter's in one hold.
  const uint64_t acq_before = coord.lock_stats().acquisitions;
  for (PageId p = 10; p < 14; ++p) coord.OnHit(combiner.get(), p, 0);
  EXPECT_EQ(coord.lock_stats().acquisitions, acq_before + 1);
  EXPECT_EQ(coord.combined_peer_batches(), 1u);
  // Hit counts: waiter's 4 + combiner's 4 (order between threads is
  // unspecified; per-thread order is preserved).
  std::multiset<PageId> seen(policy->hits.begin(), policy->hits.end());
  for (PageId p = 0; p < 4; ++p) EXPECT_EQ(seen.count(p), 1u);
  for (PageId p = 10; p < 14; ++p) EXPECT_EQ(seen.count(p), 1u);
  EXPECT_TRUE(coord.CheckQuiescedInvariants().ok());

  // The adopted slot was recycled post-release: the waiter can publish and
  // self-commit again.
  for (PageId p = 20; p < 24; ++p) coord.OnHit(waiter.get(), p, 0);
  EXPECT_EQ(coord.published_batches(), 3u);
  EXPECT_TRUE(coord.CheckQuiescedInvariants().ok());
}

TEST(CombiningTest, MissCommitsOwnPublicationFirst) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  CombiningCoordinator coord(std::move(owned), Opts(16, 10));
  auto slot = coord.RegisterThread();
  coord.OnHit(slot.get(), 1, 0);
  coord.OnHit(slot.get(), 2, 0);
  coord.CompleteMiss(slot.get(), 50, 0);
  ASSERT_EQ(policy->hits.size(), 2u);
  ASSERT_EQ(policy->misses.size(), 1u);
  EXPECT_EQ(policy->hits[0], 1u);
  EXPECT_EQ(policy->hits[1], 2u);
}

TEST(CombiningTest, StaleEntriesSkippedViaTagValidation) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  CombiningCoordinator coord(std::move(owned), Opts(8, 4));

  std::vector<std::atomic<PageId>> tags(16);
  for (auto& t : tags) t.store(kInvalidPageId);
  coord.BindFrameTags(tags.data(), tags.size());

  auto slot = coord.RegisterThread();
  tags[0].store(10);
  tags[1].store(11);
  coord.OnHit(slot.get(), 10, 0);
  coord.OnHit(slot.get(), 11, 1);
  // Page 11 is evicted and frame 1 re-used before the commit.
  tags[1].store(99);
  coord.OnHit(slot.get(), 10, 0);
  coord.OnHit(slot.get(), 10, 0);  // 4th entry triggers publish + commit
  ASSERT_EQ(policy->hits.size(), 3u) << "stale entry must be skipped";
  for (PageId p : policy->hits) EXPECT_EQ(p, 10u);
  EXPECT_EQ(coord.stale_commits(), 1u);
  // A stale skip is NOT a conservation leak: the entry was drained (and
  // discarded), not lost.
  EXPECT_TRUE(coord.CheckQuiescedInvariants().ok());
}

TEST(CombiningTest, FlushSlotCommitsPartialQueue) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  CombiningCoordinator coord(std::move(owned), Opts(64, 32));
  auto slot = coord.RegisterThread();
  coord.OnHit(slot.get(), 5, 0);
  coord.OnHit(slot.get(), 6, 0);
  EXPECT_TRUE(policy->hits.empty());
  coord.FlushSlot(slot.get());
  EXPECT_EQ(policy->hits.size(), 2u);
  // Flushing an empty queue is a no-op (no lock acquisition).
  const uint64_t acq = coord.lock_stats().acquisitions;
  coord.FlushSlot(slot.get());
  EXPECT_EQ(coord.lock_stats().acquisitions, acq);
}

TEST(CombiningTest, SlotDestructionFlushesQueue) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  CombiningCoordinator coord(std::move(owned), Opts(64, 32));
  {
    auto slot = coord.RegisterThread();
    coord.OnHit(slot.get(), 8, 0);
  }  // slot destroyed with one queued access
  EXPECT_EQ(policy->hits.size(), 1u);
  EXPECT_TRUE(coord.CheckQuiescedInvariants().ok());
}

TEST(CombiningTest, ThresholdClampedToQueueSize) {
  CombiningCoordinator coord(std::make_unique<LruPolicy>(4),
                             Opts(/*queue=*/4, /*threshold=*/100));
  EXPECT_EQ(coord.options().batch_threshold, 4u);
  CombiningCoordinator zero(std::make_unique<LruPolicy>(4), Opts(0, 0));
  EXPECT_EQ(zero.options().queue_size, 1u);
  EXPECT_EQ(zero.options().batch_threshold, 1u);
}

// More registered threads than publication slots is a supported
// configuration: the overflow threads run plain BP-Wrapper (no publish,
// no adoption) and nothing is lost.
TEST(CombiningTest, DegradesGracefullyWhenSlotsExhausted) {
  CombiningCoordinator::Options options = Opts(8, 4);
  options.max_slots = 1;
  CombiningCoordinator coord(std::make_unique<RecordingPolicy>(16), options);
  auto slotted = coord.RegisterThread();
  auto overflow = coord.RegisterThread();
  for (PageId p = 0; p < 4; ++p) coord.OnHit(overflow.get(), p, 0);
  for (PageId p = 10; p < 14; ++p) coord.OnHit(slotted.get(), p, 0);
  EXPECT_EQ(coord.committed_entries(), 8u);
  EXPECT_EQ(coord.published_batches(), 1u) << "only the slotted thread posts";
  EXPECT_TRUE(coord.CheckQuiescedInvariants().ok());
  // A released publication index is re-usable by a later registrant.
  overflow.reset();
  slotted.reset();
  auto next = coord.RegisterThread();
  for (PageId p = 20; p < 24; ++p) coord.OnHit(next.get(), p, 0);
  EXPECT_EQ(coord.published_batches(), 2u);
}

TEST(CombiningTest, PrefetchVariantBehavesIdentically) {
  auto run = [](bool prefetch) {
    auto owned = std::make_unique<RecordingPolicy>(16);
    RecordingPolicy* policy = owned.get();
    CombiningCoordinator coord(std::move(owned), Opts(8, 4, prefetch));
    auto slot = coord.RegisterThread();
    for (PageId p = 0; p < 20; ++p) coord.OnHit(slot.get(), p, 0);
    coord.FlushSlot(slot.get());
    return policy->hits;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(CombiningTest, NameReflectsPrefetch) {
  CombiningCoordinator plain(std::make_unique<LruPolicy>(4), Opts(8, 4));
  EXPECT_EQ(plain.name(), "combining");
  CombiningCoordinator pre(std::make_unique<LruPolicy>(4), Opts(8, 4, true));
  EXPECT_EQ(pre.name(), "combining+pre");
}

// --- Seeded-mutation coverage: each handoff bug must break the
// --- conservation invariant, in a single-threaded deterministic replay.

TEST(CombiningMutationTest, DrainTwiceBreaksConservation) {
  CombiningCoordinator::Options options = Opts(8, 4);
  options.test_drain_twice = true;
  CombiningCoordinator coord(std::make_unique<RecordingPolicy>(16), options);
  auto slot = coord.RegisterThread();
  for (PageId p = 0; p < 4; ++p) coord.OnHit(slot.get(), p, 0);
  Status status = coord.CheckQuiescedInvariants();
  ASSERT_FALSE(status.ok()) << "double-applied slot must be detected";
  EXPECT_NE(status.message().find("publication conservation"),
            std::string::npos)
      << status.message();
}

TEST(CombiningMutationTest, ClearReadyBeforeApplyBreaksConservation) {
  CombiningCoordinator::Options options = Opts(8, 4);
  options.test_clear_ready_before_apply = true;
  CombiningCoordinator coord(std::make_unique<RecordingPolicy>(16), options);
  auto slot = coord.RegisterThread();
  for (PageId p = 0; p < 4; ++p) coord.OnHit(slot.get(), p, 0);
  Status status = coord.CheckQuiescedInvariants();
  ASSERT_FALSE(status.ok()) << "dropped batch must be detected";
  EXPECT_NE(status.message().find("publication conservation"),
            std::string::npos)
      << status.message();
}

TEST(CombiningMutationTest, SkipReleaseLeavesSlotStuckDraining) {
  CombiningCoordinator::Options options = Opts(8, 4);
  options.test_skip_release = true;
  CombiningCoordinator coord(std::make_unique<RecordingPolicy>(16), options);
  auto slot = coord.RegisterThread();
  for (PageId p = 0; p < 4; ++p) coord.OnHit(slot.get(), p, 0);
  Status status = coord.CheckQuiescedInvariants();
  ASSERT_FALSE(status.ok()) << "unrecycled slot must be detected";
  EXPECT_NE(status.message().find("kDraining"), std::string::npos)
      << status.message();
}

TEST(CombiningTest, ConcurrentThreadsAllCommitted) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  CombiningCoordinator coord(std::move(owned), Opts(16, 8));
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&coord, t] {
      auto slot = coord.RegisterThread();
      for (int i = 0; i < kHitsPerThread; ++i) {
        coord.OnHit(slot.get(), static_cast<PageId>(t), 0);
      }
      coord.FlushSlot(slot.get());
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(policy->hits.size(),
            static_cast<size_t>(kThreads) * kHitsPerThread);
  std::map<PageId, int> counts;
  for (PageId p : policy->hits) ++counts[p];
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(counts[static_cast<PageId>(t)], kHitsPerThread);
  }
  // Conservation holds after a genuinely concurrent run, and every batch
  // landed: committed == published remainder accounting is internal, but
  // the quiesced equation must balance exactly.
  EXPECT_TRUE(coord.CheckQuiescedInvariants().ok());
}

}  // namespace
}  // namespace bpw
