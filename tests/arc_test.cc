// Behavioural tests for ARC: list transitions, ghost adaptation, directory
// bounds.
#include <gtest/gtest.h>

#include "policy/arc.h"
#include "util/random.h"

namespace bpw {
namespace {

ReplacementPolicy::EvictableFn All() {
  return [](FrameId) { return true; };
}

// Residency-tracking driver (same shape as the LIRS test's).
class ArcDriver {
 public:
  explicit ArcDriver(ArcPolicy& arc) : arc_(arc) {
    for (size_t i = arc.num_frames(); i-- > 0;) {
      free_.push_back(static_cast<FrameId>(i));
    }
    frame_of_.resize(arc.num_frames(), kInvalidPageId);
  }

  bool Access(PageId page) {
    arc_.AssertExclusiveAccess();  // drivers run single-threaded
    for (FrameId f = 0; f < frame_of_.size(); ++f) {
      if (frame_of_[f] == page) {
        arc_.OnHit(page, f);
        return true;
      }
    }
    FrameId frame;
    if (!free_.empty()) {
      frame = free_.back();
      free_.pop_back();
    } else {
      auto victim = arc_.ChooseVictim(All(), page);
      EXPECT_TRUE(victim.ok());
      frame = victim->frame;
      frame_of_[frame] = kInvalidPageId;
    }
    frame_of_[frame] = page;
    arc_.OnMiss(page, frame);
    return false;
  }

 private:
  ArcPolicy& arc_;
  std::vector<FrameId> free_;
  std::vector<PageId> frame_of_;
};

TEST(ArcTest, NewPagesEnterT1) {
  ArcPolicy arc(8);
  arc.AssertExclusiveAccess();
  arc.OnMiss(1, 0);
  arc.OnMiss(2, 1);
  EXPECT_EQ(arc.t1_size(), 2u);
  EXPECT_EQ(arc.t2_size(), 0u);
}

TEST(ArcTest, HitPromotesToT2) {
  ArcPolicy arc(8);
  arc.AssertExclusiveAccess();
  arc.OnMiss(1, 0);
  arc.OnHit(1, 0);
  EXPECT_EQ(arc.t1_size(), 0u);
  EXPECT_EQ(arc.t2_size(), 1u);
  arc.OnHit(1, 0);  // T2 hit stays in T2
  EXPECT_EQ(arc.t2_size(), 1u);
  EXPECT_TRUE(arc.CheckInvariants().ok());
}

TEST(ArcTest, EvictionFromT1LeavesB1Ghost) {
  ArcPolicy arc(2);
  arc.AssertExclusiveAccess();
  arc.OnMiss(1, 0);
  arc.OnMiss(2, 1);
  auto victim = arc.ChooseVictim(All(), 3);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->page, 1u);  // LRU of T1
  EXPECT_EQ(arc.b1_size(), 1u);
  EXPECT_FALSE(arc.IsResident(1));
}

TEST(ArcTest, B1GhostHitGrowsTargetAndEntersT2) {
  // Needs a T2 resident so |T1|+|B1| stays below c and the ghost survives
  // the next insert's directory trim (with |T1| == c, textbook ARC forgets
  // the eviction too).
  ArcPolicy arc(2);
  arc.AssertExclusiveAccess();
  ArcDriver driver(arc);
  driver.Access(1);
  driver.Access(2);
  driver.Access(2);  // 2 -> T2
  driver.Access(3);  // evicts 1 (T1 LRU) -> B1
  ASSERT_EQ(arc.b1_size(), 1u);
  const size_t p_before = arc.target_p();
  driver.Access(1);  // ghost hit
  EXPECT_GT(arc.target_p(), p_before);
  EXPECT_EQ(arc.t2_size(), 2u);  // pages 2 and 1
  EXPECT_EQ(arc.b1_size(), 1u);  // page 3, evicted to make room for 1
  EXPECT_TRUE(arc.CheckInvariants().ok());
}

TEST(ArcTest, B2GhostHitShrinksTarget) {
  ArcPolicy arc(2);
  arc.AssertExclusiveAccess();
  ArcDriver driver(arc);
  // Build a T2 page and push it out through B2.
  driver.Access(1);
  driver.Access(1);  // 1 in T2
  driver.Access(2);
  driver.Access(2);  // 2 in T2; T1 empty
  driver.Access(3);  // evicts LRU of T2 (page 1) -> B2
  ASSERT_GE(arc.b2_size(), 1u);
  // Raise p first so the shrink is observable.
  driver.Access(4);     // evict; fills
  const size_t before = arc.target_p();
  driver.Access(1);     // B2 ghost hit
  EXPECT_LE(arc.target_p(), before);
  EXPECT_TRUE(arc.CheckInvariants().ok());
}

TEST(ArcTest, DirectoryNeverExceedsTwoC) {
  constexpr size_t kFrames = 16;
  ArcPolicy arc(kFrames);
  arc.AssertExclusiveAccess();
  ArcDriver driver(arc);
  Random rng(5);
  for (int i = 0; i < 20000; ++i) {
    // Mixed locality to exercise both ghosts.
    PageId page = rng.Bernoulli(0.5) ? rng.Uniform(kFrames)
                                     : rng.Uniform(kFrames * 20);
    driver.Access(page);
    ASSERT_LE(arc.t1_size() + arc.t2_size() + arc.b1_size() + arc.b2_size(),
              2 * kFrames);
    ASSERT_LE(arc.t1_size() + arc.b1_size(), kFrames);
    if (i % 1000 == 0) {
      ASSERT_TRUE(arc.CheckInvariants().ok())
          << arc.CheckInvariants().ToString();
    }
  }
}

TEST(ArcTest, AdaptsToRecencyFavouringWorkload) {
  // A loop sized between |T1| capacity and c produces steady B1 ghost hits,
  // which must push the target p above zero at some point.
  constexpr size_t kFrames = 32;
  ArcPolicy arc(kFrames);
  arc.AssertExclusiveAccess();
  ArcDriver driver(arc);
  // Hot set of 8 pages pinned into T2 by repetition.
  for (int round = 0; round < 3; ++round) {
    for (PageId p = 0; p < 8; ++p) driver.Access(p);
  }
  size_t max_p = arc.target_p();
  for (int lap = 0; lap < 30; ++lap) {
    for (PageId p = 0; p < 8; ++p) driver.Access(p);
    for (PageId p = 1000; p < 1028; ++p) driver.Access(p);  // 28-page loop
    max_p = std::max(max_p, arc.target_p());
  }
  EXPECT_GT(max_p, 0u);
  EXPECT_TRUE(arc.CheckInvariants().ok());
}

TEST(ArcTest, ScanDoesNotFlushT2) {
  constexpr size_t kFrames = 32;
  ArcPolicy arc(kFrames);
  arc.AssertExclusiveAccess();
  ArcDriver driver(arc);
  // Hot set in T2.
  for (int round = 0; round < 3; ++round) {
    for (PageId p = 0; p < 8; ++p) driver.Access(p);
  }
  ASSERT_EQ(arc.t2_size(), 8u);
  // Long scan of cold pages.
  for (PageId p = 10000; p < 10400; ++p) driver.Access(p);
  int survivors = 0;
  for (PageId p = 0; p < 8; ++p) survivors += arc.IsResident(p);
  EXPECT_GE(survivors, 6) << "scan flushed the frequency list";
}

TEST(ArcTest, EraseResidentAndGhost) {
  ArcPolicy arc(2);
  arc.AssertExclusiveAccess();
  ArcDriver driver(arc);
  driver.Access(1);
  driver.Access(2);
  driver.Access(3);  // 1 -> B1
  arc.OnErase(2, /*frame=*/kInvalidFrameId);  // wrong frame: no-op
  EXPECT_TRUE(arc.IsResident(2));
  // Erase the ghost entry for page 1.
  arc.OnErase(1, kInvalidFrameId);
  EXPECT_EQ(arc.b1_size(), 0u);
  EXPECT_TRUE(arc.CheckInvariants().ok());
}

}  // namespace
}  // namespace bpw
