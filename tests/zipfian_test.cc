// Distribution properties of the Zipfian samplers used by the workloads.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/random.h"
#include "util/zipfian.h"

namespace bpw {
namespace {

TEST(ZipfianTest, StaysInRange) {
  Random rng(1);
  ZipfianGenerator zipf(1000, 0.9);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(ZipfianTest, SingleElementDomain) {
  Random rng(2);
  ZipfianGenerator zipf(1, 0.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(rng), 0u);
}

TEST(ZipfianTest, ItemZeroIsMostPopular) {
  Random rng(3);
  ZipfianGenerator zipf(1000, 0.99);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Next(rng)];
  int max_count = 0;
  uint64_t argmax = ~0ULL;
  for (auto& [v, c] : counts) {
    if (c > max_count) {
      max_count = c;
      argmax = v;
    }
  }
  EXPECT_EQ(argmax, 0u);
}

TEST(ZipfianTest, SkewConcentratesMass) {
  Random rng(4);
  ZipfianGenerator zipf(10000, 0.99);
  int in_top_100 = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next(rng) < 100) ++in_top_100;
  }
  // With theta=0.99, the top 1% of keys should draw far more than 1% of
  // accesses (analytically ~60%; accept anything clearly skewed).
  EXPECT_GT(in_top_100, kSamples / 3);
}

TEST(ZipfianTest, LowThetaIsFlatter) {
  Random rng_hi(5), rng_lo(5);
  ZipfianGenerator hi(10000, 0.99), lo(10000, 0.2);
  int top_hi = 0, top_lo = 0;
  for (int i = 0; i < 100000; ++i) {
    if (hi.Next(rng_hi) < 100) ++top_hi;
    if (lo.Next(rng_lo) < 100) ++top_lo;
  }
  EXPECT_GT(top_hi, 2 * top_lo);
}

TEST(ZipfianTest, DeterministicGivenRngSeed) {
  Random a(77), b(77);
  ZipfianGenerator za(5000, 0.8), zb(5000, 0.8);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(za.Next(a), zb.Next(b));
}

TEST(ZipfianTest, LargeDomainApproximationInRange) {
  // Exercises the Euler-Maclaurin zeta tail path (> 2^20 keys).
  Random rng(6);
  ZipfianGenerator zipf(uint64_t{1} << 22, 0.9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), uint64_t{1} << 22);
  }
}

TEST(ScrambledZipfianTest, StaysInRange) {
  Random rng(7);
  ScrambledZipfianGenerator zipf(1234, 0.9);
  for (int i = 0; i < 50000; ++i) EXPECT_LT(zipf.Next(rng), 1234u);
}

TEST(ScrambledZipfianTest, HotKeysAreScattered) {
  Random rng(8);
  ScrambledZipfianGenerator zipf(10000, 0.99);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Next(rng)];
  // Find the 10 hottest keys; they should not all sit in the first 1% of
  // the key space (they would under the unscrambled generator).
  std::vector<std::pair<int, uint64_t>> by_count;
  for (auto& [v, c] : counts) by_count.emplace_back(c, v);
  std::sort(by_count.rbegin(), by_count.rend());
  int in_front = 0;
  for (int i = 0; i < 10; ++i) {
    if (by_count[i].second < 100) ++in_front;
  }
  EXPECT_LT(in_front, 5);
}

TEST(ScrambledZipfianTest, StillSkewed) {
  Random rng(9);
  ScrambledZipfianGenerator zipf(10000, 0.99);
  std::map<uint64_t, int> counts;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Next(rng)];
  int max_count = 0;
  for (auto& [v, c] : counts) max_count = std::max(max_count, c);
  // The hottest page must dominate the uniform expectation (20 samples).
  EXPECT_GT(max_count, kSamples / 10000 * 50);
}

}  // namespace
}  // namespace bpw
