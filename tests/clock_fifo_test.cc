// Behavioural tests for FIFO, CLOCK, and GCLOCK.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "policy/clock.h"
#include "policy/fifo.h"
#include "policy/gclock.h"

namespace bpw {
namespace {

ReplacementPolicy::EvictableFn All() {
  return [](FrameId) { return true; };
}

TEST(FifoTest, HitsDoNotAffectEvictionOrder) {
  FifoPolicy fifo(3);
  fifo.AssertExclusiveAccess();
  fifo.OnMiss(1, 0);
  fifo.OnMiss(2, 1);
  fifo.OnMiss(3, 2);
  for (int i = 0; i < 100; ++i) fifo.OnHit(1, 0);  // FIFO ignores this
  auto victim = fifo.ChooseVictim(All(), 9);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->page, 1u);
}

TEST(FifoTest, EvictsOldestFirst) {
  FifoPolicy fifo(4);
  fifo.AssertExclusiveAccess();
  for (PageId p = 10; p < 14; ++p) {
    fifo.OnMiss(p, static_cast<FrameId>(p - 10));
  }
  for (PageId expected = 10; expected < 14; ++expected) {
    auto victim = fifo.ChooseVictim(All(), 99);
    ASSERT_TRUE(victim.ok());
    EXPECT_EQ(victim->page, expected);
  }
}

TEST(ClockTest, SecondChanceProtectsReferencedPage) {
  ClockPolicy clock(3);
  clock.AssertExclusiveAccess();
  clock.OnMiss(1, 0);
  clock.OnMiss(2, 1);
  clock.OnMiss(3, 2);
  // All pages inserted with ref=1. First eviction sweeps: clears 1,2,3's
  // bits, returns the first (frame 0, page 1).
  auto v1 = clock.ChooseVictim(All(), 4);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->page, 1u);
  clock.OnMiss(4, 0);
  // Hit page 2: its ref bit is set again; page 3's stays clear.
  clock.OnHitLockFree(2, 1);
  auto v2 = clock.ChooseVictim(All(), 5);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->page, 3u) << "referenced page 2 must survive";
}

TEST(ClockTest, HandAdvancesAcrossEvictions) {
  ClockPolicy clock(4);
  clock.AssertExclusiveAccess();
  for (PageId p = 0; p < 4; ++p) clock.OnMiss(p, static_cast<FrameId>(p));
  // No hits: first sweep clears all bits and evicts frame 0; subsequent
  // evictions continue around the clock face.
  std::vector<PageId> order;
  for (int i = 0; i < 4; ++i) {
    auto v = clock.ChooseVictim(All(), 100 + i);
    ASSERT_TRUE(v.ok());
    order.push_back(v->page);
  }
  EXPECT_EQ(order, (std::vector<PageId>{0, 1, 2, 3}));
}

TEST(ClockTest, LockFreeHitValidatesTag) {
  ClockPolicy clock(2);
  clock.AssertExclusiveAccess();
  clock.OnMiss(7, 0);
  clock.OnHitLockFree(8, 0);   // wrong page: ignored
  clock.OnHitLockFree(7, 1);   // wrong frame: ignored
  clock.OnHitLockFree(7, 99);  // out of range: ignored
  EXPECT_TRUE(clock.CheckInvariants().ok());
  EXPECT_EQ(clock.resident_count(), 1u);
}

TEST(ClockTest, ConcurrentLockFreeHitsDuringSweep) {
  // Hits from many threads while a sweeper evicts: no crashes, counters
  // stay exact under the policy-lock discipline (sweep serialized here).
  ClockPolicy clock(64);
  clock.AssertExclusiveAccess();
  for (PageId p = 0; p < 64; ++p) clock.OnMiss(p, static_cast<FrameId>(p));
  std::atomic<bool> stop{false};
  std::vector<std::thread> hitters;
  for (int t = 0; t < 4; ++t) {
    hitters.emplace_back([&clock, &stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const PageId p = (t * 16 + i) % 64;
        clock.OnHitLockFree(p, static_cast<FrameId>(p));
        ++i;
      }
    });
  }
  // Serialized evict+insert cycles while hits fly.
  for (int i = 0; i < 2000; ++i) {
    auto v = clock.ChooseVictim(All(), 1000 + i);
    ASSERT_TRUE(v.ok());
    clock.OnMiss(1000 + i, v->frame);
  }
  stop.store(true);
  for (auto& th : hitters) th.join();
  EXPECT_EQ(clock.resident_count(), 64u);
}

TEST(GClockTest, CounterSaturatesAtCap) {
  GClockPolicy gclock(2, /*max_count=*/3);
  gclock.AssertExclusiveAccess();
  gclock.OnMiss(1, 0);
  for (int i = 0; i < 100; ++i) gclock.OnHitLockFree(1, 0);
  EXPECT_TRUE(gclock.CheckInvariants().ok());  // cap invariant checked there
}

TEST(GClockTest, FrequentlyHitPageOutlivesColdOnes) {
  GClockPolicy gclock(4, 5);
  gclock.AssertExclusiveAccess();
  for (PageId p = 0; p < 4; ++p) gclock.OnMiss(p, static_cast<FrameId>(p));
  // Page 2 is hot.
  for (int i = 0; i < 5; ++i) gclock.OnHitLockFree(2, 2);
  // Evict three times: page 2 must survive all three.
  for (int i = 0; i < 3; ++i) {
    auto v = gclock.ChooseVictim(All(), 100 + i);
    ASSERT_TRUE(v.ok());
    EXPECT_NE(v->page, 2u);
  }
  EXPECT_TRUE(gclock.IsResident(2));
}

TEST(GClockTest, EvictionDecrementsUntilZero) {
  GClockPolicy gclock(1, 5);
  gclock.AssertExclusiveAccess();
  gclock.OnMiss(42, 0);
  gclock.OnHitLockFree(42, 0);  // count 2
  auto v = gclock.ChooseVictim(All(), 9);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->page, 42u);  // only candidate; sweep decrements then evicts
}

}  // namespace
}  // namespace bpw
