// Seeded violation: a lock class annotated BPW_LOCK_LEAF makes a blocking
// acquisition while held. Leaf classes must have zero blocking out-degree
// — that is the encoded form of pgShard's "never hold two shard locks"
// invariant; TryLock-bounded edges stay whitelisted (see TryNeighbor).
//
// Not compiled — analyzed standalone by `bpw_atomiclint
// --check-expectations`.

namespace corpus {

struct CorpusShardSet {
  struct CorpusShard {
    ContentionLock lock BPW_LOCK_CLASS("corpus-shard") BPW_LOCK_LEAF;
  };

  Mutex corpus_registry_mu_;

  void LeafEscalates(CorpusShard& shard) {
    ContentionLockGuard shard_guard(shard.lock);
    // bpw-atomiclint-expect(leaf-lock-acquires)
    MutexGuard registry_guard(corpus_registry_mu_);  // leaf blocks: rejected
  }

  bool TryNeighbor(CorpusShard& shard, CorpusShard& neighbor) {
    ContentionLockGuard shard_guard(shard.lock);
    // A bounded probe of a second shard is the sanctioned shape: the try
    // edge is dashed in the DOT graph and whitelisted by both rules.
    if (neighbor.lock.TryLock()) {
      neighbor.lock.Unlock();
      return true;
    }
    return false;
  }
};

}  // namespace corpus
