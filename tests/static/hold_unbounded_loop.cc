// Seeded violations: unbounded loops inside hold regions — directly, and
// reached through a callee. A `while` whose trip count the analyzer cannot
// bound makes the critical section's cost unprovable; the fix is either a
// structural bound or a `BPW_BOUNDED_BY(expr)` annotation naming the
// quantity that bounds it (the annotated control below proves the
// exoneration path works).
//
// Not compiled — analyzed standalone by `bpw_holdlint
// --check-expectations`.

namespace corpus {

struct CorpusLoopHold {
  ContentionLock lock_;

  void SpinUntilIdle() {
    while (busy_) {
      Relax();
    }
  }

  void DrainAll() {
    ContentionLockGuard guard(lock_);
    // bpw-holdlint-expect(hold-unbounded-loop)
    while (HasWork()) {
      PopOne();
    }
  }

  void DrainViaHelper() {
    ContentionLockGuard guard(lock_);
    // bpw-holdlint-expect(hold-unbounded-loop)
    SpinUntilIdle();  // the unbounded loop is one call down
  }

  // Annotated control: the ghost-trim idiom. The loop runs at most
  // (size - capacity) times per call and the annotation says so, so the
  // prover accepts it without a structural bound.
  void TrimGhosts() {
    ContentionLockGuard guard(lock_);
    BPW_BOUNDED_BY(ghosts_.size() - capacity_);
    while (ghosts_.size() > capacity_) {
      DropOldest();
    }
  }
};

}  // namespace corpus
