// Seeded violations: CAS retry-loop discipline. pgShard's hit path is
// lock-free only if (a) every CAS retry loop has a provable bound — the
// retry count is bounded by the number of concurrent writers, and the
// annotation must say so — and (b) the loop body never falls back to a
// blocking acquisition, which would silently reintroduce the convoy the
// lock-free path exists to avoid.
//
// Not compiled — analyzed standalone by `bpw_holdlint
// --check-expectations`.

namespace corpus {

struct CorpusCasRetry {
  Mutex fallback_mu_;

  unsigned long Bump(unsigned long delta) {
    unsigned long cur = word_.load();
    while (true) {
      const unsigned long next = cur + delta;
      // bpw-holdlint-expect(cas-retry-unbounded)
      if (word_.compare_exchange_weak(cur, next)) return next;
    }
  }

  bool BumpThenBlock(unsigned long delta) {
    unsigned long cur = word_.load();
    BPW_BOUNDED_BY(kMaxWriters);
    while (true) {
      const unsigned long next = cur + delta;
      if (word_.compare_exchange_weak(cur, next)) return true;
      // bpw-holdlint-expect(cas-retry-blocks)
      MutexGuard guard(fallback_mu_);  // a lock-free path must stay lock-free
    }
  }

  // Clean control: structurally bounded attempts, blocking fallback taken
  // OUTSIDE the retry loop — the sanctioned shape.
  bool BumpBounded(unsigned long delta) {
    unsigned long cur = word_.load();
    for (int attempt = 0; attempt < 16; ++attempt) {
      const unsigned long next = cur + delta;
      if (word_.compare_exchange_weak(cur, next)) return true;
    }
    MutexGuard guard(fallback_mu_);
    word_.store(word_.load() + delta);
    return true;
  }
};

}  // namespace corpus
