// Seeded violation: a field handed to the model checker's race certifier
// (BPW_MC_ACCESS_*) must say how it is synchronized — a capability
// (BPW_GUARDED_BY) or a publication/relaxed annotation. A bare field in a
// BPW_MC_ACCESS_WRITE is a data race waiting for the certifier to find
// it, so the analyzer rejects the declaration-site omission statically.
//
// Not compiled — analyzed standalone by `bpw_atomiclint
// --check-expectations`.

namespace corpus {

struct CorpusRaceTarget {
  Mutex corpus_word_mu_;
  unsigned long corpus_bare_word = 0;
  unsigned long corpus_guarded_word BPW_GUARDED_BY(corpus_word_mu_) = 0;

  void TouchBare() {
    // bpw-atomiclint-expect(mc-access-unannotated)
    BPW_MC_ACCESS_WRITE("corpus.bare_word", &corpus_bare_word);
    corpus_bare_word = 1;
  }

  void TouchGuarded() {
    MutexGuard guard(corpus_word_mu_);
    BPW_MC_ACCESS_WRITE("corpus.guarded_word", &corpus_guarded_word);
    corpus_guarded_word = 2;
  }
};

}  // namespace corpus
