// Seeded violation: a blocking call reached transitively from a hold
// region. Waiting while holding a contention lock is the cardinal sin the
// paper's framework exists to remove — every waiter behind the lock
// inherits the sleep. The sleep is hidden one call down, invisible to any
// line-local rule.
//
// Not compiled — analyzed standalone by `bpw_holdlint
// --check-expectations`.

namespace corpus {

struct CorpusBlockHold {
  ContentionLock lock_;

  void BackoffABit() { sleep_for(kRetryDelay); }

  void DrainSlow() {
    ContentionLockGuard guard(lock_);
    // bpw-holdlint-expect(hold-block)
    BackoffABit();  // -> sleep_for: the whole convoy sleeps with us
  }
};

}  // namespace corpus
