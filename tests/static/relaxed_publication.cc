// Seeded violations of the publication protocol: a payload field marked
// BPW_PUBLISHED_BY(stamp) must be published by a release-or-stronger
// store of its stamp, and a reader must observe the stamp with an
// acquire-or-stronger load before touching the payload. GoodPublish /
// GoodConsume show the accepted shape.
//
// Not compiled — analyzed standalone by `bpw_atomiclint
// --check-expectations`.

namespace corpus {

struct CorpusPublisher {
  std::atomic<int> corpus_ready{0} BPW_RELAXED_OK(
      "corpus: the publication rules, not this peek, are under test");
  std::atomic<long> corpus_payload{0} BPW_PUBLISHED_BY(corpus_ready);

  void BadPublish(long v) {
    // bpw-atomiclint-expect(relaxed-publication-store)
    corpus_payload.store(v, std::memory_order_relaxed);
    corpus_ready.store(1, std::memory_order_relaxed);  // not a publication
  }

  long BadConsume() {
    if (corpus_ready.load(std::memory_order_relaxed) == 0) return 0;
    // bpw-atomiclint-expect(unordered-publication-read)
    return corpus_payload.load(std::memory_order_relaxed);
  }

  void GoodPublish(long v) {
    corpus_payload.store(v, std::memory_order_relaxed);
    corpus_ready.store(1, std::memory_order_release);
  }

  long GoodConsume() {
    if (corpus_ready.load(std::memory_order_acquire) == 0) return 0;
    return corpus_payload.load(std::memory_order_relaxed);
  }
};

}  // namespace corpus
