// Control file: every protocol done right, zero findings expected. If the
// analyzer starts flagging any line here it has grown a false positive —
// the corpus gate fails on unexpected findings, not just on missed ones.
//
// Not compiled — analyzed standalone by `bpw_atomiclint
// --check-expectations`.

namespace corpus {

struct CorpusCleanPool {
  struct CorpusCleanShard {
    ContentionLock lock BPW_LOCK_CLASS("corpus-clean-shard") BPW_LOCK_LEAF;
  };

  Mutex corpus_clean_map_mu_;
  Mutex corpus_clean_free_mu_;

  std::atomic<unsigned> corpus_clean_stamp{0} BPW_SEQLOCK_STAMP;
  std::atomic<unsigned long> corpus_clean_page{0} BPW_PUBLISHED_BY(
      corpus_clean_stamp);
  std::atomic<unsigned long> corpus_clean_hits_{0} BPW_RELAXED_OK(
      "stats counter");

  // One global order, everywhere: map before free.
  void ConsistentOrder() {
    MutexGuard map_guard(corpus_clean_map_mu_);
    MutexGuard free_guard(corpus_clean_free_mu_);
  }

  void ConsistentOrderElsewhere() {
    MutexGuard map_guard(corpus_clean_map_mu_);
    MutexGuard free_guard(corpus_clean_free_mu_);
  }

  // A leaf shard lock only ever probes its neighbor with a bounded try.
  bool LeafProbes(CorpusCleanShard& shard, CorpusCleanShard& neighbor) {
    ContentionLockGuard shard_guard(shard.lock);
    corpus_clean_hits_.fetch_add(1, std::memory_order_relaxed);
    if (neighbor.lock.TryLock()) {
      neighbor.lock.Unlock();
      return true;
    }
    return false;
  }

  // Seqlock writer: claim odd, relaxed payload, publish even with release.
  void Write(unsigned long v) {
    const unsigned v0 = corpus_clean_stamp.load(std::memory_order_relaxed);
    corpus_clean_stamp.store(v0 + 1, std::memory_order_relaxed);
    corpus_clean_page.store(v, std::memory_order_relaxed);
    corpus_clean_stamp.store(v0 + 2, std::memory_order_release);
  }

  // Seqlock reader: two acquire loads of the stamp around the payload,
  // odd-test re-check before trusting the snapshot.
  unsigned long Read() {
    for (;;) {
      const unsigned v0 = corpus_clean_stamp.load(std::memory_order_acquire);
      if ((v0 & 1u) != 0) continue;
      const unsigned long out =
          corpus_clean_page.load(std::memory_order_relaxed);
      if (corpus_clean_stamp.load(std::memory_order_acquire) == v0) {
        return out;
      }
    }
  }
};

}  // namespace corpus
