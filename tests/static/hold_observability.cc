// Seeded violations: observability side effects — clock reads, file IO,
// logging — reached transitively from hold regions. Each one is cheap in
// isolation; under a hot lock each is serialized across every waiter. All
// three are hidden behind helpers so only the transitive effect sets
// (bpw_holdlint) can attribute them to the critical section.
//
// Not compiled — analyzed standalone by `bpw_holdlint
// --check-expectations`.

namespace corpus {

struct CorpusObsHold {
  ContentionLock lock_;

  unsigned long StampNow() { return NowNanos(); }

  void PersistStats(void* file) { fwrite(buf_, 1, len_, file); }

  void TraceDrop() { BPW_LOG_ERROR << "dropped"; }

  void CommitTimed() {
    ContentionLockGuard guard(lock_);
    // bpw-holdlint-expect(hold-clock)
    StampNow();  // vDSO at best, syscall at worst — not under the lock
  }

  void CommitPersist(void* file) {
    ContentionLockGuard guard(lock_);
    // bpw-holdlint-expect(hold-io)
    PersistStats(file);  // disk latency serialized behind the lock
  }

  void CommitNoisy() {
    ContentionLockGuard guard(lock_);
    // bpw-holdlint-expect(hold-log)
    TraceDrop();  // log formatting + sink IO under the lock
  }
};

}  // namespace corpus
