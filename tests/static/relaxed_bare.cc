// Seeded violations of the relaxed-atomics discipline: every relaxed
// access must either hit a field that carries a concurrency annotation
// (BPW_RELAXED_OK / publication / capability) or sit under a standalone
// BPW_RELAXED_OK("reason") site statement. A PUBLISHED_BY arg that names
// no field in scope is itself rejected.
//
// Not compiled — analyzed standalone by `bpw_atomiclint
// --check-expectations`.

namespace corpus {

struct CorpusCounters {
  std::atomic<unsigned long> corpus_hits_{0};
  std::atomic<unsigned long> corpus_misses_{0} BPW_RELAXED_OK("stats counter");
  // bpw-atomiclint-expect(bad-annotation)
  std::atomic<unsigned long> corpus_orphan_{0} BPW_PUBLISHED_BY(corpus_no_such_stamp);

  void Record(bool hit) {
    if (hit) {
      // bpw-atomiclint-expect(relaxed-unannotated)
      corpus_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      corpus_misses_.fetch_add(1, std::memory_order_relaxed);  // annotated
    }
  }

  void Reset() {
    // A documented site statement covers its own line and the next.
    BPW_RELAXED_OK("corpus: reset runs with all recording threads joined");
    corpus_hits_.store(0, std::memory_order_relaxed);
    corpus_misses_.store(0, std::memory_order_relaxed);
  }
};

}  // namespace corpus
