// Seeded violation: an indirect call inside a hold region. A call through
// a function pointer has an unknown target set, so the prover must assume
// it may do anything — allocate, block, loop — and reject the region. The
// sanctioned escape is BPW_HOLD_EFFECT_OK(indirect, "...") on the holding
// function once the callback's contract is audited by hand (the annotated
// control below).
//
// Not compiled — analyzed standalone by `bpw_holdlint
// --check-expectations`.

namespace corpus {

struct CorpusIndirectHold {
  ContentionLock lock_;

  void ForEachEntry(void (*visit)(int)) {
    ContentionLockGuard guard(lock_);
    // bpw-holdlint-expect(hold-indirect-call)
    visit(0);  // targets unknown — may do anything while we hold the lock
  }

  // Annotated control: the audited-callback escape hatch.
  void ForEachAudited(void (*visit)(int))
      BPW_HOLD_EFFECT_OK(indirect,
                         "visit is the pin-check callback: reads frame "
                         "state, never blocks or allocates") {
    ContentionLockGuard guard(lock_);
    visit(0);
  }
};

}  // namespace corpus
