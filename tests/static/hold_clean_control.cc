// Clean control for the hold-cost prover: every discipline the corpus
// violates, done right. Guards over effect-free callees, a structurally
// bounded loop, an annotated loop, an exonerated allocation with its
// audit reason, and the TryLock + adopt-guard fast path. bpw_holdlint
// must report nothing here — a finding in this file is a false positive
// regression.
//
// Not compiled — analyzed standalone by `bpw_holdlint
// --check-expectations`.

namespace corpus {

struct CorpusCleanHold {
  ContentionLock lock_;

  int Classify(int page) { return page & 7; }

  void Advance(int frame) { cursor_ = frame; }

  void Replay(int count) {
    ContentionLockGuard guard(lock_);
    for (int i = 0; i < count; ++i) {
      Advance(Classify(i));
    }
  }

  void TrimBounded() {
    ContentionLockGuard guard(lock_);
    BPW_BOUNDED_BY(live_.size() - capacity_);
    while (live_.size() > capacity_) {
      Advance(0);
    }
  }

  // Exonerated effect, with the audit reason the macro demands: the push
  // lands in capacity reserved at construction, so steady-state calls
  // never take the allocator lock.
  void Stash(int entry)
      BPW_HOLD_EFFECT_OK(alloc,
                         "push_back into capacity reserved at construction; "
                         "steady-state calls never allocate") {
    ContentionLockGuard guard(lock_);
    // bpw-lint-allow(critical-section-alloc)
    stash_.push_back(entry);
  }

  bool FastPath(int count) {
    if (!lock_.TryLock()) return false;
    ContentionLockAdoptGuard guard(lock_);
    for (int i = 0; i < count; ++i) {
      Advance(i);
    }
    return true;
  }
};

}  // namespace corpus
