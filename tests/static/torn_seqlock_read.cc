// Seeded violation of the seqlock read shape: a payload published by a
// BPW_SEQLOCK_STAMP stamp must be read under the full seqlock protocol —
// at least two loads of the stamp (before and after the payload) plus an
// odd-test re-check. TornRead stops after one load, so a writer racing
// the read can hand it a torn payload that the missing re-check would
// have rejected. GoodRead and Write show the accepted shapes.
//
// Not compiled — analyzed standalone by `bpw_atomiclint
// --check-expectations`.

namespace corpus {

struct CorpusSeqSlot {
  std::atomic<unsigned> corpus_version{0} BPW_SEQLOCK_STAMP;
  std::atomic<unsigned long> corpus_value{0} BPW_PUBLISHED_BY(corpus_version);

  unsigned long TornRead() {
    if ((corpus_version.load(std::memory_order_acquire) & 1u) != 0) return 0;
    // bpw-atomiclint-expect(torn-seqlock-read)
    return corpus_value.load(std::memory_order_relaxed);  // no re-check
  }

  unsigned long GoodRead() {
    for (;;) {
      const unsigned v0 = corpus_version.load(std::memory_order_acquire);
      if ((v0 & 1u) != 0) continue;  // writer mid-flight: retry
      const unsigned long out = corpus_value.load(std::memory_order_relaxed);
      if (corpus_version.load(std::memory_order_acquire) == v0) return out;
    }
  }

  void Write(unsigned long v) {
    const unsigned v0 = corpus_version.load(std::memory_order_relaxed);
    corpus_version.store(v0 + 1, std::memory_order_relaxed);  // odd: claimed
    corpus_value.store(v, std::memory_order_relaxed);
    corpus_version.store(v0 + 2, std::memory_order_release);  // even: out
  }
};

}  // namespace corpus
