// Seeded violation: an allocation reached TRANSITIVELY from a hold region.
// The critical section itself looks clean — the `new` hides two calls deep
// — so bpw_lint's line-local critical-section-alloc rule cannot see it.
// Only the interprocedural effect propagation (bpw_holdlint) catches it,
// and the finding's witness chain names the full path to the allocator.
//
// Not compiled — analyzed standalone by `bpw_holdlint
// --check-expectations`.

namespace corpus {

struct CorpusAllocHold {
  ContentionLock lock_;

  int* GrowTable() { return new int[64]; }

  void RecordAccess() { GrowTable(); }

  void Commit() {
    ContentionLockGuard guard(lock_);
    // bpw-holdlint-expect(hold-alloc)
    RecordAccess();  // -> GrowTable -> new: allocation under the lock
  }

  // The same proof obligation applies to BPW_REQUIRES callees: this method
  // asserts it runs with lock_ held, so its body is a hold region even
  // though no guard is in sight.
  void ReplayHeld() BPW_REQUIRES(lock_) {
    // bpw-holdlint-expect(hold-alloc)
    RecordAccess();
  }
};

}  // namespace corpus
