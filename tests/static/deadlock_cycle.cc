// Seeded violation: two lock classes acquired in opposite orders in two
// functions. The lock-order graph gets edges free->map and map->free over
// blocking acquisitions, so the acyclicity proof must fail here. (The
// finding is attached to the acquisition that closes the cycle in DFS
// order: the map lock is declared first, so the walk enters via map->free
// and the free->map edge below is the back edge.)
//
// Not compiled — analyzed standalone by `bpw_atomiclint
// --check-expectations` (tools/CMakeLists.txt: bpw_atomiclint_corpus),
// which requires the findings to match the expect markers exactly.

namespace corpus {

struct CorpusCyclePool {
  Mutex corpus_map_mu_;
  Mutex corpus_free_mu_;

  void AllocateThenMap() {
    MutexGuard free_guard(corpus_free_mu_);
    // bpw-atomiclint-expect(lock-order-cycle)
    MutexGuard map_guard(corpus_map_mu_);  // free -> map: the back edge
  }

  void MapThenAllocate() {
    MutexGuard map_guard(corpus_map_mu_);
    MutexGuard free_guard(corpus_free_mu_);  // map -> free
  }
};

}  // namespace corpus
