// End-to-end tests of the benchmark pipeline: runner -> schema-versioned
// JSON -> parser -> compare gate.
//
// The acceptance contract these pin down:
//  - the smoke suite produces schema-valid bpw-bench/1 JSON with an
//    environment fingerprint, per-trial samples, and deterministic
//    counters;
//  - a self-compare reports no regression;
//  - a synthetically injected 10% throughput regression is flagged;
//  - an off-by-one lock-acquisition counter drift is flagged.
#include <cstdint>
#include <string>
#include <vector>

#include "bench/compare.h"
#include "bench/json_reader.h"
#include "bench/runner.h"
#include "bench/suite.h"
#include "gtest/gtest.h"

namespace bpw {
namespace bench {
namespace {

// One reduced in-process run of the real "smoke" suite, shared by every
// test in this file (the suite is deterministic where it matters; the wall
// cases just need to produce trials, not stable numbers).
const SuiteRunResult& SmokeRun() {
  static const SuiteRunResult* run = [] {
    const BenchSuite* smoke = FindSuite("smoke");
    EXPECT_NE(smoke, nullptr);
    RunnerOptions options;
    options.trials = 2;
    options.warmup_trials = 0;
    auto result = RunSuite(*smoke, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return new SuiteRunResult(std::move(result).value());
  }();
  return *run;
}

const std::string& SmokeJson() {
  static const std::string* json =
      new std::string(SuiteResultToJson(SmokeRun()));
  return *json;
}

JsonValue ParsedSmoke() {
  auto doc = ParseJson(SmokeJson());
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

// --- mutable JSON helpers (JsonValue members are public) -----------------

JsonValue* FindMut(JsonValue& obj, const std::string& key) {
  if (!obj.is_object()) return nullptr;
  for (auto& [k, v] : obj.object) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue* FindCase(JsonValue& doc, const std::string& name) {
  JsonValue* cases = FindMut(doc, "cases");
  if (cases == nullptr) return nullptr;
  for (JsonValue& c : cases->array) {
    if (c.StringOr("name", "") == name) return &c;
  }
  return nullptr;
}

JsonValue MakeNumber(double v) {
  JsonValue n;
  n.kind = JsonValue::Kind::kNumber;
  n.number_value = v;
  return n;
}

// Replaces a wall case's throughput_tps trial series with a synthetic,
// low-variance one so the bootstrap verdicts under test are not hostage to
// scheduler noise in the real measured trials.
void SetThroughputTrials(JsonValue& case_obj,
                         const std::vector<double>& values) {
  JsonValue* trials = FindMut(case_obj, "trials");
  ASSERT_NE(trials, nullptr);
  trials->array.clear();
  for (double v : values) {
    JsonValue trial;
    trial.kind = JsonValue::Kind::kObject;
    trial.object.emplace_back("throughput_tps", MakeNumber(v));
    trial.object.emplace_back("measure_seconds", MakeNumber(0.08));
    trials->array.push_back(std::move(trial));
  }
}

constexpr const char* kWallCase = "wall.host.dbt2.pgBatPre.t4";
constexpr const char* kDetCase = "det.sim.dbt2.pgBatPre.p8";

// --- suite registry ------------------------------------------------------

TEST(BenchSuites, BuiltinsAreRegistered) {
  EXPECT_NE(FindSuite("smoke"), nullptr);
  EXPECT_NE(FindSuite("paper"), nullptr);
  EXPECT_EQ(FindSuite("no-such-suite"), nullptr);
  const auto names = KnownSuiteNames();
  EXPECT_GE(names.size(), 2u);
}

TEST(BenchSuites, RegisterReplacesByName) {
  BenchSuite custom;
  custom.name = "pipeline-test-suite";
  custom.description = "v1";
  RegisterSuite(custom);
  custom.description = "v2";
  RegisterSuite(std::move(custom));
  const BenchSuite* found = FindSuite("pipeline-test-suite");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->description, "v2");
}

// --- schema validity -----------------------------------------------------

TEST(BenchPipeline, SmokeJsonIsSchemaValid) {
  JsonValue doc = ParsedSmoke();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.StringOr("schema", ""), kBenchSchemaName);
  EXPECT_EQ(doc.NumberOr("schema_version", -1), kBenchSchemaVersion);
  EXPECT_EQ(doc.StringOr("suite", ""), "smoke");
  EXPECT_EQ(doc.NumberOr("trials", 0), 2);

  const JsonValue* env = doc.Find("environment");
  ASSERT_NE(env, nullptr);
  ASSERT_TRUE(env->is_object());
  EXPECT_GE(env->NumberOr("hardware_threads", 0), 1);
  EXPECT_FALSE(env->StringOr("compiler", "").empty());
  EXPECT_FALSE(env->StringOr("os", "").empty());
  EXPECT_FALSE(env->StringOr("arch", "").empty());

  const JsonValue* cases = doc.Find("cases");
  ASSERT_NE(cases, nullptr);
  ASSERT_TRUE(cases->is_array());
  ASSERT_FALSE(cases->array.empty());

  bool saw_wall = false, saw_det = false;
  for (const JsonValue& c : cases->array) {
    EXPECT_FALSE(c.StringOr("name", "").empty());
    const std::string mode = c.StringOr("mode", "");
    EXPECT_TRUE(mode == "host" || mode == "sim") << mode;

    const JsonValue* wl = c.Find("workload");
    ASSERT_NE(wl, nullptr);
    const std::string fp = wl->StringOr("fingerprint", "");
    ASSERT_EQ(fp.size(), 18u) << fp;  // "0x" + 16 hex digits
    EXPECT_EQ(fp.substr(0, 2), "0x");
    EXPECT_NE(fp, "0x0000000000000000")
        << "fingerprint must be computed, not defaulted";

    const JsonValue* trials = c.Find("trials");
    ASSERT_NE(trials, nullptr);
    ASSERT_TRUE(trials->is_array());
    const bool deterministic = c.BoolOr("deterministic", false);
    EXPECT_EQ(trials->array.size(), deterministic ? 1u : 2u);
    for (const JsonValue& t : trials->array) {
      EXPECT_TRUE(t.Find("throughput_tps") != nullptr);
      EXPECT_GT(t.NumberOr("measure_seconds", 0), 0.0);
    }
    EXPECT_NE(c.Find("summary"), nullptr);

    if (deterministic) {
      saw_det = true;
      const JsonValue* counters = c.Find("counters");
      ASSERT_NE(counters, nullptr);
      ASSERT_TRUE(counters->is_object());
      EXPECT_GT(counters->NumberOr("accesses", 0), 0.0);
      EXPECT_NE(counters->Find("lock.acquisitions"), nullptr);
    } else {
      saw_wall = true;
      EXPECT_EQ(c.Find("counters"), nullptr)
          << "wall cases must not emit gated counters";
    }
  }
  EXPECT_TRUE(saw_wall);
  EXPECT_TRUE(saw_det);
}

TEST(BenchPipeline, DeterministicCasesReproduceExactly) {
  // Re-run only the deterministic smoke cases: every gated counter must
  // come back identical — the premise of the exact-equality gate.
  const BenchSuite* smoke = FindSuite("smoke");
  ASSERT_NE(smoke, nullptr);
  BenchSuite det_only;
  det_only.name = "det-only";
  det_only.trials = 1;
  det_only.warmup_trials = 0;
  for (const BenchCase& c : smoke->cases) {
    if (c.deterministic) det_only.cases.push_back(c);
  }
  ASSERT_FALSE(det_only.cases.empty());

  RunnerOptions options;
  options.trials = 1;
  options.warmup_trials = 0;
  auto rerun = RunSuite(det_only, options);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();

  for (const CaseResult& again : rerun.value().cases) {
    const CaseResult* first = nullptr;
    for (const CaseResult& c : SmokeRun().cases) {
      if (c.name == again.name) first = &c;
    }
    ASSERT_NE(first, nullptr) << again.name;
    EXPECT_EQ(first->counters, again.counters)
        << "deterministic case '" << again.name
        << "' did not reproduce its counters";
    EXPECT_EQ(first->workload_fingerprint, again.workload_fingerprint);
  }
}

// --- compare gate --------------------------------------------------------

CompareOptions GatedOptions() {
  CompareOptions options;
  options.gate_wall = true;
  return options;
}

TEST(BenchCompare, SelfCompareIsACleanPass) {
  JsonValue base = ParsedSmoke();
  JsonValue cand = ParsedSmoke();
  auto report = CompareBenchResults(base, cand, GatedOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().counter_drift);
  EXPECT_FALSE(report.value().fingerprint_drift);
  EXPECT_FALSE(report.value().wall_regression);
  EXPECT_FALSE(report.value().ShouldFail(GatedOptions()));
  EXPECT_FALSE(report.value().counters.empty());
  const std::string rendered =
      RenderCompareReport(report.value(), GatedOptions());
  EXPECT_NE(rendered.find("verdict: PASS"), std::string::npos) << rendered;
}

TEST(BenchCompare, FlagsInjectedTenPercentThroughputRegression) {
  JsonValue base = ParsedSmoke();
  JsonValue cand = ParsedSmoke();
  // Low-variance synthetic series; candidate is exactly 10% down.
  const std::vector<double> base_tps = {1000, 1010, 990, 1005, 995};
  std::vector<double> cand_tps;
  for (double v : base_tps) cand_tps.push_back(v * 0.9);
  JsonValue* base_case = FindCase(base, kWallCase);
  JsonValue* cand_case = FindCase(cand, kWallCase);
  ASSERT_NE(base_case, nullptr);
  ASSERT_NE(cand_case, nullptr);
  SetThroughputTrials(*base_case, base_tps);
  SetThroughputTrials(*cand_case, cand_tps);

  auto report = CompareBenchResults(base, cand, GatedOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().wall_regression);
  EXPECT_TRUE(report.value().ShouldFail(GatedOptions()));

  const WallVerdict* verdict = nullptr;
  for (const WallVerdict& v : report.value().wall) {
    if (v.case_name == kWallCase && v.metric == "throughput_tps") {
      verdict = &v;
    }
  }
  ASSERT_NE(verdict, nullptr);
  EXPECT_EQ(verdict->kind, WallVerdictKind::kRegression);
  EXPECT_NEAR(verdict->rel_delta, -0.10, 0.01);
  EXPECT_LT(verdict->ci_hi, 0.0);  // CI excludes zero on the bad side

  // Default options keep wall regressions report-only: deterministic
  // counters did not drift, so the gate itself passes.
  CompareOptions report_only;
  EXPECT_FALSE(report.value().ShouldFail(report_only));

  const std::string rendered =
      RenderCompareReport(report.value(), GatedOptions());
  EXPECT_NE(rendered.find("WALL REGRESSION"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("verdict: FAIL"), std::string::npos) << rendered;
}

TEST(BenchCompare, NoiseLevelShiftBelowMinRelDeltaIsNotARegression) {
  JsonValue base = ParsedSmoke();
  JsonValue cand = ParsedSmoke();
  // A consistent but tiny (2%) dip: significant by CI, below min_rel_delta.
  const std::vector<double> base_tps = {1000, 1010, 990, 1005, 995};
  std::vector<double> cand_tps;
  for (double v : base_tps) cand_tps.push_back(v * 0.98);
  SetThroughputTrials(*FindCase(base, kWallCase), base_tps);
  SetThroughputTrials(*FindCase(cand, kWallCase), cand_tps);

  auto report = CompareBenchResults(base, cand, GatedOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().wall_regression);
}

TEST(BenchCompare, FlagsOffByOneLockAcquisitionDrift) {
  JsonValue base = ParsedSmoke();
  JsonValue cand = ParsedSmoke();
  JsonValue* cand_case = FindCase(cand, kDetCase);
  ASSERT_NE(cand_case, nullptr);
  JsonValue* counters = FindMut(*cand_case, "counters");
  ASSERT_NE(counters, nullptr);
  JsonValue* acq = FindMut(*counters, "lock.acquisitions");
  ASSERT_NE(acq, nullptr);
  acq->number_value += 1;  // the smallest possible behaviour change

  // Off-by-one drift fails even the default (report-only-wall) options.
  CompareOptions options;
  auto report = CompareBenchResults(base, cand, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().counter_drift);
  EXPECT_TRUE(report.value().ShouldFail(options));

  const CounterVerdict* drift = nullptr;
  for (const CounterVerdict& v : report.value().counters) {
    if (!v.match) {
      EXPECT_EQ(drift, nullptr) << "only one counter should drift";
      drift = &v;
    }
  }
  ASSERT_NE(drift, nullptr);
  EXPECT_EQ(drift->case_name, kDetCase);
  EXPECT_EQ(drift->counter, "lock.acquisitions");
  EXPECT_EQ(drift->candidate, drift->baseline + 1);

  const std::string rendered = RenderCompareReport(report.value(), options);
  EXPECT_NE(rendered.find("COUNTER DRIFT"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("verdict: FAIL"), std::string::npos) << rendered;
}

TEST(BenchCompare, WorkloadFingerprintDriftInvalidatesBaseline) {
  JsonValue base = ParsedSmoke();
  JsonValue cand = ParsedSmoke();
  JsonValue* wl = FindMut(*FindCase(cand, kDetCase), "workload");
  ASSERT_NE(wl, nullptr);
  JsonValue* fp = FindMut(*wl, "fingerprint");
  ASSERT_NE(fp, nullptr);
  fp->string_value = "0xdeadbeefdeadbeef";

  CompareOptions options;
  auto report = CompareBenchResults(base, cand, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().fingerprint_drift);
  EXPECT_TRUE(report.value().ShouldFail(options));
}

TEST(BenchCompare, MissingDeterministicCaseIsDrift) {
  JsonValue base = ParsedSmoke();
  JsonValue cand = ParsedSmoke();
  JsonValue* cases = FindMut(cand, "cases");
  ASSERT_NE(cases, nullptr);
  cases->array.erase(
      std::remove_if(cases->array.begin(), cases->array.end(),
                     [](const JsonValue& c) {
                       return c.StringOr("name", "") == kDetCase;
                     }),
      cases->array.end());

  CompareOptions options;
  auto report = CompareBenchResults(base, cand, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().counter_drift)
      << "a vanished deterministic case silently narrows gate coverage";
}

TEST(BenchCompare, SchemaVersionMismatchIsAnError) {
  JsonValue base = ParsedSmoke();
  JsonValue cand = ParsedSmoke();
  JsonValue* version = FindMut(cand, "schema_version");
  ASSERT_NE(version, nullptr);
  version->number_value = kBenchSchemaVersion + 1;
  auto report = CompareBenchResults(base, cand, CompareOptions{});
  EXPECT_FALSE(report.ok());
}

// --- JSON reader spot checks --------------------------------------------

TEST(JsonReader, ParsesEscapesAndNesting) {
  auto doc = ParseJson(
      "{\"a\":[1,2.5,-3e2],\"s\":\"q\\\"\\n\\u0041\",\"b\":true,"
      "\"n\":null,\"o\":{\"k\":0}}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue& v = doc.value();
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[2].number_value, -300.0);
  EXPECT_EQ(v.StringOr("s", ""), "q\"\nA");
  EXPECT_TRUE(v.BoolOr("b", false));
  const JsonValue* n = v.Find("n");
  ASSERT_NE(n, nullptr);
  EXPECT_TRUE(n->is_null());
}

TEST(JsonReader, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("[1,2,").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
}

TEST(JsonReader, RoundTripsRunnerOutput) {
  // The parser must accept everything obs/json.h emits; a second
  // parse-serialize of the smoke document is the cheap proxy.
  auto doc = ParseJson(SmokeJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
}

}  // namespace
}  // namespace bench
}  // namespace bpw
