// Behavioural tests for the SEQ policy: sequence detection, pseudo-MRU
// eviction inside scans, LRU behaviour otherwise — and the property the
// paper cares about: detection needs *ordered* access information.
#include <gtest/gtest.h>

#include "policy/lru.h"
#include "policy/seq.h"
#include "util/random.h"

namespace bpw {
namespace {

ReplacementPolicy::EvictableFn All() {
  return [](FrameId) { return true; };
}

class SeqDriver {
 public:
  explicit SeqDriver(ReplacementPolicy& policy) : policy_(policy) {
    for (size_t i = policy.num_frames(); i-- > 0;) {
      free_.push_back(static_cast<FrameId>(i));
    }
    frame_of_.resize(policy.num_frames(), kInvalidPageId);
  }

  bool Access(PageId page) {
    policy_.AssertExclusiveAccess();  // drivers run single-threaded
    for (FrameId f = 0; f < frame_of_.size(); ++f) {
      if (frame_of_[f] == page) {
        policy_.OnHit(page, f);
        return true;
      }
    }
    FrameId frame;
    if (!free_.empty()) {
      frame = free_.back();
      free_.pop_back();
    } else {
      auto victim = policy_.ChooseVictim(All(), page);
      EXPECT_TRUE(victim.ok());
      frame = victim->frame;
      frame_of_[frame] = kInvalidPageId;
    }
    frame_of_[frame] = page;
    policy_.OnMiss(page, frame);
    return false;
  }

 private:
  ReplacementPolicy& policy_;
  std::vector<FrameId> free_;
  std::vector<PageId> frame_of_;
};

TEST(SeqTest, BehavesLikeLruOnRandomAccesses) {
  // Without sequences, SEQ's victim choices must match LRU's exactly.
  constexpr size_t kFrames = 16;
  SeqPolicy seq(kFrames);
  seq.AssertExclusiveAccess();
  LruPolicy lru(kFrames);
  lru.AssertExclusiveAccess();
  auto drive = [&](ReplacementPolicy& policy) {
    SeqDriver driver(policy);
    Random local(5);
    for (int i = 0; i < 3000; ++i) {
      // Scrambled ids: consecutive misses are never page+1.
      const PageId page = (local.Uniform(kFrames * 4)) * 1000 + 7;
      driver.Access(page);
    }
  };
  drive(seq);
  drive(lru);
  // Behavioural comparison through residency: identical final sets.
  for (PageId p = 0; p < kFrames * 4; ++p) {
    const PageId page = p * 1000 + 7;
    EXPECT_EQ(seq.IsResident(page), lru.IsResident(page)) << page;
  }
}

TEST(SeqTest, DetectsSequentialMissStream) {
  SeqPolicy seq(64, SeqPolicy::Params{.max_streams = 4, .detect_length = 8});
  seq.AssertExclusiveAccess();
  for (PageId p = 100; p < 120; ++p) {
    seq.OnMiss(p, static_cast<FrameId>(p - 100));
  }
  EXPECT_EQ(seq.StreamLengthAt(119), 20u);
  EXPECT_EQ(seq.active_streams(), 1u);
}

TEST(SeqTest, TracksInterleavedStreams) {
  SeqPolicy seq(64, SeqPolicy::Params{.max_streams = 4, .detect_length = 8});
  seq.AssertExclusiveAccess();
  FrameId frame = 0;
  for (int i = 0; i < 10; ++i) {
    seq.OnMiss(1000 + i, frame++);
    seq.OnMiss(5000 + i, frame++);
  }
  EXPECT_EQ(seq.StreamLengthAt(1009), 10u);
  EXPECT_EQ(seq.StreamLengthAt(5009), 10u);
}

TEST(SeqTest, ScanEvictsItselfNotTheWorkingSet) {
  // Hot set of 8 pages + a long scan through a small buffer: SEQ must keep
  // the hot set (pseudo-MRU inside the detected scan), unlike LRU.
  constexpr size_t kFrames = 16;
  auto survivors_with = [&](ReplacementPolicy& policy) {
    policy.AssertExclusiveAccess();  // single-threaded comparison harness
    SeqDriver driver(policy);
    for (int round = 0; round < 4; ++round) {
      for (PageId p = 0; p < 8; ++p) driver.Access(p * 1000 + 3);
    }
    for (PageId p = 100000; p < 100200; ++p) driver.Access(p);  // scan
    int survivors = 0;
    for (PageId p = 0; p < 8; ++p) {
      survivors += policy.IsResident(p * 1000 + 3) ? 1 : 0;
    }
    return survivors;
  };
  SeqPolicy seq(kFrames);
  seq.AssertExclusiveAccess();
  LruPolicy lru(kFrames);
  lru.AssertExclusiveAccess();
  EXPECT_EQ(survivors_with(lru), 0) << "LRU must be flushed";
  EXPECT_GE(survivors_with(seq), 6) << "SEQ must deflect the scan";
}

TEST(SeqTest, InterleavingDestroysDetectionWithOneSlotPerThreadMissing) {
  // The paper's §V-A argument made concrete: present the SAME two scans,
  // first cleanly (plenty of stream slots), then with the stream table too
  // small to keep both — detection degrades. This is why partitioned locks
  // (which split sequences across policies) break SEQ entirely.
  SeqPolicy roomy(64, SeqPolicy::Params{.max_streams = 4, .detect_length = 8});
  roomy.AssertExclusiveAccess();
  SeqPolicy starved(64,
                    SeqPolicy::Params{.max_streams = 1, .detect_length = 8});
  starved.AssertExclusiveAccess();
  FrameId f1 = 0, f2 = 0;
  for (int i = 0; i < 12; ++i) {
    roomy.OnMiss(1000 + i, f1++);
    roomy.OnMiss(5000 + i, f1++);
    starved.OnMiss(1000 + i, f2++);
    starved.OnMiss(5000 + i, f2++);
  }
  EXPECT_EQ(roomy.StreamLengthAt(1011), 12u);
  EXPECT_EQ(roomy.StreamLengthAt(5011), 12u);
  EXPECT_LT(starved.StreamLengthAt(1011) + starved.StreamLengthAt(5011),
            14u)
      << "with one slot the interleaved scans keep evicting each other";
}

TEST(SeqTest, FallsBackToLruWhenStreamPinned) {
  SeqPolicy seq(8, SeqPolicy::Params{.max_streams = 2, .detect_length = 4});
  seq.AssertExclusiveAccess();
  for (PageId p = 0; p < 8; ++p) seq.OnMiss(p, static_cast<FrameId>(p));
  // Sequence 0..7 detected; incoming 8 extends it, but every stream page
  // is pinned: must fall back to LRU scan, which also fails => exhausted.
  auto none = seq.ChooseVictim([](FrameId) { return false; }, 8);
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kResourceExhausted);
  // With pins lifted the stream path works.
  auto victim = seq.ChooseVictim(All(), 8);
  ASSERT_TRUE(victim.ok());
  EXPECT_LT(victim->page, 6u) << "evicts from behind the stream head";
}

}  // namespace
}  // namespace bpw
