// NEGATIVE-COMPILE CASE
// Seeded violation: acquiring a lock the calling thread already holds
// (ContentionLock is non-reentrant; this deadlocks at runtime). Expected
// clang diagnostic: "acquiring mutex 'lock_' that is already held"
// [-Wthread-safety-analysis].
#include "sync/contention_lock.h"
#include "util/thread_annotations.h"

namespace bpw {

class Reentrant {
 public:
  // VIOLATION: second Lock() while the first is still held.
  void LockTwice() {
    lock_.Lock();
    lock_.Lock();
    lock_.Unlock();
    lock_.Unlock();
  }

 private:
  ContentionLock lock_;
};

void Drive() {
  Reentrant reentrant;
  reentrant.LockTwice();
}

}  // namespace bpw
