// NEGATIVE-COMPILE CASE
// Seeded violation: ContentionLockAdoptGuard adopted on paths that do not
// hold the lock. Two shapes of the same bug:
//   1. adopting on the *failed* TryLock() branch — the guard's destructor
//      will Unlock() a lock this thread never acquired;
//   2. adopting twice after one successful TryLock() — the second guard's
//      destructor releases a lock the first already released.
// The adopt guard's constructor is BPW_REQUIRES(lock), so under
// -Wthread-safety case 1 is "calling function 'ContentionLockAdoptGuard'
// requires holding mutex 'lock_' exclusively" and case 2 trips "releasing
// mutex 'lock_' that was not held" when the scope unwinds. Without the
// flag both are valid C++ — which is exactly why the annotation has to be
// load-bearing.
#include <cstdint>

#include "sync/contention_lock.h"
#include "util/thread_annotations.h"

namespace bpw {

class Committer {
 public:
  // VIOLATION 1: TryLock() failed, yet the else branch adopts the lock.
  void CommitWrongBranch() {
    if (lock_.TryLock()) {
      ContentionLockAdoptGuard guard(lock_);
      pending_ = 0;
      return;
    }
    ContentionLockAdoptGuard guard(lock_);  // not held on this path
    pending_ = 0;
  }

  // VIOLATION 2: one successful TryLock(), two adoptions — double release.
  void CommitDoubleAdopt() {
    if (lock_.TryLock()) {
      ContentionLockAdoptGuard first(lock_);
      ContentionLockAdoptGuard second(lock_);
      pending_ = 0;
    }
  }

  void CommitProperly() {
    if (lock_.TryLock()) {
      ContentionLockAdoptGuard guard(lock_);
      pending_ = 0;
      return;
    }
    ContentionLockGuard guard(lock_);
    pending_ = 0;
  }

 private:
  ContentionLock lock_;
  uint64_t pending_ BPW_GUARDED_BY(lock_) = 0;
};

void Drive() {
  Committer committer;
  committer.CommitWrongBranch();
  committer.CommitDoubleAdopt();
  committer.CommitProperly();
}

}  // namespace bpw
