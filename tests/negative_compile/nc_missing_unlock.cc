// NEGATIVE-COMPILE CASE
// Seeded violation: a function acquires the lock and returns without
// releasing it. Expected clang diagnostic: "mutex 'lock_' is still held
// at the end of function" [-Wthread-safety-analysis].
#include "sync/contention_lock.h"
#include "util/thread_annotations.h"

namespace bpw {

class Leaky {
 public:
  // VIOLATION: Lock() with no matching Unlock() on the exit path.
  void Leak() { lock_.Lock(); }

 private:
  ContentionLock lock_;
};

void Drive() {
  Leaky leaky;
  leaky.Leak();
}

}  // namespace bpw
