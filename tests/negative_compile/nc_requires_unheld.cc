// NEGATIVE-COMPILE CASE
// Seeded violation: calling a BPW_REQUIRES(lock_) function without holding
// the lock. Expected clang diagnostic: "calling function 'ReplayLocked'
// requires holding mutex 'lock_' exclusively" [-Wthread-safety-analysis].
#include <cstdint>

#include "sync/contention_lock.h"
#include "util/thread_annotations.h"

namespace bpw {

class Coordinator {
 public:
  // VIOLATION: the *Locked helper is invoked on an unlocked path.
  void Commit() { ReplayLocked(); }

  void CommitProperly() {
    ContentionLockGuard guard(lock_);
    ReplayLocked();
  }

 private:
  void ReplayLocked() BPW_REQUIRES(lock_) { ++commits_; }

  ContentionLock lock_;
  uint64_t commits_ BPW_GUARDED_BY(lock_) = 0;
};

void Drive() {
  Coordinator coordinator;
  coordinator.Commit();
  coordinator.CommitProperly();
}

}  // namespace bpw
