// NEGATIVE-COMPILE CASE
// Seeded violation: dereferencing a BPW_PT_GUARDED_BY pointer without
// holding the lock. Copying the pointer itself is allowed; following it is
// not. Expected clang diagnostic: "writing the value pointed to by 'slot_'
// requires holding mutex 'lock_' exclusively" [-Wthread-safety-analysis].
#include <cstdint>

#include "sync/contention_lock.h"
#include "util/thread_annotations.h"

namespace bpw {

class SlotTable {
 public:
  explicit SlotTable(uint64_t* slot) : slot_(slot) {}

  // VIOLATION: unlocked store through the guarded pointer.
  void Poke() { *slot_ = 1; }

  void PokeProperly() {
    ContentionLockGuard guard(lock_);
    *slot_ = 1;
  }

 private:
  ContentionLock lock_;
  uint64_t* slot_ BPW_PT_GUARDED_BY(lock_);
};

void Drive() {
  uint64_t storage = 0;
  SlotTable table(&storage);
  table.Poke();
  table.PokeProperly();
}

}  // namespace bpw
