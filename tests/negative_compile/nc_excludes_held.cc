// NEGATIVE-COMPILE CASE
// Seeded violation: calling a BPW_EXCLUDES(lock_) function while holding
// lock_. This encodes the paper's §III-B contract — prefetch must run
// *before* lock acquisition, or it adds latency to the critical section
// instead of removing it. Expected clang diagnostic: "cannot call function
// 'Prefetch' while mutex 'lock_' is held" [-Wthread-safety-analysis].
#include <cstdint>

#include "sync/contention_lock.h"
#include "util/thread_annotations.h"

namespace bpw {

class Prefetcher {
 public:
  // VIOLATION: prefetch issued inside the critical section.
  void CommitBackwards() {
    ContentionLockGuard guard(lock_);
    Prefetch();
    ++commits_;
  }

  void CommitProperly() {
    Prefetch();
    ContentionLockGuard guard(lock_);
    ++commits_;
  }

 private:
  void Prefetch() const BPW_EXCLUDES(lock_) {}

  ContentionLock lock_;
  uint64_t commits_ BPW_GUARDED_BY(lock_) = 0;
};

void Drive() {
  Prefetcher prefetcher;
  prefetcher.CommitBackwards();
  prefetcher.CommitProperly();
}

}  // namespace bpw
