// NEGATIVE-COMPILE CASE
// Seeded violation: writing a BPW_GUARDED_BY member without holding its
// lock. Expected clang diagnostic: "writing variable 'hits_' requires
// holding mutex 'lock_' exclusively" [-Wthread-safety-analysis].
//
// This file must be valid C++ (it compiles without -Wthread-safety); the
// harness asserts that adding -Wthread-safety -Werror=thread-safety
// rejects it.
#include <cstdint>

#include "sync/contention_lock.h"
#include "util/thread_annotations.h"

namespace bpw {

class HitCounter {
 public:
  // VIOLATION: touches hits_ on a path that provably does not hold lock_.
  void Bump() { ++hits_; }

  void BumpProperly() {
    ContentionLockGuard guard(lock_);
    ++hits_;
  }

 private:
  ContentionLock lock_;
  uint64_t hits_ BPW_GUARDED_BY(lock_) = 0;
};

void Drive() {
  HitCounter counter;
  counter.Bump();
  counter.BumpProperly();
}

}  // namespace bpw
