# Negative-compile runner, invoked as a ctest via `cmake -P`:
#
#   cmake -DCXX=<compiler> -DSRC=<case.cc> -DINC=<repo>/src
#         -P check_negative.cmake
#
# A case passes when BOTH hold:
#   1. it compiles clean WITHOUT thread-safety flags (valid C++ — the
#      violation is a protocol error, not a syntax error), and
#   2. it is REJECTED with -Wthread-safety -Werror=thread-safety, with a
#      thread-safety diagnostic in the output (so an unrelated failure
#      cannot masquerade as the expected rejection).
#
# Only Clang implements the analysis; the enclosing CMakeLists registers
# these tests only for Clang builds.

if(NOT DEFINED CXX OR NOT DEFINED SRC OR NOT DEFINED INC)
  message(FATAL_ERROR "usage: cmake -DCXX=... -DSRC=... -DINC=... -P check_negative.cmake")
endif()

set(BASE_FLAGS -std=c++20 -fsyntax-only -I${INC})

execute_process(
  COMMAND ${CXX} ${BASE_FLAGS} ${SRC}
  RESULT_VARIABLE plain_rc
  OUTPUT_VARIABLE plain_out
  ERROR_VARIABLE plain_err)
if(NOT plain_rc EQUAL 0)
  message(FATAL_ERROR
    "${SRC} must be valid C++ without thread-safety flags, but failed:\n"
    "${plain_out}${plain_err}")
endif()

execute_process(
  COMMAND ${CXX} ${BASE_FLAGS} -Wthread-safety -Werror=thread-safety ${SRC}
  RESULT_VARIABLE tsa_rc
  OUTPUT_VARIABLE tsa_out
  ERROR_VARIABLE tsa_err)
if(tsa_rc EQUAL 0)
  message(FATAL_ERROR
    "${SRC} contains a seeded lock-discipline violation but was ACCEPTED "
    "with -Wthread-safety -Werror=thread-safety. The analysis is not "
    "catching what it must catch.")
endif()
string(FIND "${tsa_out}${tsa_err}" "thread-safety" tsa_mentioned)
if(tsa_mentioned EQUAL -1)
  message(FATAL_ERROR
    "${SRC} was rejected, but not by the thread-safety analysis:\n"
    "${tsa_out}${tsa_err}")
endif()

get_filename_component(case_name ${SRC} NAME)
message(STATUS "${case_name}: rejected by -Wthread-safety as expected")
