// NEGATIVE-COMPILE CASE
// Seeded violation: certifying exclusive access to ONE policy shard and
// then touching a DIFFERENT shard. Each shard of a ShardedPolicy is its
// own BPW_CAPABILITY instance — the sharded coordinator's whole safety
// story is that holding shard i's lock proves nothing about shard j, so
// cross-shard access under the wrong capability must not compile.
// Expected clang diagnostic: "calling function 'OnHit' requires holding
// mutex 'b' exclusively" [-Wthread-safety-analysis].
//
// Uses the real ShardedPolicy interface (syntax check only — never
// linked).
#include "policy/sharded_policy.h"
#include "util/types.h"

namespace bpw {

void Drive(ShardedPolicy& sp) {
  ReplacementPolicy* a = sp.shard(0);
  ReplacementPolicy* b = sp.shard(1);

  a->AssertExclusiveAccess();
  a->OnMiss(PageId{1}, FrameId{0});  // covered: a's capability is held

  // VIOLATION: a's certificate does not extend to b — the per-shard
  // capability is the whole point.
  b->OnHit(PageId{1}, FrameId{0});
}

}  // namespace bpw
