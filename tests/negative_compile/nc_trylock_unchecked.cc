// NEGATIVE-COMPILE CASE
// Seeded violation: the result of TryLock() is discarded and guarded state
// is touched anyway — the exact bug the BP-Wrapper TryLock-first commit
// protocol must never contain. TryLock() is BPW_TRY_ACQUIRE(true), so the
// capability is held only on the branch where it returned true; ignoring
// the result leaves the capability unproven. Expected clang diagnostic:
// "writing variable 'pending_' requires holding mutex 'lock_' exclusively"
// [-Wthread-safety-analysis] (plus a leaked-lock report on the success
// interleaving).
#include <cstdint>

#include "sync/contention_lock.h"
#include "util/thread_annotations.h"

namespace bpw {

class Committer {
 public:
  // VIOLATION: unchecked TryLock(), then unguarded write. bpw_lint flags
  // this shape too; it is suppressed here because this file exists to
  // seed the violation for the clang harness.
  void CommitSloppy() {
    // bpw-lint-allow(trylock-no-fallback)
    (void)lock_.TryLock();
    pending_ = 0;
  }

  void CommitProperly() {
    if (lock_.TryLock()) {
      ContentionLockAdoptGuard guard(lock_);
      pending_ = 0;
      return;
    }
    ContentionLockGuard guard(lock_);
    pending_ = 0;
  }

 private:
  ContentionLock lock_;
  uint64_t pending_ BPW_GUARDED_BY(lock_) = 0;
};

void Drive() {
  Committer committer;
  committer.CommitSloppy();
  committer.CommitProperly();
}

}  // namespace bpw
