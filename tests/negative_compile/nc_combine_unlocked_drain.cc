// NEGATIVE-COMPILE CASE
// Seeded violation: the flat-combining early-release split drawn in the
// wrong place. The combining coordinator's commit path is two-phase —
// apply (own batch + adopted peer batches) under the lock, then Unlock(),
// then lock-free post-commit bookkeeping. The seeded bug releases the
// lock between the two apply steps, so the peer drain — which mutates the
// policy and is BPW_REQUIRES(lock_) for that reason — runs unprotected.
// Under -Wthread-safety this is "calling function 'DrainPeersLocked'
// requires holding mutex 'lock_' exclusively". Without the flag it is
// valid C++: nothing but the annotation knows that only the *bookkeeping*
// may follow the release.
#include <cstdint>

#include "sync/contention_lock.h"
#include "util/thread_annotations.h"

namespace bpw {

class Combiner {
 public:
  // VIOLATION: lock released after the self-commit, peer drain after the
  // release. The early release must come after BOTH apply steps.
  void CombineAndReleaseTooEarly() {
    lock_.Lock();
    DrainOwnLocked();
    lock_.Unlock();
    DrainPeersLocked();  // lock no longer held
    RecycleSlots();
  }

  void CombineProperly() {
    lock_.Lock();
    DrainOwnLocked();
    DrainPeersLocked();
    lock_.Unlock();
    RecycleSlots();  // lock-free post-commit bookkeeping: fine here
  }

 private:
  void DrainOwnLocked() BPW_REQUIRES(lock_) { applied_ += 1; }
  void DrainPeersLocked() BPW_REQUIRES(lock_) { applied_ += 1; }
  void RecycleSlots() { recycled_ += 1; }

  ContentionLock lock_;
  uint64_t applied_ BPW_GUARDED_BY(lock_) = 0;
  uint64_t recycled_ = 0;
};

void Drive() {
  Combiner combiner;
  combiner.CombineAndReleaseTooEarly();
  combiner.CombineProperly();
}

}  // namespace bpw
