// NEGATIVE-COMPILE CASE
// Seeded violation: calling a ReplacementPolicy method whose contract is
// BPW_REQUIRES(this) without certifying exclusive access. This is the
// repo-wide serialization contract: policies are single-threaded by
// construction, and every caller must either hold the coordinator's policy
// lock or call AssertExclusiveAccess() in a provably quiesced phase.
// Expected clang diagnostic: "calling function 'OnHit' requires holding
// mutex 'policy' exclusively" [-Wthread-safety-analysis].
//
// Uses the real ReplacementPolicy interface with a minimal stub (syntax
// check only — never linked, so the missing base-class ctor definition is
// irrelevant).
#include <cstddef>
#include <string>

#include "policy/replacement_policy.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace bpw {

class StubPolicy final : public ReplacementPolicy {
 public:
  explicit StubPolicy(size_t num_frames) : ReplacementPolicy(num_frames) {}

  void OnHit(PageId, FrameId) override BPW_REQUIRES(this) {}
  void OnMiss(PageId, FrameId) override BPW_REQUIRES(this) {}
  StatusOr<Victim> ChooseVictim(const EvictableFn&,
                                PageId) override BPW_REQUIRES(this) {
    return Victim{};
  }
  void OnErase(PageId, FrameId) override BPW_REQUIRES(this) {}
  Status CheckInvariants() const override BPW_REQUIRES_SHARED(this) {
    return Status::OK();
  }
  size_t resident_count() const override BPW_REQUIRES_SHARED(this) {
    return 0;
  }
  bool IsResident(PageId) const override BPW_REQUIRES_SHARED(this) {
    return false;
  }
  std::string name() const override { return "stub"; }
};

void Drive() {
  StubPolicy policy(8);
  // VIOLATION: no lock, no AssertExclusiveAccess() — the contract is
  // unproven at this call site.
  policy.OnHit(PageId{1}, FrameId{0});

  policy.AssertExclusiveAccess();
  policy.OnMiss(PageId{2}, FrameId{1});
}

}  // namespace bpw
