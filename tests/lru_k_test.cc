// Behavioural tests for LRU-2: backward K-distance eviction, scan
// resistance, retained history.
#include <gtest/gtest.h>

#include "policy/lru.h"
#include "policy/lru_k.h"

namespace bpw {
namespace {

ReplacementPolicy::EvictableFn All() {
  return [](FrameId) { return true; };
}

TEST(LruKTest, SingleReferencePagesEvictedFirstInLruOrder) {
  LruKPolicy lru2(4);
  lru2.AssertExclusiveAccess();
  for (PageId p = 0; p < 4; ++p) lru2.OnMiss(p, static_cast<FrameId>(p));
  // Pages 2 and 3 get a second reference: finite backward-2 distance.
  lru2.OnHit(2, 2);
  lru2.OnHit(3, 3);
  // Pages 0, 1 have infinite distance and go first, LRU among them.
  auto v1 = lru2.ChooseVictim(All(), 9);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->page, 0u);
  auto v2 = lru2.ChooseVictim(All(), 9);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->page, 1u);
}

TEST(LruKTest, EvictsOldestSecondReference) {
  LruKPolicy lru2(3);
  lru2.AssertExclusiveAccess();
  // Build histories: access order 1,2,3,1,3,2
  lru2.OnMiss(1, 0);   // t=1
  lru2.OnMiss(2, 1);   // t=2
  lru2.OnMiss(3, 2);   // t=3
  lru2.OnHit(1, 0);    // t=4: page1 t2=1
  lru2.OnHit(3, 2);    // t=5: page3 t2=3
  lru2.OnHit(2, 1);    // t=6: page2 t2=2
  // Backward-2 keys: page1 t2=1 (oldest), page2 t2=2, page3 t2=3.
  auto v = lru2.ChooseVictim(All(), 9);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->page, 1u) << "oldest second reference must go first";
  // Plain LRU would have evicted page 3's position... verify the next.
  v = lru2.ChooseVictim(All(), 9);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->page, 2u);
}

TEST(LruKTest, HistoryRetainedAcrossEviction) {
  LruKPolicy lru2(2, LruKPolicy::Params{.history_capacity = 4});
  lru2.AssertExclusiveAccess();
  lru2.OnMiss(1, 0);  // t=1
  lru2.OnHit(1, 0);   // t=2: history (1,2)
  lru2.OnMiss(2, 1);  // t=3
  auto v = lru2.ChooseVictim(All(), 3);  // evicts 2 (infinite distance)
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->page, 2u);
  EXPECT_EQ(lru2.history_size(), 1u);
  // Evict page 1 too; then reload it: its t2 must come from the ghost.
  auto v1 = lru2.ChooseVictim(All(), 3);
  ASSERT_TRUE(v1.ok());
  ASSERT_EQ(v1->page, 1u);
  lru2.OnMiss(1, 0);  // t=4
  auto [t2, t1] = lru2.HistoryOf(1);
  EXPECT_EQ(t2, 2u) << "retained history chains the references";
  EXPECT_EQ(t1, 4u);
  EXPECT_TRUE(lru2.CheckInvariants().ok());
}

TEST(LruKTest, HistoryCapacityBounded) {
  LruKPolicy lru2(2, LruKPolicy::Params{.history_capacity = 3});
  lru2.AssertExclusiveAccess();
  FrameId next = 0;
  for (PageId p = 0; p < 50; ++p) {
    FrameId f;
    if (next < 2) {
      f = next++;
    } else {
      auto v = lru2.ChooseVictim(All(), p);
      ASSERT_TRUE(v.ok());
      f = v->frame;
    }
    lru2.OnMiss(p, f);
    ASSERT_LE(lru2.history_size(), 3u);
  }
  EXPECT_TRUE(lru2.CheckInvariants().ok());
}

TEST(LruKTest, ScanResistanceBeatsLru) {
  // Hot pages with regular re-references survive a one-pass scan under
  // LRU-2; plain LRU flushes them.
  constexpr size_t kFrames = 16;
  auto run = [&](ReplacementPolicy& policy) {
    policy.AssertExclusiveAccess();  // single-threaded comparison harness
    std::vector<PageId> frame_of(kFrames, kInvalidPageId);
    std::vector<FrameId> free;
    for (size_t i = kFrames; i-- > 0;) free.push_back(static_cast<FrameId>(i));
    auto access = [&](PageId p) {
      for (FrameId f = 0; f < kFrames; ++f) {
        if (frame_of[f] == p) {
          policy.OnHit(p, f);
          return true;
        }
      }
      FrameId f;
      if (!free.empty()) {
        f = free.back();
        free.pop_back();
      } else {
        auto v = policy.ChooseVictim(All(), p);
        EXPECT_TRUE(v.ok());
        f = v->frame;
        frame_of[f] = kInvalidPageId;
      }
      frame_of[f] = p;
      policy.OnMiss(p, f);
      return false;
    };
    // Establish 8 hot pages with multiple references.
    for (int round = 0; round < 4; ++round) {
      for (PageId p = 0; p < 8; ++p) access(p);
    }
    // One-pass scan of 64 cold pages.
    for (PageId p = 100; p < 164; ++p) access(p);
    int survivors = 0;
    for (PageId p = 0; p < 8; ++p) survivors += policy.IsResident(p) ? 1 : 0;
    return survivors;
  };
  LruKPolicy lru2(kFrames);
  lru2.AssertExclusiveAccess();
  LruPolicy lru(kFrames);
  lru.AssertExclusiveAccess();
  EXPECT_EQ(run(lru), 0) << "LRU must be flushed by the scan";
  EXPECT_EQ(run(lru2), 8) << "LRU-2 must keep the twice-referenced set";
}

TEST(LruKTest, EraseDropsGhostToo) {
  LruKPolicy lru2(2);
  lru2.AssertExclusiveAccess();
  lru2.OnMiss(1, 0);
  lru2.OnMiss(2, 1);
  auto v = lru2.ChooseVictim(All(), 3);
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(lru2.history_size(), 1u);
  lru2.OnErase(v->page, kInvalidFrameId);
  EXPECT_EQ(lru2.history_size(), 0u);
  EXPECT_TRUE(lru2.CheckInvariants().ok());
}

}  // namespace
}  // namespace bpw
