// Tests for the seeded schedule-perturbation controller: the replay story
// ("re-run with --seed=N") rests on the decision stream being a pure
// function of (seed, thread index), which is what these tests pin down.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "testing/schedule_point.h"

namespace bpw {
namespace testing {
namespace {

// Cheap options: perturbation decisions still fire, but sleeps are capped
// at 1us so determinism runs stay fast.
ScheduleOptions FastOptions(uint64_t seed) {
  ScheduleOptions options;
  options.seed = seed;
  options.sleep_probability = 0.01;
  options.max_sleep_micros = 1;
  options.yield_probability = 0.05;
  options.spin_probability = 0.15;
  options.max_spin_iterations = 32;
  return options;
}

struct DecisionCounts {
  uint64_t sleeps, yields, spins, perturbations, points;
  bool operator==(const DecisionCounts&) const = default;
};

DecisionCounts RunPoints(uint64_t seed, int n) {
  ScopedScheduleController scoped(FastOptions(seed));
  ScheduleController::BindCurrentThread(0);
  for (int i = 0; i < n; ++i) {
    BPW_SCHEDULE_POINT("test.point");
  }
  ScheduleController& c = scoped.controller();
  return {c.sleeps(), c.yields(), c.spins(), c.perturbations(),
          c.points_observed()};
}

TEST(SchedulePointTest, NoControllerMeansNoPerturbation) {
  ASSERT_EQ(ScheduleController::Current(), nullptr);
  BPW_SCHEDULE_POINT("test.uninstalled");  // must be a harmless no-op
}

TEST(SchedulePointTest, PointsAreCountedWhenInstalled) {
  const DecisionCounts counts = RunPoints(42, 1000);
  EXPECT_EQ(counts.points, 1000u);
  EXPECT_GT(counts.perturbations, 0u);
  EXPECT_EQ(counts.perturbations,
            counts.sleeps + counts.yields + counts.spins);
}

TEST(SchedulePointTest, SameSeedSameDecisionStream) {
  const DecisionCounts first = RunPoints(7, 20000);
  const DecisionCounts second = RunPoints(7, 20000);
  EXPECT_EQ(first, second) << "replaying a seed must replay its decisions";
}

TEST(SchedulePointTest, DifferentSeedsDiverge) {
  const DecisionCounts a = RunPoints(7, 50000);
  const DecisionCounts b = RunPoints(8, 50000);
  EXPECT_NE(a, b);
}

TEST(SchedulePointTest, BoundThreadsGetStableStreams) {
  // Two runs in which the *same-indexed* worker hits the same number of
  // points must perturb identically, no matter how the OS interleaves the
  // threads — that is what BindCurrentThread buys.
  auto run = [](uint64_t seed) {
    ScopedScheduleController scoped(FastOptions(seed));
    std::vector<std::thread> threads;
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([t] {
        ScheduleController::BindCurrentThread(t);
        for (int i = 0; i < 10000; ++i) {
          BPW_SCHEDULE_POINT("test.bound");
        }
      });
    }
    for (auto& th : threads) th.join();
    ScheduleController& c = scoped.controller();
    return DecisionCounts{c.sleeps(), c.yields(), c.spins(),
                          c.perturbations(), c.points_observed()};
  };
  const DecisionCounts first = run(99);
  const DecisionCounts second = run(99);
  EXPECT_EQ(first, second);
}

TEST(SchedulePointTest, ReinstallationIsAllowedSequentially) {
  // A second controller after the first uninstalls must work (the epoch
  // bump forces thread-local generators to reseed).
  { ScopedScheduleController first(FastOptions(1)); }
  ScopedScheduleController second(FastOptions(2));
  EXPECT_EQ(ScheduleController::Current(), &second.controller());
  BPW_SCHEDULE_POINT("test.reinstall");
  EXPECT_EQ(second.controller().points_observed(), 1u);
}

}  // namespace
}  // namespace testing
}  // namespace bpw
