// The paper's central correctness claim, as a testable property:
// BP-Wrapper changes *when* replacement bookkeeping runs, never *what* it
// computes. For a single-threaded access stream, commits preserve arrival
// order and always precede victim selection, so a buffer pool using
// BP-Wrapper must produce the exact same hit/miss sequence — and therefore
// the exact same hit ratio (the Fig. 8 curve overlap) — as one taking the
// lock on every access. Parameterized over every policy and several
// workloads.
#include <gtest/gtest.h>

#include <functional>
#include <tuple>

#include "buffer/buffer_pool.h"
#include "core/coordinator_factory.h"
#include "core/sharded_coordinator.h"
#include "policy/policy_factory.h"
#include "util/random.h"
#include "workload/trace_generator.h"

namespace bpw {
namespace {

constexpr size_t kPageSize = 512;

/// A ring large enough that no test stream can overflow it: overflow drops
/// history, and a dropped entry would (legitimately) break bit-identity.
/// hit_drops == 0 is asserted as the certificate.
constexpr size_t kNoDropQueue = 32768;

struct RunResult {
  std::vector<bool> hit_sequence;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t hit_drops = 0;  // sharded only; 0 for every other coordinator
};

RunResult RunStream(const SystemConfig& system, const WorkloadSpec& workload,
                    size_t num_frames, int accesses) {
  StorageEngine storage(workload.num_pages, kPageSize);
  auto coordinator = CreateCoordinator(system, num_frames);
  EXPECT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  BufferPoolConfig config;
  config.num_frames = num_frames;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator).value());
  auto session = pool.CreateSession();
  auto trace = CreateTrace(workload, 0);
  EXPECT_NE(trace, nullptr);

  RunResult result;
  result.hit_sequence.reserve(accesses);
  for (int i = 0; i < accesses; ++i) {
    const PageAccess access = trace->Next();
    const uint64_t hits_before = session->stats().hits;
    auto handle = pool.FetchPage(*session, access.page);
    EXPECT_TRUE(handle.ok()) << handle.status().ToString();
    result.hit_sequence.push_back(session->stats().hits > hits_before);
  }
  pool.FlushSession(*session);
  result.hits = session->stats().hits;
  result.misses = session->stats().misses;
  EXPECT_TRUE(pool.CheckIntegrity().ok()) << pool.CheckIntegrity().ToString();
  if (const auto* sharded =
          dynamic_cast<const ShardedCoordinator*>(&pool.coordinator())) {
    result.hit_drops = sharded->hit_drops();
  }
  return result;
}

using Param = std::tuple<std::string, std::string>;  // (policy, workload)

class EquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(EquivalenceTest, BatchingPreservesHitMissSequence) {
  const auto& [policy, workload_name] = GetParam();

  WorkloadSpec workload;
  workload.name = workload_name;
  workload.num_pages = 512;
  workload.seed = 7;

  constexpr size_t kFrames = 128;  // smaller than footprint: real evictions
  constexpr int kAccesses = 20000;

  SystemConfig serialized;
  serialized.policy = policy;
  serialized.coordinator = "serialized";

  SystemConfig batched;
  batched.policy = policy;
  batched.coordinator = "bp-wrapper";
  batched.queue_size = 64;
  batched.batch_threshold = 32;

  SystemConfig batched_pre = batched;
  batched_pre.prefetch = true;

  SystemConfig combining = batched;
  combining.coordinator = "combining";
  SystemConfig combining_pre = combining;
  combining_pre.prefetch = true;

  // Sharded at shard count 1: a faithful pass-through of the policy, so it
  // must be bit-identical too — with the lock-free hit path active.
  SystemConfig sharded;
  sharded.policy = policy;
  sharded.coordinator = "sharded";
  sharded.policy_shards = 1;
  sharded.queue_size = kNoDropQueue;

  const RunResult base = RunStream(serialized, workload, kFrames, kAccesses);
  const RunResult bat = RunStream(batched, workload, kFrames, kAccesses);
  const RunResult batpre =
      RunStream(batched_pre, workload, kFrames, kAccesses);
  const RunResult comb = RunStream(combining, workload, kFrames, kAccesses);
  const RunResult combpre =
      RunStream(combining_pre, workload, kFrames, kAccesses);
  const RunResult shard = RunStream(sharded, workload, kFrames, kAccesses);

  EXPECT_GT(base.misses, 0u) << "test needs real evictions to be meaningful";
  // No hits-assert: some policies legitimately score zero hits on the pure
  // loop workload (MQ/ARC/CAR shed it entirely); the sequence equality
  // below is still checked, just trivially, and the other workloads cover
  // the hit-heavy case.
  EXPECT_EQ(base.hit_sequence, bat.hit_sequence)
      << "batching changed replacement behaviour";
  EXPECT_EQ(base.hit_sequence, batpre.hit_sequence)
      << "prefetching changed replacement behaviour";
  // Single-threaded, the flat-combining path is publish-then-self-combine
  // at the same thresholds, so it must commit the same entries at the same
  // points and be indistinguishable from plain batching.
  EXPECT_EQ(base.hit_sequence, comb.hit_sequence)
      << "flat combining changed replacement behaviour";
  EXPECT_EQ(base.hit_sequence, combpre.hit_sequence)
      << "flat combining with prefetch changed replacement behaviour";
  EXPECT_EQ(base.hits, bat.hits);
  EXPECT_EQ(base.misses, bat.misses);
  EXPECT_EQ(base.hits, comb.hits);
  EXPECT_EQ(base.misses, comb.misses);
  EXPECT_EQ(shard.hit_drops, 0u) << "ring overflowed; enlarge kNoDropQueue";
  EXPECT_EQ(base.hit_sequence, shard.hit_sequence)
      << "sharding at shard count 1 changed replacement behaviour";
  EXPECT_EQ(base.hits, shard.hits);
  EXPECT_EQ(base.misses, shard.misses);
}

TEST_P(EquivalenceTest, SmallQueueSizesAlsoEquivalent) {
  const auto& [policy, workload_name] = GetParam();
  WorkloadSpec workload;
  workload.name = workload_name;
  workload.num_pages = 256;
  workload.seed = 13;

  SystemConfig serialized;
  serialized.policy = policy;
  serialized.coordinator = "serialized";
  const RunResult base = RunStream(serialized, workload, 64, 8000);

  for (const char* coordinator : {"bp-wrapper", "combining"}) {
    for (size_t queue_size : {1, 2, 7}) {
      SystemConfig batched;
      batched.policy = policy;
      batched.coordinator = coordinator;
      batched.queue_size = queue_size;
      batched.batch_threshold = std::max<size_t>(1, queue_size / 2);
      const RunResult bat = RunStream(batched, workload, 64, 8000);
      EXPECT_EQ(base.hit_sequence, bat.hit_sequence)
          << coordinator << " queue size " << queue_size;
    }
  }
}

// ---------------------------------------------------------------------------
// Property-based variant: a seeded *random* trace of fetches and drops, with
// the policy's final state compared directly. After the final flush, both
// stacks must not only have produced the same hit/miss/drop outcomes — the
// wrapped policy must be in the same state, which we observe by draining it:
// repeatedly choosing victims (everything evictable) must yield the same
// eviction order from both pools.

struct RandomRunResult {
  std::vector<bool> hit_sequence;
  std::vector<bool> drop_outcomes;      // DropPage returned OK
  std::vector<PageId> drain_fingerprint;  // victim order of the final state
  uint64_t hit_drops = 0;  // sharded only
};

void RunRandomTraceInto(RandomRunResult* result, const SystemConfig& system,
                        uint64_t seed, uint64_t num_pages, size_t num_frames,
                        int accesses) {
  StorageEngine storage(num_pages, kPageSize);
  auto coordinator = CreateCoordinator(system, num_frames);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  BufferPoolConfig config;
  config.num_frames = num_frames;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator).value());
  auto session = pool.CreateSession();

  Random rng(seed);
  for (int i = 0; i < accesses; ++i) {
    if (rng.Bernoulli(0.05)) {
      const PageId page = rng.Uniform(num_pages);
      result->drop_outcomes.push_back(pool.DropPage(*session, page).ok());
      continue;
    }
    // 60% hot traffic over a small set, the rest uniform: enough reuse for
    // hits, enough breadth for constant eviction.
    const PageId page = rng.Bernoulli(0.6) ? rng.Uniform(num_pages / 8)
                                           : rng.Uniform(num_pages);
    const uint64_t hits_before = session->stats().hits;
    auto handle = pool.FetchPage(*session, page);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    result->hit_sequence.push_back(session->stats().hits > hits_before);
  }
  pool.FlushSession(*session);
  EXPECT_TRUE(pool.CheckIntegrity().ok()) << pool.CheckIntegrity().ToString();
  if (const auto* sharded =
          dynamic_cast<const ShardedCoordinator*>(&pool.coordinator())) {
    result->hit_drops = sharded->hit_drops();
  }

  // Drain the policy (quiesced; this intentionally desynchronizes it from
  // the pool, so it is the last thing done with either).
  ReplacementPolicy* policy = pool.coordinator().mutable_policy();
  policy->AssertExclusiveAccess();  // workers joined; coordinator quiesced
  uint64_t fresh = num_pages;  // incoming ids no ghost list has ever seen
  while (policy->resident_count() > 0) {
    auto victim =
        policy->ChooseVictim([](FrameId) { return true; }, ++fresh);
    ASSERT_TRUE(victim.ok()) << victim.status().ToString();
    result->drain_fingerprint.push_back(victim.value().page);
  }
}

TEST_P(EquivalenceTest, RandomTraceWithDropsLeavesIdenticalPolicyState) {
  const auto& [policy, workload_name] = GetParam();
  // The workload dimension just diversifies the seed for this
  // property-based test.
  const uint64_t seed =
      1469598103934665603ULL ^ std::hash<std::string>{}(workload_name);
  constexpr uint64_t kPages = 384;
  constexpr size_t kFrames = 96;
  constexpr int kAccesses = 12000;

  SystemConfig serialized;
  serialized.policy = policy;
  serialized.coordinator = "serialized";

  SystemConfig batched;
  batched.policy = policy;
  batched.coordinator = "bp-wrapper";
  batched.batching = true;
  batched.queue_size = 64;
  batched.batch_threshold = 32;
  batched.prefetch = true;

  SystemConfig shared_queue = batched;
  shared_queue.coordinator = "shared-queue";
  shared_queue.prefetch = false;  // shared-queue has no prefetch stage

  SystemConfig combining = batched;
  combining.coordinator = "combining";

  SystemConfig sharded;
  sharded.policy = policy;
  sharded.coordinator = "sharded";
  sharded.policy_shards = 1;
  sharded.queue_size = kNoDropQueue;
  sharded.prefetch = true;

  RandomRunResult base;
  RunRandomTraceInto(&base, serialized, seed, kPages, kFrames, kAccesses);
  RandomRunResult bat;
  RunRandomTraceInto(&bat, batched, seed, kPages, kFrames, kAccesses);
  RandomRunResult shq;
  RunRandomTraceInto(&shq, shared_queue, seed, kPages, kFrames, kAccesses);
  RandomRunResult comb;
  RunRandomTraceInto(&comb, combining, seed, kPages, kFrames, kAccesses);
  RandomRunResult shard;
  RunRandomTraceInto(&shard, sharded, seed, kPages, kFrames, kAccesses);

  EXPECT_EQ(base.hit_sequence, bat.hit_sequence);
  EXPECT_EQ(base.drop_outcomes, bat.drop_outcomes)
      << "drop/invalidation outcomes diverged";
  EXPECT_EQ(base.drain_fingerprint, bat.drain_fingerprint)
      << "the policies ended the identical trace in different states";

  // pgBat++'s claim, stated as the paper states Fig. 8: flat combining is a
  // commit-path optimization only. Against the shared-queue batcher it must
  // match outcome-for-outcome AND leave the wrapped policy in the identical
  // state (same drain order), drops and partial-batch flushes included.
  EXPECT_EQ(shq.hit_sequence, comb.hit_sequence)
      << "combining diverged from shared-queue on hit/miss outcomes";
  EXPECT_EQ(shq.drop_outcomes, comb.drop_outcomes)
      << "combining diverged from shared-queue on drop outcomes";
  EXPECT_EQ(shq.drain_fingerprint, comb.drain_fingerprint)
      << "combining left the policy in a different state than shared-queue";
  EXPECT_EQ(base.drain_fingerprint, comb.drain_fingerprint)
      << "combining left the policy in a different state than serialized";

  // pgShard's claim at shard count 1: the lock-free hit path and lazy ring
  // commits are a scheduling change only. Same outcomes, same drop
  // behaviour, and the identical final policy state (same drain order).
  EXPECT_EQ(shard.hit_drops, 0u) << "ring overflowed; enlarge kNoDropQueue";
  EXPECT_EQ(base.hit_sequence, shard.hit_sequence)
      << "sharded(1) diverged on hit/miss outcomes";
  EXPECT_EQ(base.drop_outcomes, shard.drop_outcomes)
      << "sharded(1) diverged on drop outcomes";
  EXPECT_EQ(base.drain_fingerprint, shard.drain_fingerprint)
      << "sharded(1) left the policy in a different state than serialized";
}

INSTANTIATE_TEST_SUITE_P(
    PolicyWorkloadMatrix, EquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(KnownPolicies()),
                       ::testing::Values("zipfian", "dbt2", "seqloop")),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (auto& c : name) {
        if (c == '-' || c == '2') c = c == '2' ? 'q' : '_';
      }
      // "2q" became "qq": acceptable unique identifier.
      return name;
    });

}  // namespace
}  // namespace bpw
