// Tests for util: Status/StatusOr, Random, clocks, cache alignment.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "util/cacheline.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"

namespace bpw {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "page 7");
  EXPECT_EQ(s.ToString(), "NotFound: page 7");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Aborted("").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return Status::Aborted("inner"); };
  auto outer = [&]() -> Status {
    BPW_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kAborted);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string(100, 'x'));
  std::string out = std::move(v).value();
  EXPECT_EQ(out.size(), 100u);
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformRespectsBound) {
  Random rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformOneIsAlwaysZero) {
  Random rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformRange(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values appear
}

TEST(RandomTest, UniformCoversRangeRoughlyEvenly) {
  Random rng(23);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRate) {
  Random rng(17);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.02);
}

TEST(ClockTest, NowNanosMonotonic) {
  uint64_t a = NowNanos();
  uint64_t b = NowNanos();
  EXPECT_LE(a, b);
}

TEST(ClockTest, SpinWorkScalesWithIterations) {
  // More iterations must take longer (very coarse sanity bound). Take the
  // minimum over a few trials: a preemption can inflate any single
  // measurement by milliseconds on a loaded test machine, but it can never
  // deflate one, so the minima compare the true spin costs.
  auto min_spin_nanos = [](uint64_t iterations) {
    uint64_t best = ~0ULL;
    for (int trial = 0; trial < 3; ++trial) {
      Stopwatch sw;
      SpinWork(iterations);
      best = std::min(best, sw.ElapsedNanos());
    }
    return best;
  };
  EXPECT_GT(min_spin_nanos(2000000), min_spin_nanos(200000));
}

TEST(ClockTest, BusyWaitReachesDeadline) {
  Stopwatch sw;
  BusyWaitNanos(2000000);  // 2 ms
  EXPECT_GE(sw.ElapsedNanos(), 2000000u);
}

TEST(ClockTest, BusyWaitZeroReturnsImmediately) {
  Stopwatch sw;
  BusyWaitNanos(0);
  EXPECT_LT(sw.ElapsedNanos(), 1000000u);
}

TEST(CacheAlignedTest, DistinctLines) {
  CacheAligned<int> arr[4];
  for (int i = 0; i < 3; ++i) {
    auto a = reinterpret_cast<uintptr_t>(&arr[i]);
    auto b = reinterpret_cast<uintptr_t>(&arr[i + 1]);
    EXPECT_GE(b - a, kCacheLineSize);
  }
}

}  // namespace
}  // namespace bpw
