// Tests for BP-Wrapper's batching protocol: queue thresholds, TryLock
// behaviour, commit-on-miss, commit ordering, stale-entry re-validation,
// and the "no lock until threshold" property the paper's Fig. 4 promises.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "core/bp_wrapper.h"
#include "policy/lru.h"
#include "util/random.h"

namespace bpw {
namespace {

// An instrumented policy that records the order of operations it sees.
class RecordingPolicy : public ReplacementPolicy {
 public:
  explicit RecordingPolicy(size_t frames) : ReplacementPolicy(frames) {}

  void OnHit(PageId page, FrameId) override { hits.push_back(page); }
  void OnMiss(PageId page, FrameId) override {
    misses.push_back(page);
    resident.insert(page);
  }
  StatusOr<Victim> ChooseVictim(const EvictableFn& evictable,
                                PageId) override {
    if (resident.empty() || !evictable(0)) {
      return Status::ResourceExhausted("empty");
    }
    const PageId victim = *resident.begin();
    resident.erase(resident.begin());
    return Victim{victim, 0};
  }
  void OnErase(PageId page, FrameId) override {
    erases.push_back(page);
    resident.erase(page);
  }
  Status CheckInvariants() const override { return Status::OK(); }
  size_t resident_count() const override { return resident.size(); }
  bool IsResident(PageId page) const override {
    return resident.count(page) > 0;
  }
  std::string name() const override { return "recording"; }

  std::vector<PageId> hits;
  std::vector<PageId> misses;
  std::vector<PageId> erases;
  std::set<PageId> resident;
};

BpWrapperCoordinator::Options Opts(size_t queue, size_t threshold,
                                   bool prefetch = false) {
  BpWrapperCoordinator::Options options;
  options.queue_size = queue;
  options.batch_threshold = threshold;
  options.prefetch = prefetch;
  return options;
}

TEST(BpWrapperTest, HitsAreDeferredUntilThreshold) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  BpWrapperCoordinator coord(std::move(owned), Opts(8, 4));
  auto slot = coord.RegisterThread();

  for (PageId p = 0; p < 3; ++p) coord.OnHit(slot.get(), p, 0);
  EXPECT_TRUE(policy->hits.empty()) << "below threshold: nothing committed";
  EXPECT_EQ(coord.lock_stats().acquisitions, 0u)
      << "no lock acquisition before the threshold (the paper's key claim)";

  coord.OnHit(slot.get(), 3, 0);  // reaches threshold of 4
  EXPECT_EQ(policy->hits.size(), 4u);
  EXPECT_EQ(coord.lock_stats().acquisitions, 1u);
}

TEST(BpWrapperTest, CommitPreservesArrivalOrder) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  BpWrapperCoordinator coord(std::move(owned), Opts(16, 8));
  auto slot = coord.RegisterThread();
  for (PageId p = 100; p < 108; ++p) coord.OnHit(slot.get(), p, 0);
  std::vector<PageId> expected;
  for (PageId p = 100; p < 108; ++p) expected.push_back(p);
  EXPECT_EQ(policy->hits, expected);
}

TEST(BpWrapperTest, MissCommitsQueueFirst) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  BpWrapperCoordinator coord(std::move(owned), Opts(16, 10));
  auto slot = coord.RegisterThread();
  coord.OnHit(slot.get(), 1, 0);
  coord.OnHit(slot.get(), 2, 0);
  // Miss path: ChooseVictim then CompleteMiss must both see the hits
  // committed beforehand (Fig. 4 replacement_for_page_miss).
  coord.CompleteMiss(slot.get(), 50, 0);
  ASSERT_EQ(policy->hits.size(), 2u);
  ASSERT_EQ(policy->misses.size(), 1u);
  EXPECT_EQ(policy->hits[0], 1u);
  EXPECT_EQ(policy->hits[1], 2u);
}

TEST(BpWrapperTest, ChooseVictimCommitsQueueFirst) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  BpWrapperCoordinator coord(std::move(owned), Opts(16, 10));
  auto slot = coord.RegisterThread();
  coord.CompleteMiss(slot.get(), 7, 0);  // make one page resident
  coord.OnHit(slot.get(), 7, 0);
  auto victim = coord.ChooseVictim(
      slot.get(), [](FrameId) { return true; }, 99);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(policy->hits.size(), 1u) << "queued hit committed before victim";
}

TEST(BpWrapperTest, FullQueueForcesBlockingCommit) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  BpWrapperCoordinator coord(std::move(owned), Opts(4, 2));
  auto slot = coord.RegisterThread();

  // Hold the lock from another thread so TryLock fails at the threshold.
  auto blocker_slot = coord.RegisterThread();
  std::atomic<bool> release{false};
  std::atomic<bool> holding{false};
  std::thread blocker([&] {
    // Use the coordinator's miss path to occupy the lock: CompleteMiss
    // holds it only briefly, so instead spin fetching victims... simpler:
    // grab the lock via a long-running ChooseVictim with a slow evictable.
    coord.CompleteMiss(blocker_slot.get(), 1000, 1);
    auto victim = coord.ChooseVictim(
        blocker_slot.get(),
        [&](FrameId) {
          holding.store(true);
          while (!release.load()) std::this_thread::yield();
          return true;
        },
        2000);
    EXPECT_TRUE(victim.ok());
  });
  while (!holding.load()) std::this_thread::yield();

  // Threshold (2) reached -> TryLock fails -> keep recording (entries 0..2).
  coord.OnHit(slot.get(), 0, 0);
  coord.OnHit(slot.get(), 1, 0);
  coord.OnHit(slot.get(), 2, 0);
  EXPECT_TRUE(policy->hits.empty());
  EXPECT_GE(coord.lock_stats().trylock_failures, 1u);
  EXPECT_EQ(coord.lock_stats().contentions, 0u);

  // Fourth hit fills the queue: the thread must block until released.
  std::thread filler([&] { coord.OnHit(slot.get(), 3, 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(policy->hits.empty()) << "filler must still be blocked";
  release.store(true);
  filler.join();
  blocker.join();
  EXPECT_EQ(policy->hits.size(), 4u);
  EXPECT_GE(coord.lock_stats().contentions, 1u)
      << "full-queue fallback is a blocking Lock()";
}

TEST(BpWrapperTest, StaleEntriesSkippedViaTagValidation) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  BpWrapperCoordinator coord(std::move(owned), Opts(8, 4));

  // Simulate the pool's frame tag array.
  std::vector<std::atomic<PageId>> tags(16);
  for (auto& t : tags) t.store(kInvalidPageId);
  coord.BindFrameTags(tags.data(), tags.size());

  auto slot = coord.RegisterThread();
  tags[0].store(10);
  tags[1].store(11);
  coord.OnHit(slot.get(), 10, 0);
  coord.OnHit(slot.get(), 11, 1);
  // Page 11 is evicted and frame 1 re-used before the commit.
  tags[1].store(99);
  coord.OnHit(slot.get(), 10, 0);
  coord.OnHit(slot.get(), 10, 0);  // 4th entry triggers commit
  ASSERT_EQ(policy->hits.size(), 3u) << "stale entry must be skipped";
  for (PageId p : policy->hits) EXPECT_EQ(p, 10u);
  EXPECT_EQ(coord.stale_commits(), 1u);
}

TEST(BpWrapperTest, FlushSlotCommitsPartialQueue) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  BpWrapperCoordinator coord(std::move(owned), Opts(64, 32));
  auto slot = coord.RegisterThread();
  coord.OnHit(slot.get(), 5, 0);
  coord.OnHit(slot.get(), 6, 0);
  EXPECT_TRUE(policy->hits.empty());
  coord.FlushSlot(slot.get());
  EXPECT_EQ(policy->hits.size(), 2u);
  // Flushing an empty queue is a no-op (no lock acquisition).
  const uint64_t acq = coord.lock_stats().acquisitions;
  coord.FlushSlot(slot.get());
  EXPECT_EQ(coord.lock_stats().acquisitions, acq);
}

TEST(BpWrapperTest, SlotDestructionFlushesQueue) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  BpWrapperCoordinator coord(std::move(owned), Opts(64, 32));
  {
    auto slot = coord.RegisterThread();
    coord.OnHit(slot.get(), 8, 0);
  }  // slot destroyed with one queued access
  EXPECT_EQ(policy->hits.size(), 1u);
}

TEST(BpWrapperTest, ThresholdClampedToQueueSize) {
  BpWrapperCoordinator coord(std::make_unique<LruPolicy>(4),
                             Opts(/*queue=*/4, /*threshold=*/100));
  EXPECT_EQ(coord.options().batch_threshold, 4u);
  BpWrapperCoordinator zero(std::make_unique<LruPolicy>(4), Opts(0, 0));
  EXPECT_EQ(zero.options().queue_size, 1u);
  EXPECT_EQ(zero.options().batch_threshold, 1u);
}

TEST(BpWrapperTest, BatchAccountingTracksAverages) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  BpWrapperCoordinator coord(std::move(owned), Opts(8, 4));
  auto slot = coord.RegisterThread();
  for (int i = 0; i < 12; ++i) {
    coord.OnHit(slot.get(), static_cast<PageId>(i), 0);
  }
  EXPECT_EQ(coord.commit_batches(), 3u);
  EXPECT_EQ(coord.committed_entries(), 12u);
}

TEST(BpWrapperTest, PrefetchVariantBehavesIdentically) {
  auto run = [](bool prefetch) {
    auto owned = std::make_unique<RecordingPolicy>(16);
    RecordingPolicy* policy = owned.get();
    BpWrapperCoordinator coord(std::move(owned), Opts(8, 4, prefetch));
    auto slot = coord.RegisterThread();
    for (PageId p = 0; p < 20; ++p) coord.OnHit(slot.get(), p, 0);
    coord.FlushSlot(slot.get());
    return policy->hits;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(BpWrapperTest, ConcurrentThreadsAllCommitted) {
  auto owned = std::make_unique<RecordingPolicy>(16);
  RecordingPolicy* policy = owned.get();
  BpWrapperCoordinator coord(std::move(owned), Opts(16, 8));
  constexpr int kThreads = 8;
  constexpr int kHitsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&coord, t] {
      auto slot = coord.RegisterThread();
      for (int i = 0; i < kHitsPerThread; ++i) {
        coord.OnHit(slot.get(), static_cast<PageId>(t), 0);
      }
      coord.FlushSlot(slot.get());
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(policy->hits.size(),
            static_cast<size_t>(kThreads) * kHitsPerThread);
  // Per-thread order must be preserved even though threads interleave:
  // every thread's hits use its own page id, so each id must appear exactly
  // kHitsPerThread times.
  std::map<PageId, int> counts;
  for (PageId p : policy->hits) ++counts[p];
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(counts[static_cast<PageId>(t)], kHitsPerThread);
  }
}

}  // namespace
}  // namespace bpw
