// Tests for the exponential-bucket latency histogram.
#include <gtest/gtest.h>

#include "util/histogram.h"

namespace bpw {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.Mean(), 1000.0);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  for (uint64_t v : {10u, 20u, 30u, 40u}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 25.0);
}

TEST(HistogramTest, SmallValuesExactBuckets) {
  // Values 0..3 land in their own buckets, so percentiles are exact.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(0);
  for (int i = 0; i < 100; ++i) h.Record(3);
  EXPECT_LE(h.Percentile(25), 1.0);
  EXPECT_GE(h.Percentile(90), 2.0);
}

TEST(HistogramTest, PercentileOrdering) {
  Histogram h;
  for (uint64_t i = 1; i <= 10000; ++i) h.Record(i);
  double p10 = h.Percentile(10);
  double p50 = h.Percentile(50);
  double p90 = h.Percentile(90);
  double p99 = h.Percentile(99);
  EXPECT_LT(p10, p50);
  EXPECT_LT(p50, p90);
  EXPECT_LT(p90, p99);
  // Buckets are ~1/8 wide at the top, so allow 15% relative error.
  EXPECT_NEAR(p50, 5000, 5000 * 0.15);
  EXPECT_NEAR(p90, 9000, 9000 * 0.15);
}

TEST(HistogramTest, PercentileBoundedByMinMax) {
  Histogram h;
  h.Record(500);
  h.Record(1500);
  for (double p : {0.0, 25.0, 50.0, 75.0, 100.0}) {
    EXPECT_GE(h.Percentile(p), 500.0);
    EXPECT_LE(h.Percentile(p), 1500.0);
  }
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  for (int i = 0; i < 50; ++i) a.Record(100);
  for (int i = 0; i < 50; ++i) b.Record(10000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 10000u);
  EXPECT_NEAR(a.Mean(), 5050.0, 1.0);
}

TEST(HistogramTest, MergeIntoEmptyAdoptsOtherStats) {
  // The empty target's min sentinel must not leak into the result: after
  // merging into a never-recorded histogram, min/max/mean are the source's.
  Histogram a, b;
  b.Record(100);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 300u);
  EXPECT_DOUBLE_EQ(a.Mean(), 200.0);
  for (double p : {0.0, 50.0, 100.0}) {
    EXPECT_GE(a.Percentile(p), 100.0);
    EXPECT_LE(a.Percentile(p), 300.0);
  }
}

TEST(HistogramTest, MergeEmptyIsNoop) {
  Histogram a, b;
  a.Record(42);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 42u);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(1);
  h.Record(1000000);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, HugeValuesClampToLastBucket) {
  Histogram h;
  h.Record(~0ULL);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), ~0ULL);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Record(5);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace bpw
