// Behavioural tests for CLOCK-Pro: hot/cold/test transitions, cold-target
// adaptation, non-resident bounding, and the LIRS-approximation quality.
#include <gtest/gtest.h>

#include "policy/clock_pro.h"
#include "policy/lru.h"
#include "util/random.h"

namespace bpw {
namespace {

ReplacementPolicy::EvictableFn All() {
  return [](FrameId) { return true; };
}

class ClockProDriver {
 public:
  explicit ClockProDriver(ReplacementPolicy& policy) : policy_(policy) {
    for (size_t i = policy.num_frames(); i-- > 0;) {
      free_.push_back(static_cast<FrameId>(i));
    }
    frame_of_.resize(policy.num_frames(), kInvalidPageId);
  }

  bool Access(PageId page) {
    policy_.AssertExclusiveAccess();  // drivers run single-threaded
    for (FrameId f = 0; f < frame_of_.size(); ++f) {
      if (frame_of_[f] == page) {
        policy_.OnHit(page, f);
        return true;
      }
    }
    FrameId frame;
    if (!free_.empty()) {
      frame = free_.back();
      free_.pop_back();
    } else {
      auto victim = policy_.ChooseVictim(All(), page);
      EXPECT_TRUE(victim.ok()) << victim.status().ToString();
      frame = victim->frame;
      frame_of_[frame] = kInvalidPageId;
    }
    frame_of_[frame] = page;
    policy_.OnMiss(page, frame);
    return false;
  }

 private:
  ReplacementPolicy& policy_;
  std::vector<FrameId> free_;
  std::vector<PageId> frame_of_;
};

TEST(ClockProTest, NewPagesAreColdInTest) {
  ClockProPolicy cp(8);
  cp.AssertExclusiveAccess();
  cp.OnMiss(1, 0);
  cp.OnMiss(2, 1);
  EXPECT_EQ(cp.cold_count(), 2u);
  EXPECT_EQ(cp.hot_count(), 0u);
  EXPECT_TRUE(cp.CheckInvariants().ok());
}

TEST(ClockProTest, HitOnlySetsRefBit) {
  ClockProPolicy cp(8);
  cp.AssertExclusiveAccess();
  cp.OnMiss(1, 0);
  cp.OnHit(1, 0);
  // Still cold: CLOCK-Pro's hit path is a bit set (its whole point as a
  // clock algorithm).
  EXPECT_EQ(cp.cold_count(), 1u);
  EXPECT_EQ(cp.hot_count(), 0u);
}

TEST(ClockProTest, ReferencedTestPagePromotesToHotOnSweep) {
  ClockProPolicy cp(4);
  cp.AssertExclusiveAccess();
  cp.OnMiss(1, 0);
  cp.OnMiss(2, 1);
  cp.OnHit(1, 0);  // page 1 referenced during its test period
  auto victim = cp.ChooseVictim(All(), 3);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->page, 2u) << "unreferenced cold page evicted first";
  EXPECT_EQ(cp.hot_count(), 1u) << "referenced test page became hot";
  EXPECT_TRUE(cp.CheckInvariants().ok());
}

TEST(ClockProTest, EvictedTestPageStaysAsNonResident) {
  ClockProPolicy cp(2);
  cp.AssertExclusiveAccess();
  cp.OnMiss(1, 0);
  cp.OnMiss(2, 1);
  auto victim = cp.ChooseVictim(All(), 3);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(cp.nonresident_count(), 1u)
      << "a test-period page keeps metadata after eviction";
  EXPECT_FALSE(cp.IsResident(victim->page));
}

TEST(ClockProTest, ReloadDuringTestGrowsColdTargetAndGoesHot) {
  ClockProPolicy cp(2);
  cp.AssertExclusiveAccess();
  cp.OnMiss(1, 0);
  cp.OnMiss(2, 1);
  auto victim = cp.ChooseVictim(All(), 3);
  ASSERT_TRUE(victim.ok());
  const PageId evicted = victim->page;
  cp.OnMiss(3, victim->frame);
  const size_t target_before = cp.cold_target();
  // Fault the evicted page back while its test period lives.
  auto v2 = cp.ChooseVictim(All(), evicted);
  ASSERT_TRUE(v2.ok());
  cp.OnMiss(evicted, v2->frame);
  EXPECT_GE(cp.cold_target(), target_before);
  EXPECT_EQ(cp.hot_count(), 1u) << "test-period reload becomes hot";
  EXPECT_TRUE(cp.CheckInvariants().ok());
}

TEST(ClockProTest, NonResidentMetadataBounded) {
  constexpr size_t kFrames = 8;
  ClockProPolicy cp(kFrames);
  cp.AssertExclusiveAccess();
  ClockProDriver driver(cp);
  for (PageId p = 0; p < 500; ++p) {
    driver.Access(p);
    ASSERT_LE(cp.nonresident_count(), kFrames);
    if (p % 50 == 0) {
      ASSERT_TRUE(cp.CheckInvariants().ok())
          << cp.CheckInvariants().ToString();
    }
  }
}

TEST(ClockProTest, ColdTargetStaysInRange) {
  ClockProPolicy cp(16);
  cp.AssertExclusiveAccess();
  ClockProDriver driver(cp);
  Random rng(3);
  for (int i = 0; i < 20000; ++i) {
    const PageId page = rng.Bernoulli(0.6) ? rng.Uniform(16)
                                           : rng.Uniform(256);
    driver.Access(page);
    ASSERT_GE(cp.cold_target(), 1u);
    ASSERT_LE(cp.cold_target(), 16u);
  }
  EXPECT_TRUE(cp.CheckInvariants().ok());
}

TEST(ClockProTest, LoopWorkloadBeatsLru) {
  // CLOCK-Pro approximates LIRS: on a loop slightly larger than the cache
  // it must retain a stable subset while LRU gets ~0%.
  constexpr size_t kFrames = 50;
  constexpr PageId kLoop = 60;
  constexpr int kLaps = 40;
  auto run = [&](ReplacementPolicy& policy) {
    ClockProDriver driver(policy);
    uint64_t hits = 0;
    for (int lap = 0; lap < kLaps; ++lap) {
      for (PageId p = 0; p < kLoop; ++p) hits += driver.Access(p);
    }
    return static_cast<double>(hits) / (kLaps * kLoop);
  };
  ClockProPolicy cp(kFrames);
  cp.AssertExclusiveAccess();
  LruPolicy lru(kFrames);
  lru.AssertExclusiveAccess();
  const double cp_ratio = run(cp);
  const double lru_ratio = run(lru);
  EXPECT_LT(lru_ratio, 0.02);
  EXPECT_GT(cp_ratio, lru_ratio + 0.3)
      << "CLOCK-Pro must beat LRU clearly on a loop";
}

TEST(ClockProTest, EraseEveryState) {
  ClockProPolicy cp(4);
  cp.AssertExclusiveAccess();
  ClockProDriver driver(cp);
  for (PageId p = 0; p < 4; ++p) driver.Access(p);
  driver.Access(0);   // ref
  driver.Access(10);  // evicts someone into non-resident test
  ASSERT_GT(cp.nonresident_count(), 0u);
  // Erase every non-resident ghost (ids 0..4 were the eviction candidates).
  for (PageId p = 0; p <= 4; ++p) {
    if (!cp.IsResident(p)) cp.OnErase(p, kInvalidFrameId);
  }
  EXPECT_EQ(cp.nonresident_count(), 0u);
  EXPECT_TRUE(cp.CheckInvariants().ok()) << cp.CheckInvariants().ToString();
  // Resident-page erase (frame-validated) is covered by the generic policy
  // suite; here verify the resident count survives the ghost purge.
  EXPECT_EQ(cp.resident_count(), 4u);
}

}  // namespace
}  // namespace bpw
