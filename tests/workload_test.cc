// Tests for the workload generators: determinism, footprint bounds,
// transaction structure, mix properties.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/trace_generator.h"

namespace bpw {
namespace {

WorkloadSpec Spec(const std::string& name, uint64_t pages = 4096,
                  uint64_t seed = 5) {
  WorkloadSpec spec;
  spec.name = name;
  spec.num_pages = pages;
  spec.seed = seed;
  return spec;
}

class WorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadTest, FactoryCreates) {
  auto trace = CreateTrace(Spec(GetParam()), 0);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->name(), GetParam());
}

TEST_P(WorkloadTest, PagesWithinFootprint) {
  auto trace = CreateTrace(Spec(GetParam()), 0);
  ASSERT_NE(trace, nullptr);
  const uint64_t footprint = trace->footprint_pages();
  EXPECT_GT(footprint, 0u);
  for (int i = 0; i < 50000; ++i) {
    const PageAccess access = trace->Next();
    ASSERT_LT(access.page, footprint);
  }
}

TEST_P(WorkloadTest, DeterministicPerSeedAndThread) {
  auto a = CreateTrace(Spec(GetParam()), 3);
  auto b = CreateTrace(Spec(GetParam()), 3);
  ASSERT_NE(a, nullptr);
  for (int i = 0; i < 5000; ++i) {
    const PageAccess x = a->Next();
    const PageAccess y = b->Next();
    ASSERT_EQ(x.page, y.page);
    ASSERT_EQ(x.is_write, y.is_write);
    ASSERT_EQ(x.begins_transaction, y.begins_transaction);
  }
}

TEST_P(WorkloadTest, FirstAccessBeginsTransaction) {
  auto trace = CreateTrace(Spec(GetParam()), 0);
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->Next().begins_transaction);
}

TEST_P(WorkloadTest, TransactionsKeepComing) {
  auto trace = CreateTrace(Spec(GetParam()), 0);
  ASSERT_NE(trace, nullptr);
  int boundaries = 0;
  for (int i = 0; i < 200000 && boundaries < 10; ++i) {
    if (trace->Next().begins_transaction) ++boundaries;
  }
  EXPECT_GE(boundaries, 10) << "stream stopped producing transactions";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::ValuesIn(KnownWorkloads()));

TEST(WorkloadFactoryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(CreateTrace(Spec("bogus"), 0), nullptr);
}

TEST(WorkloadFactoryTest, DifferentThreadsDifferentStreams) {
  auto a = CreateTrace(Spec("zipfian"), 0);
  auto b = CreateTrace(Spec("zipfian"), 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a->Next().page == b->Next().page) ++same;
  }
  // Zipfian streams share hot pages, so some collisions are expected, but
  // the streams must not be identical.
  EXPECT_LT(same, 900);
}

TEST(TableScanTest, SequentialWrapAround) {
  WorkloadSpec spec = Spec("tablescan", 100);
  auto trace = CreateTrace(spec, 0);
  PageAccess first = trace->Next();
  PageId prev = first.page;
  for (int i = 1; i < 250; ++i) {
    const PageAccess access = trace->Next();
    ASSERT_EQ(access.page, (prev + 1) % 100) << "must scan sequentially";
    prev = access.page;
    EXPECT_FALSE(access.is_write);
  }
}

TEST(TableScanTest, OneTransactionPerFullScan) {
  WorkloadSpec spec = Spec("tablescan", 50);
  auto trace = CreateTrace(spec, 0);
  int boundaries = 0;
  for (int i = 0; i < 50 * 4; ++i) {
    if (trace->Next().begins_transaction) ++boundaries;
  }
  EXPECT_EQ(boundaries, 4);
}

TEST(TableScanTest, ThreadsStartAtDifferentOffsets) {
  WorkloadSpec spec = Spec("tablescan", 1000);
  auto a = CreateTrace(spec, 0);
  auto b = CreateTrace(spec, 1);
  EXPECT_NE(a->Next().page, b->Next().page);
}

TEST(Dbt1Test, ReadMostly) {
  auto trace = CreateTrace(Spec("dbt1"), 0);
  int writes = 0;
  constexpr int kAccesses = 100000;
  for (int i = 0; i < kAccesses; ++i) writes += trace->Next().is_write;
  EXPECT_GT(writes, 0) << "the buy path must write";
  EXPECT_LT(static_cast<double>(writes) / kAccesses, 0.10)
      << "DBT-1 is a browsing (read-mostly) workload";
}

TEST(Dbt1Test, AccessesAreSkewed) {
  auto trace = CreateTrace(Spec("dbt1", 8192), 0);
  std::map<PageId, int> counts;
  constexpr int kAccesses = 200000;
  for (int i = 0; i < kAccesses; ++i) ++counts[trace->Next().page];
  // Top 5% of touched pages should absorb the majority of accesses.
  std::vector<int> sorted;
  for (auto& [p, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  int64_t top = 0, total = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    total += sorted[i];
    if (i < sorted.size() / 20) top += sorted[i];
  }
  EXPECT_GT(static_cast<double>(top) / total, 0.5);
}

TEST(Dbt2Test, WriteHeavyOltpMix) {
  auto trace = CreateTrace(Spec("dbt2"), 0);
  int writes = 0;
  constexpr int kAccesses = 100000;
  for (int i = 0; i < kAccesses; ++i) writes += trace->Next().is_write;
  const double fraction = static_cast<double>(writes) / kAccesses;
  // New-Order + Payment + Delivery dirty a large share of accessed pages.
  EXPECT_GT(fraction, 0.20);
  EXPECT_LT(fraction, 0.75);
}

TEST(Dbt2Test, WarehousePagesAreHot) {
  WorkloadSpec spec = Spec("dbt2", 8192);
  spec.warehouses = 10;
  auto trace = CreateTrace(spec, 0);
  std::map<PageId, int> counts;
  constexpr int kAccesses = 100000;
  for (int i = 0; i < kAccesses; ++i) ++counts[trace->Next().page];
  // Warehouse pages are the first `warehouses` pages; the thread's home
  // warehouse page must be among the hottest.
  int64_t wh_accesses = 0;
  for (PageId p = 0; p < 10; ++p) wh_accesses += counts[p];
  EXPECT_GT(static_cast<double>(wh_accesses) / kAccesses, 0.05)
      << "tiny warehouse/district tables must be disproportionately hot";
}

TEST(Dbt2Test, HomeWarehouseAffinity) {
  WorkloadSpec spec = Spec("dbt2", 8192);
  spec.warehouses = 10;
  auto trace = CreateTrace(spec, /*thread_id=*/3);  // home warehouse 3
  std::map<PageId, int> wh_counts;
  for (int i = 0; i < 100000; ++i) {
    const PageAccess access = trace->Next();
    if (access.page < 10) ++wh_counts[access.page];
  }
  int64_t total = 0;
  for (auto& [p, c] : wh_counts) total += c;
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(wh_counts[3]) / total, 0.5)
      << "90% of transactions should touch the home warehouse";
}

TEST(Dbt2Test, TransactionLengthsVary) {
  auto trace = CreateTrace(Spec("dbt2"), 0);
  std::set<int> lengths;
  int current = 0;
  for (int i = 0; i < 20000; ++i) {
    const PageAccess access = trace->Next();
    if (access.begins_transaction && current > 0) {
      lengths.insert(current);
      current = 0;
    }
    ++current;
  }
  EXPECT_GE(lengths.size(), 4u)
      << "the five TPC-C transaction types have different footprints";
}

TEST(ZipfianTraceTest, TransactionsAreFixedLength) {
  WorkloadSpec spec = Spec("zipfian");
  auto trace = CreateTrace(spec, 0);
  int count_between = 0;
  trace->Next();  // first boundary
  for (int i = 0; i < 100; ++i) {
    ++count_between;
    if (trace->Next().begins_transaction) {
      EXPECT_EQ(count_between, 10);  // default accesses_per_tx
      count_between = 0;
    }
  }
}

}  // namespace
}  // namespace bpw
