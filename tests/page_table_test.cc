// Tests for the partitioned page table.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "buffer/page_table.h"

namespace bpw {
namespace {

TEST(PageTableTest, LookupMissingReturnsInvalid) {
  PageTable table(8);
  EXPECT_EQ(table.Lookup(42), kInvalidFrameId);
}

TEST(PageTableTest, InsertThenLookup) {
  PageTable table(8);
  EXPECT_TRUE(table.Insert(42, 7));
  EXPECT_EQ(table.Lookup(42), 7u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(PageTableTest, DuplicateInsertRejected) {
  PageTable table(8);
  EXPECT_TRUE(table.Insert(1, 0));
  EXPECT_FALSE(table.Insert(1, 5));
  EXPECT_EQ(table.Lookup(1), 0u) << "original mapping must be untouched";
}

TEST(PageTableTest, EraseRequiresMatchingFrame) {
  PageTable table(8);
  table.Insert(1, 3);
  EXPECT_FALSE(table.Erase(1, 4)) << "wrong frame must not erase";
  EXPECT_EQ(table.Lookup(1), 3u);
  EXPECT_TRUE(table.Erase(1, 3));
  EXPECT_EQ(table.Lookup(1), kInvalidFrameId);
  EXPECT_FALSE(table.Erase(1, 3)) << "double erase";
}

TEST(PageTableTest, ShardCountRoundsToPowerOfTwo) {
  PageTable table(100);
  EXPECT_EQ(table.num_shards(), 128u);
  PageTable one(0);
  EXPECT_EQ(one.num_shards(), 1u);
}

TEST(PageTableTest, ManyMappings) {
  PageTable table(64);
  for (PageId p = 0; p < 10000; ++p) {
    ASSERT_TRUE(table.Insert(p, static_cast<FrameId>(p % 1000)));
  }
  EXPECT_EQ(table.size(), 10000u);
  for (PageId p = 0; p < 10000; ++p) {
    ASSERT_EQ(table.Lookup(p), static_cast<FrameId>(p % 1000));
  }
}

TEST(PageTableTest, ConcurrentDisjointInsertErase) {
  PageTable table(64);
  constexpr int kThreads = 8;
  constexpr PageId kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      const PageId base = static_cast<PageId>(t) * kPerThread;
      for (PageId p = base; p < base + kPerThread; ++p) {
        ASSERT_TRUE(table.Insert(p, static_cast<FrameId>(p % 97)));
      }
      for (PageId p = base; p < base + kPerThread; ++p) {
        ASSERT_EQ(table.Lookup(p), static_cast<FrameId>(p % 97));
      }
      for (PageId p = base; p < base + kPerThread; p += 2) {
        ASSERT_TRUE(table.Erase(p, static_cast<FrameId>(p % 97)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.size(), kThreads * kPerThread / 2);
}

TEST(PageTableTest, ConcurrentSamePageSingleWinner) {
  PageTable table(16);
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (table.Insert(7, static_cast<FrameId>(t))) {
        winners.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_NE(table.Lookup(7), kInvalidFrameId);
}

}  // namespace
}  // namespace bpw
