// Tests for the simulated storage engine.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "storage/storage_engine.h"
#include "util/clock.h"

namespace bpw {
namespace {

constexpr size_t kPageSize = 4096;

TEST(StorageTest, FreshPageCarriesVersionZeroStamp) {
  StorageEngine storage(16, kPageSize);
  std::vector<uint8_t> buf(kPageSize);
  ASSERT_TRUE(storage.ReadPage(3, buf.data()).ok());
  auto [word, version] = StorageEngine::ReadStamp(buf.data());
  EXPECT_EQ(version, 0u);
  EXPECT_EQ(word, storage.VerificationWord(3));
}

TEST(StorageTest, WriteThenReadRoundTrips) {
  StorageEngine storage(16, kPageSize);
  std::vector<uint8_t> buf(kPageSize, 0);
  StorageEngine::StampPage(buf.data(), kPageSize, 5, 42);
  ASSERT_TRUE(storage.WritePage(5, buf.data()).ok());

  std::vector<uint8_t> readback(kPageSize, 0xFF);
  ASSERT_TRUE(storage.ReadPage(5, readback.data()).ok());
  auto [word, version] = StorageEngine::ReadStamp(readback.data());
  EXPECT_EQ(version, 42u);
  EXPECT_EQ(word, 5 * 0x9E3779B97F4A7C15ULL + 42);
}

TEST(StorageTest, MaterializedModePreservesFullPage) {
  StorageEngine storage(8, kPageSize, StorageLatencyModel::None(),
                        /*materialize=*/true);
  std::vector<uint8_t> buf(kPageSize);
  for (size_t i = 0; i < kPageSize; ++i) buf[i] = static_cast<uint8_t>(i);
  StorageEngine::StampPage(buf.data(), kPageSize, 2, 7);
  ASSERT_TRUE(storage.WritePage(2, buf.data()).ok());
  std::vector<uint8_t> readback(kPageSize, 0);
  ASSERT_TRUE(storage.ReadPage(2, readback.data()).ok());
  EXPECT_EQ(buf, readback);
}

TEST(StorageTest, OutOfRangeRejected) {
  StorageEngine storage(4, kPageSize);
  std::vector<uint8_t> buf(kPageSize);
  EXPECT_EQ(storage.ReadPage(4, buf.data()).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(storage.WritePage(99, buf.data()).code(),
            StatusCode::kOutOfRange);
}

TEST(StorageTest, StatsCountOperations) {
  StorageEngine storage(8, kPageSize);
  std::vector<uint8_t> buf(kPageSize);
  for (int i = 0; i < 5; ++i) storage.ReadPage(0, buf.data());
  for (int i = 0; i < 3; ++i) storage.WritePage(1, buf.data());
  StorageStats s = storage.stats();
  EXPECT_EQ(s.reads, 5u);
  EXPECT_EQ(s.writes, 3u);
  storage.ResetStats();
  EXPECT_EQ(storage.stats().reads, 0u);
}

TEST(StorageTest, FixedLatencyIsApplied) {
  StorageEngine storage(4, kPageSize,
                        StorageLatencyModel::FixedMicros(500, 0));
  std::vector<uint8_t> buf(kPageSize);
  Stopwatch sw;
  storage.ReadPage(0, buf.data());
  EXPECT_GE(sw.ElapsedNanos(), 400'000u);  // >= ~0.4ms for a 0.5ms model
  // Writes configured with zero latency stay fast.
  sw.Restart();
  storage.WritePage(0, buf.data());
  EXPECT_LT(sw.ElapsedNanos(), 400'000u);
}

TEST(StorageTest, ExponentialLatencyVariesButBounded) {
  StorageLatencyModel model;
  model.read_nanos = 100'000;  // 0.1 ms mean
  model.exponential = true;
  StorageEngine storage(4, kPageSize, model);
  std::vector<uint8_t> buf(kPageSize);
  // Observe the *modelled* per-read draw through the engine's own latency
  // accounting (stats deltas). Wall-clock sleeps overshoot by milliseconds
  // of scheduler jitter under a loaded test machine, but the accounted
  // value is the drawn one, so the clamp bound can be asserted exactly.
  uint64_t min_t = ~0ULL, max_t = 0, prev = 0;
  for (int i = 0; i < 30; ++i) {
    storage.ReadPage(0, buf.data());
    const uint64_t total = storage.stats().read_nanos;
    const uint64_t t = total - prev;
    prev = total;
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  EXPECT_LT(min_t, max_t);         // there is variance
  EXPECT_LE(max_t, 100'000u * 8);  // the tail is clamped at 8x mean
}

TEST(StorageTest, InjectedReadFailuresSurfaceAsIOError) {
  StorageEngine storage(8, kPageSize);
  testing::FaultPlan plan;
  plan.read_error_probability = 1.0;
  testing::FaultInjector injector(plan);
  storage.SetFaultInjector(&injector);

  std::vector<uint8_t> buf(kPageSize);
  const Status read = storage.ReadPage(2, buf.data());
  EXPECT_TRUE(read.IsIOError()) << read.ToString();
  // A failed read issues no I/O, and a read-only plan leaves writes alone.
  EXPECT_EQ(storage.stats().reads, 0u);
  EXPECT_TRUE(storage.WritePage(2, buf.data()).ok());

  storage.SetFaultInjector(nullptr);
  EXPECT_TRUE(storage.ReadPage(2, buf.data()).ok());
}

TEST(StorageTest, InjectedWriteFailureLeavesOldContents) {
  StorageEngine storage(8, kPageSize);
  std::vector<uint8_t> buf(kPageSize);
  StorageEngine::StampPage(buf.data(), kPageSize, 1, 5);
  ASSERT_TRUE(storage.WritePage(1, buf.data()).ok());

  testing::FaultPlan plan;
  plan.write_error_probability = 1.0;
  testing::FaultInjector injector(plan);
  storage.SetFaultInjector(&injector);
  StorageEngine::StampPage(buf.data(), kPageSize, 1, 6);
  EXPECT_TRUE(storage.WritePage(1, buf.data()).IsIOError());
  storage.SetFaultInjector(nullptr);

  // The device still holds version 5, consistently (failed != torn).
  EXPECT_EQ(storage.VerificationWord(1), 1 * 0x9E3779B97F4A7C15ULL + 5);
  EXPECT_TRUE(storage.StampConsistent(1));
}

TEST(StorageTest, TornWriteBreaksStampConsistency) {
  StorageEngine storage(8, kPageSize);
  testing::FaultPlan plan;
  plan.torn_write_probability = 1.0;
  testing::FaultInjector injector(plan);
  storage.SetFaultInjector(&injector);

  std::vector<uint8_t> buf(kPageSize);
  StorageEngine::StampPage(buf.data(), kPageSize, 3, 9);
  ASSERT_TRUE(storage.WritePage(3, buf.data()).ok());  // "succeeds"…
  EXPECT_FALSE(storage.StampConsistent(3)) << "torn write went undetected";
  EXPECT_EQ(injector.stats().torn_writes, 1u);

  // An intact rewrite repairs the page.
  storage.SetFaultInjector(nullptr);
  ASSERT_TRUE(storage.WritePage(3, buf.data()).ok());
  EXPECT_TRUE(storage.StampConsistent(3));
}

// Injected latency spikes must be honoured by both wait modes (the sleeping
// mode a Fig. 8 experiment uses, and the busy-wait mode of the scalability
// runs).
TEST(StorageTest, LatencySpikesHonouredInBothWaitModes) {
  for (const bool use_sleep : {false, true}) {
    StorageLatencyModel model;  // zero base latency
    model.use_sleep = use_sleep;
    StorageEngine storage(4, kPageSize, model);

    testing::FaultPlan plan;
    plan.read_spike_probability = 1.0;
    plan.latency_spike_nanos = 2'000'000;  // 2 ms
    testing::FaultInjector injector(plan);
    storage.SetFaultInjector(&injector);

    std::vector<uint8_t> buf(kPageSize);
    Stopwatch sw;
    ASSERT_TRUE(storage.ReadPage(0, buf.data()).ok());
    EXPECT_GE(sw.ElapsedNanos(), 1'500'000u)
        << (use_sleep ? "sleeping" : "busy-wait")
        << " mode swallowed the injected spike";
    EXPECT_EQ(injector.stats().latency_spikes, 1u);
    // The spike is accounted as read latency in the engine stats.
    EXPECT_GE(storage.stats().read_nanos, 1'500'000u);
  }
}

TEST(StorageTest, ConcurrentDistinctPagesKeepIntegrity) {
  StorageEngine storage(64, kPageSize);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&storage, t] {
      std::vector<uint8_t> buf(kPageSize);
      for (uint64_t round = 1; round <= 200; ++round) {
        const PageId page = t * 8 + (round % 8);
        StorageEngine::StampPage(buf.data(), kPageSize, page,
                                 t * 1000 + round);
        ASSERT_TRUE(storage.WritePage(page, buf.data()).ok());
        ASSERT_TRUE(storage.ReadPage(page, buf.data()).ok());
        auto [word, version] = StorageEngine::ReadStamp(buf.data());
        // The page was last written by this thread (pages are private).
        EXPECT_EQ(version, static_cast<uint64_t>(t) * 1000 + round);
        EXPECT_EQ(word, page * 0x9E3779B97F4A7C15ULL + version);
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(StorageTest, ConcurrentSamePageNeverTearsStamp) {
  StorageEngine storage(1, kPageSize);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::vector<uint8_t> buf(kPageSize);
    for (uint64_t v = 1; !stop.load(); ++v) {
      StorageEngine::StampPage(buf.data(), kPageSize, 0, v);
      storage.WritePage(0, buf.data());
    }
  });
  std::vector<uint8_t> buf(kPageSize);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(storage.ReadPage(0, buf.data()).ok());
    auto [word, version] = StorageEngine::ReadStamp(buf.data());
    // Stamp words must be mutually consistent (no torn read).
    EXPECT_EQ(word, 0 * 0x9E3779B97F4A7C15ULL + version);
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace bpw
