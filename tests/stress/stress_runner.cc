#include "stress/stress_runner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>

#include "buffer/buffer_pool.h"
#include "sync/mutex.h"
#include "util/random.h"

namespace bpw {
namespace stress {

namespace {

constexpr uint64_t kStampMix = 0x9E3779B97F4A7C15ULL;

// SplitMix64 finalizer, for decorrelating (seed, stream) pairs.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

struct Op {
  enum Kind { kFetch, kDrop } kind = kFetch;
  PageId page = 0;
  bool dirty = false;
};

// Page-space layout: the first half is read-only (stamps stay at version 0,
// so every reader can verify them byte-exactly even while other threads
// write elsewhere); the second half is writable, each page owned by exactly
// one thread so version checks are race-free. The hot set lives inside the
// read-only half — the hottest traffic gets the strictest checking.
struct Layout {
  uint64_t pages;
  uint64_t writable_base;  // pages >= this may be dirtied
  uint64_t hot_span;

  explicit Layout(uint64_t num_pages)
      : pages(num_pages),
        writable_base(num_pages / 2),
        hot_span(std::max<uint64_t>(1, num_pages / 8)) {}
};

// Pre-generates every thread's op sequence so the serialized oracle can
// replay the identical access stream.
std::vector<std::vector<Op>> GenerateTraces(const StressOptions& o,
                                            const Layout& layout) {
  std::vector<std::vector<Op>> traces(o.threads);
  for (int t = 0; t < o.threads; ++t) {
    Random rng(Mix(o.seed) ^ Mix(0x7A11 + t));
    traces[t].reserve(o.ops_per_thread);
    for (int i = 0; i < o.ops_per_thread; ++i) {
      Op op;
      if (rng.Bernoulli(o.drop_probability)) {
        op.kind = Op::kDrop;
        op.page = rng.Uniform(layout.pages);
      } else if (rng.Bernoulli(o.hot_probability)) {
        op.page = rng.Uniform(layout.hot_span);
      } else {
        op.page = rng.Uniform(layout.pages);
      }
      if (op.kind == Op::kFetch && op.page >= layout.writable_base &&
          (op.page - layout.writable_base) % static_cast<uint64_t>(o.threads) ==
              static_cast<uint64_t>(t)) {
        op.dirty = rng.Bernoulli(o.dirty_probability);
      }
      traces[t].push_back(op);
    }
  }
  return traces;
}

std::unique_ptr<BufferPool> MakePool(const StressOptions& o,
                                     StorageEngine* storage,
                                     const SystemConfig& system, bool mutated,
                                     Status* error) {
  auto coordinator = CreateCoordinator(system, o.frames);
  if (!coordinator.ok()) {
    *error = coordinator.status();
    return nullptr;
  }
  BufferPoolConfig config;
  config.num_frames = o.frames;
  config.page_size = o.page_size;
  config.test_skip_victim_revalidation = mutated;
  return std::make_unique<BufferPool>(config, storage,
                                      std::move(coordinator).value());
}

// Single-threaded serialized replay of the same traces (round-robin
// interleave), no faults, no perturbation: the hit-ratio oracle. Returns a
// negative value if the stack cannot be constructed.
double OracleHitRatio(const StressOptions& o,
                      const std::vector<std::vector<Op>>& traces) {
  StorageEngine storage(o.pages, o.page_size);
  SystemConfig serialized;
  serialized.policy = o.system.policy;
  serialized.coordinator = "serialized";
  Status error;
  auto pool = MakePool(o, &storage, serialized, /*mutated=*/false, &error);
  if (pool == nullptr) return -1.0;
  auto session = pool->CreateSession();
  for (int i = 0; i < o.ops_per_thread; ++i) {
    for (int t = 0; t < o.threads; ++t) {
      const Op& op = traces[t][i];
      if (op.kind == Op::kDrop) {
        (void)pool->DropPage(*session, op.page);
      } else {
        (void)pool->FetchPage(*session, op.page);
      }
    }
  }
  return session->stats().hit_ratio();
}

}  // namespace

std::vector<StressConfig> DefaultStressMatrix() {
  std::vector<StressConfig> matrix;
  const std::vector<std::string> policies = {"lru", "2q", "lirs", "arc",
                                             "clock"};
  for (const std::string& policy : policies) {
    {
      SystemConfig c;
      c.policy = policy;
      c.coordinator = "serialized";
      matrix.push_back({"serialized/" + policy, c});
    }
    {
      SystemConfig c;
      c.policy = policy;
      c.coordinator = "bp-wrapper";
      c.batching = true;
      matrix.push_back({"bp-wrapper/" + policy, c});
    }
    {
      SystemConfig c;
      c.policy = policy;
      c.coordinator = "bp-wrapper";
      c.batching = true;
      c.prefetch = true;
      // A tiny queue forces frequent commits and the blocking-Lock fallback.
      c.queue_size = 8;
      c.batch_threshold = 4;
      matrix.push_back({"bp-wrapper+pre-s8/" + policy, c});
    }
    {
      SystemConfig c;
      c.policy = policy;
      c.coordinator = "shared-queue";
      matrix.push_back({"shared-queue/" + policy, c});
    }
    {
      SystemConfig c;
      c.policy = policy;
      c.coordinator = "combining";
      c.batching = true;
      matrix.push_back({"combining/" + policy, c});
    }
    {
      SystemConfig c;
      c.policy = policy;
      c.coordinator = "combining";
      c.batching = true;
      c.prefetch = true;
      // Tiny queue: frequent publications, constant combiner adoption
      // traffic, and the blocking-Lock fallback all get exercised.
      c.queue_size = 8;
      c.batch_threshold = 4;
      matrix.push_back({"combining+pre-s8/" + policy, c});
    }
    {
      SystemConfig c;
      c.policy = policy;
      c.coordinator = "sharded";
      c.policy_shards = 4;
      matrix.push_back({"sharded-x4/" + policy, c});
    }
    {
      SystemConfig c;
      c.policy = policy;
      c.coordinator = "sharded";
      c.policy_shards = 4;
      c.prefetch = true;
      // A tiny ring overflows constantly: the drop-oldest path, frequent
      // small commits, and the rebalance cadence all get exercised.
      c.queue_size = 8;
      c.rebalance_interval = 2;
      matrix.push_back({"sharded-x4+pre-s8/" + policy, c});
    }
  }
  for (const char* policy : {"clock", "gclock"}) {
    SystemConfig c;
    c.policy = policy;
    c.coordinator = "clock-lockfree";
    matrix.push_back({std::string("clock-lockfree/") + policy, c});
  }
  return matrix;
}

StressResult RunStress(const StressOptions& options) {
  StressResult result;
  const Layout layout(options.pages);
  auto fail = [&](const std::string& what) {
    if (result.ok) {
      result.ok = false;
      result.failure = what + " (reproduce with --seed=" +
                       std::to_string(options.seed) + ")";
    }
  };

  const std::vector<std::vector<Op>> traces = GenerateTraces(options, layout);

  StorageEngine storage(options.pages, options.page_size);

  testing::FaultPlan plan = options.faults;
  plan.seed = Mix(options.seed) ^ Mix(0xFA017);
  std::unique_ptr<testing::FaultInjector> injector;
  if (plan.enabled()) {
    injector = std::make_unique<testing::FaultInjector>(plan);
    storage.SetFaultInjector(injector.get());
  }

  Status error;
  auto pool = MakePool(options, &storage, options.system,
                       options.mutate_skip_victim_revalidation, &error);
  if (pool == nullptr) {
    fail("coordinator construction failed: " + error.ToString());
    return result;
  }

  std::unique_ptr<testing::ScopedScheduleController> controller;
  if (options.schedule_perturbation) {
    testing::ScheduleOptions sched = options.schedule;
    sched.seed = options.seed;
    controller = std::make_unique<testing::ScopedScheduleController>(sched);
  }

  std::atomic<uint64_t> io_errors{0};
  std::atomic<uint64_t> verify_mismatches{0};
  std::atomic<uint64_t> unexpected_errors{0};
  Mutex failure_mu;
  std::string first_worker_failure;

  // Highest version each thread wrote to each page it owns (merged after
  // join for the lost-update scan). Sized before any worker starts so the
  // outer vector is never resized concurrently.
  std::vector<std::vector<uint64_t>> last_written(options.threads);
  for (auto& per_thread : last_written) per_thread.assign(options.pages, 0);

  std::vector<std::thread> workers;
  workers.reserve(options.threads);
  for (int t = 0; t < options.threads; ++t) {
    workers.emplace_back([&, t] {
      testing::ScheduleController::BindCurrentThread(static_cast<uint64_t>(t));
      auto session = pool->CreateSession();
      uint64_t next_version = 1;
      for (const Op& op : traces[t]) {
        if (op.kind == Op::kDrop) {
          const Status drop = pool->DropPage(*session, op.page);
          // NotFound (never resident) and FailedPrecondition (pinned by a
          // racing thread) are expected; anything else is a harness failure.
          if (!drop.ok() && !drop.IsNotFound() &&
              drop.code() != StatusCode::kFailedPrecondition) {
            unexpected_errors.fetch_add(1, std::memory_order_relaxed);
            MutexGuard g(failure_mu);
            if (first_worker_failure.empty()) {
              first_worker_failure = "DropPage: " + drop.ToString();
            }
          }
          continue;
        }
        auto handle = pool->FetchPage(*session, op.page);
        if (!handle.ok()) {
          if (handle.status().IsIOError()) {
            io_errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          unexpected_errors.fetch_add(1, std::memory_order_relaxed);
          MutexGuard g(failure_mu);
          if (first_worker_failure.empty()) {
            first_worker_failure = "FetchPage: " + handle.status().ToString();
          }
          continue;
        }
        uint8_t* data = handle->data();
        const bool owned =
            op.page >= layout.writable_base &&
            (op.page - layout.writable_base) %
                    static_cast<uint64_t>(options.threads) ==
                static_cast<uint64_t>(t);
        // Only touch page *bytes* we are entitled to: the read-only half
        // (nobody ever stamps it) or this thread's own writable pages
        // (single writer). A non-owned writable page may be mid-StampPage
        // under a shared pin — content-level synchronization is the
        // caller's job in a real buffer manager, so the harness fetches
        // such pages (shared-pin coverage) but must not read their bytes.
        if (op.page < layout.writable_base) {
          // Read-only page: must still carry its initialization stamp.
          const auto [word, version] = StorageEngine::ReadStamp(data);
          if (word != op.page * kStampMix || version != 0) {
            verify_mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (owned && (op.dirty || last_written[t][op.page] > 0)) {
          // A page this thread owns: the stamp must be internally consistent
          // and no newer than what this thread (the only writer) produced.
          const auto [word, version] = StorageEngine::ReadStamp(data);
          if (word != op.page * kStampMix + version ||
              version > last_written[t][op.page]) {
            verify_mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (op.dirty) {
          const uint64_t v = next_version++;
          StorageEngine::StampPage(data, options.page_size, op.page, v);
          handle->MarkDirty();
          last_written[t][op.page] = v;
        }
      }
      pool->FlushSession(*session);
    });
  }
  for (auto& w : workers) w.join();

  result.io_errors = io_errors.load();
  result.verify_mismatches = verify_mismatches.load();
  result.evictions = pool->evictions();
  if (controller != nullptr) {
    result.schedule_points = controller->controller().points_observed();
    result.perturbations = controller->controller().perturbations();
    controller.reset();  // don't perturb the post-run checks or the oracle
  }
  if (injector != nullptr) result.fault_stats = injector->stats();

  // Misses are counted as storage reads: every miss issues at most one read
  // (single-flight shares loads, so reads <= true misses; the oracle is
  // single-threaded, where the two are equal — hence the wide band below).
  uint64_t fetches = 0;
  for (const auto& trace : traces) {
    for (const Op& op : trace) fetches += (op.kind == Op::kFetch) ? 1 : 0;
  }
  result.misses = storage.stats().reads;
  result.hits = fetches >= result.misses ? fetches - result.misses : 0;
  result.hit_ratio = fetches == 0 ? 0.0
                                  : static_cast<double>(result.hits) /
                                        static_cast<double>(fetches);

  // ---- Post-run invariant checks (quiesced) -----------------------------
  if (!first_worker_failure.empty()) {
    fail("worker error: " + first_worker_failure);
  } else if (unexpected_errors.load() > 0) {
    fail("unexpected worker errors: " +
         std::to_string(unexpected_errors.load()));
  }
  if (result.verify_mismatches > 0 && !plan.enabled()) {
    fail("data verification failed " +
         std::to_string(result.verify_mismatches) +
         " times with no faults injected");
  }
  if (injector == nullptr && result.io_errors > 0) {
    fail("I/O errors surfaced with no injector installed");
  }

  const Status integrity = pool->CheckIntegrity();
  if (!integrity.ok()) {
    fail("CheckIntegrity: " + integrity.ToString());
  }

  // Flush everything back. With write faults the first attempts may fail
  // (a failed write-back keeps the page dirty), so retry until clean.
  Status flush;
  for (int attempt = 0; attempt < 200; ++attempt) {
    flush = pool->FlushAll();
    if (flush.ok() || !flush.IsIOError() || !plan.enabled()) break;
  }
  if (!flush.ok()) {
    fail("FlushAll: " + flush.ToString());
  }

  // Lost-update scan: without faults or drops, storage must now hold each
  // owned page's last written version. (Drops legitimately discard dirty
  // contents; faults legitimately tear or fail writes.)
  if (!plan.enabled() && options.drop_probability == 0.0 && flush.ok()) {
    for (uint64_t page = layout.writable_base; page < layout.pages; ++page) {
      uint64_t latest = 0;
      for (int t = 0; t < options.threads; ++t) {
        latest = std::max(latest, last_written[t][page]);
      }
      if (latest == 0) continue;
      if (storage.VerificationWord(page) != page * kStampMix + latest) {
        fail("lost update on page " + std::to_string(page));
        break;
      }
    }
  }

  // Fault accounting: every torn stamp in storage must be covered by an
  // injected torn write (failed writes leave the old, consistent stamp).
  // Re-snapshot the injector first: the FlushAll retries above also go
  // through it, and a tear drawn there is just as legitimate as one drawn
  // mid-run.
  if (injector != nullptr) result.fault_stats = injector->stats();
  {
    uint64_t torn_pages = 0;
    for (uint64_t page = 0; page < layout.pages; ++page) {
      if (!storage.StampConsistent(page)) ++torn_pages;
    }
    if (torn_pages > result.fault_stats.torn_writes) {
      fail("found " + std::to_string(torn_pages) + " torn pages but only " +
           std::to_string(result.fault_stats.torn_writes) +
           " torn writes were injected");
    }
  }

  // Hit-ratio sanity against the serialized oracle. Skipped when faults are
  // on (injected read failures change residency unpredictably) and under
  // mutation (the mutated pool is *supposed* to misbehave).
  if (options.check_hit_ratio_oracle && !plan.enabled() &&
      !options.mutate_skip_victim_revalidation) {
    result.oracle_hit_ratio = OracleHitRatio(options, traces);
    if (result.oracle_hit_ratio < 0) {
      fail("oracle stack failed to construct");
    } else if (std::abs(result.hit_ratio - result.oracle_hit_ratio) >
               options.hit_ratio_tolerance) {
      fail("hit ratio " + std::to_string(result.hit_ratio) +
           " strayed more than " + std::to_string(options.hit_ratio_tolerance) +
           " from serialized oracle " +
           std::to_string(result.oracle_hit_ratio));
    }
  }

  return result;
}

}  // namespace stress
}  // namespace bpw
