// Smoke coverage of the stress harness itself: representative stacks must
// pass the invariant net under schedule perturbation, with storage faults,
// and with page drops. The full matrix runs as the seeded stress_main ctest
// and in the CI stress job; these cases keep the harness honest inside the
// regular gtest suite.
#include <gtest/gtest.h>

#include "stress/stress_runner.h"

namespace bpw {
namespace stress {
namespace {

#if !BPW_SCHEDULE_POINTS

TEST(StressHarnessTest, RequiresSchedulePoints) {
  GTEST_SKIP() << "stress harness requires schedule points; this build has "
                  "-DBPW_SCHEDULE_POINTS=0";
}

#else

StressOptions QuickOptions(uint64_t seed) {
  StressOptions options;
  options.seed = seed;
  options.threads = 4;
  options.ops_per_thread = 4000;
  options.frames = 32;
  options.pages = 128;
  return options;
}

TEST(StressHarnessTest, BpWrapperPassesUnderPerturbation) {
  StressOptions options = QuickOptions(11);
  options.system.policy = "2q";
  options.system.coordinator = "bp-wrapper";
  options.system.batching = true;
  options.system.prefetch = true;
  const StressResult result = RunStress(options);
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_GT(result.schedule_points, 0u);
  EXPECT_GT(result.perturbations, 0u);
  EXPECT_GT(result.evictions, 0u);
  EXPECT_EQ(result.verify_mismatches, 0u);
}

TEST(StressHarnessTest, SerializedAndLockFreePassToo) {
  for (const char* coordinator : {"serialized", "clock-lockfree"}) {
    StressOptions options = QuickOptions(12);
    options.system.policy =
        std::string(coordinator) == "clock-lockfree" ? "clock" : "lru";
    options.system.coordinator = coordinator;
    const StressResult result = RunStress(options);
    EXPECT_TRUE(result.ok) << coordinator << ": " << result.failure;
  }
}

TEST(StressHarnessTest, TinyQueueExercisesLockFallback) {
  StressOptions options = QuickOptions(13);
  options.system.policy = "lru";
  options.system.coordinator = "bp-wrapper";
  options.system.batching = true;
  options.system.queue_size = 4;
  options.system.batch_threshold = 2;
  const StressResult result = RunStress(options);
  EXPECT_TRUE(result.ok) << result.failure;
}

TEST(StressHarnessTest, SurvivesStorageFaults) {
  StressOptions options = QuickOptions(14);
  options.system.policy = "2q";
  options.system.coordinator = "bp-wrapper";
  options.system.batching = true;
  options.faults.read_error_probability = 0.01;
  options.faults.write_error_probability = 0.01;
  options.faults.read_spike_probability = 0.005;
  options.faults.latency_spike_nanos = 20'000;
  options.faults.torn_write_probability = 0.005;
  const StressResult result = RunStress(options);
  EXPECT_TRUE(result.ok) << result.failure;
  // With these rates over ~16k ops the injector must actually have fired.
  EXPECT_GT(result.io_errors, 0u);
  EXPECT_GT(result.fault_stats.read_errors + result.fault_stats.write_errors,
            0u);
}

TEST(StressHarnessTest, SurvivesPageDrops) {
  StressOptions options = QuickOptions(15);
  options.system.policy = "lirs";
  options.system.coordinator = "bp-wrapper";
  options.system.batching = true;
  options.drop_probability = 0.02;
  const StressResult result = RunStress(options);
  EXPECT_TRUE(result.ok) << result.failure;
}

TEST(StressHarnessTest, FailureMessageCarriesSeed) {
  // A negative tolerance makes the oracle band impossible to satisfy, so
  // the run fails deterministically and we can check the message shape.
  StressOptions options = QuickOptions(16);
  options.system.policy = "lru";
  options.system.coordinator = "serialized";
  options.hit_ratio_tolerance = -1.0;  // |Δ| > -1 is always true
  const StressResult result = RunStress(options);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("--seed=16"), std::string::npos)
      << result.failure;
}

#endif  // BPW_SCHEDULE_POINTS

}  // namespace
}  // namespace stress
}  // namespace bpw
