// Mutation self-tests: deliberately break an invariant the library relies on
// and assert the test net actually catches it. A stress harness that never
// fails proves nothing; these tests prove the detectors fire.
//
// Two mutations, one per protection layer:
//  1. BufferPoolConfig::test_skip_victim_revalidation re-opens the
//     select→latch eviction race (a victim can be pinned by a reader while
//     the evictor overwrites its frame). The stress harness must observe the
//     resulting corruption — a stamp mismatch, an integrity violation, or a
//     wedged stale mapping — and report it with the reproduction seed.
//  2. BpWrapperCoordinator::Options::test_skip_commit_before_victim drops
//     the Fig. 4 "commit queued accesses before selecting a victim" rule.
//     Single-threaded equivalence with the serialized coordinator (the
//     paper's central claim, tests/equivalence_test.cc) must break.
#include <gtest/gtest.h>

#include "buffer/buffer_pool.h"
#include "core/bp_wrapper.h"
#include "policy/policy_factory.h"
#include "stress/stress_runner.h"
#include "workload/trace_generator.h"

namespace bpw {
namespace {

// The two perturbation-driven mutation tests need schedule points; the
// single-threaded equivalence mutation below runs either way.
#if !BPW_SCHEDULE_POINTS

TEST(MutationTest, RequiresSchedulePoints) {
  GTEST_SKIP() << "perturbation-driven mutation tests require schedule "
                  "points; this build has -DBPW_SCHEDULE_POINTS=0";
}

#else

stress::StressOptions MutationStressOptions(uint64_t seed) {
  stress::StressOptions options;
  options.seed = seed;
  options.system.policy = "lru";
  options.system.coordinator = "bp-wrapper";
  options.system.batching = true;
  options.threads = 4;
  options.ops_per_thread = 6000;
  // Tiny pool, big page set: almost every access evicts, maximizing trips
  // through the mutated select→latch window.
  options.frames = 16;
  options.pages = 96;
  options.hot_probability = 0.5;
  options.dirty_probability = 0.3;
  // Widen the race window aggressively (the pool.evict_latch point sits
  // exactly in the gap the skipped re-validation is supposed to close).
  options.schedule.sleep_probability = 0.02;
  options.schedule.max_sleep_micros = 200;
  return options;
}

TEST(MutationTest, HarnessCatchesSkippedVictimRevalidation) {
  // The corruption is a race, so probe seeds until one fires; with the
  // widened window and ~24k evicting accesses per run, detection is
  // near-certain per seed (the first seed catches it almost always, so the
  // long tail of the list costs nothing). The list is long because a
  // heavily loaded machine can starve the interleaving for a seed or two.
  uint64_t failing_seed = 0;
  std::string failure;
  for (uint64_t seed : {101, 102, 103, 104, 105, 106, 107, 108, 109, 110}) {
    stress::StressOptions options = MutationStressOptions(seed);
    options.mutate_skip_victim_revalidation = true;
    const stress::StressResult result = stress::RunStress(options);
    if (!result.ok) {
      failing_seed = seed;
      failure = result.failure;
      break;
    }
  }
  ASSERT_NE(failing_seed, 0u)
      << "mutated victim re-validation was not detected by any probed seed; "
         "the stress harness has lost its corruption detector";
  // The failure must tell the user how to reproduce it.
  EXPECT_NE(failure.find("--seed=" + std::to_string(failing_seed)),
            std::string::npos)
      << failure;
}

TEST(MutationTest, UnmutatedControlRunPasses) {
  // Identical workload and perturbation, re-validation intact: must be
  // green, or the previous test is reading noise.
  const stress::StressResult result = stress::RunStress(
      MutationStressOptions(101));
  EXPECT_TRUE(result.ok) << result.failure;
}

// --- Flat-combining handoff bugs (CombiningCoordinator test hooks).
//
// Both seeded bugs break the publication conservation equation
// (published == drained + pending) that CheckIntegrity verifies at
// quiesce, so the stress harness catches them without any dedicated
// detector — which is the point: one invariant covers the whole
// publish/claim/recycle protocol.

stress::StressOptions CombiningStressOptions(uint64_t seed) {
  stress::StressOptions options;
  options.seed = seed;
  options.system.policy = "lru";
  options.system.coordinator = "combining";
  options.system.batching = true;
  // Small queue: frequent publications and adoptions, so a handoff bug
  // corrupts the books within the first few hundred ops.
  options.system.queue_size = 8;
  options.system.batch_threshold = 4;
  options.threads = 4;
  options.ops_per_thread = 6000;
  options.frames = 16;
  options.pages = 96;
  options.hot_probability = 0.5;
  options.dirty_probability = 0.3;
  options.schedule.sleep_probability = 0.02;
  options.schedule.max_sleep_micros = 200;
  return options;
}

void ExpectCombiningMutationCaught(
    void (*arm)(SystemConfig&), const char* what) {
  // Conservation breaks deterministically once the mutated path runs, but
  // probe a few seeds anyway, mirroring the victim-revalidation pattern:
  // the assertion is about the harness, and the harness's contract is
  // "some probed seed fails and prints its reproduction line".
  uint64_t failing_seed = 0;
  std::string failure;
  for (uint64_t seed : {101, 102, 103, 104, 105}) {
    stress::StressOptions options = CombiningStressOptions(seed);
    arm(options.system);
    const stress::StressResult result = stress::RunStress(options);
    if (!result.ok) {
      failing_seed = seed;
      failure = result.failure;
      break;
    }
  }
  ASSERT_NE(failing_seed, 0u)
      << what << " was not detected by any probed seed; the conservation "
      << "invariant has lost its teeth";
  EXPECT_NE(failure.find("--seed=" + std::to_string(failing_seed)),
            std::string::npos)
      << failure;
  EXPECT_NE(failure.find("publication conservation"), std::string::npos)
      << "caught by something other than the conservation invariant: "
      << failure;
}

TEST(MutationTest, HarnessCatchesCombiningDrainTwice) {
  // The lost-handoff bug: a combiner applies a claimed slot twice
  // (drained > published at quiesce).
  ExpectCombiningMutationCaught(
      [](SystemConfig& system) { system.test_combine_drain_twice = true; },
      "combining drain-twice");
}

TEST(MutationTest, HarnessCatchesCombiningClearReadyBeforeApply) {
  // The dropped-batch bug: the ready flag is cleared before the apply, so
  // the whole published batch vanishes (published > drained at quiesce).
  ExpectCombiningMutationCaught(
      [](SystemConfig& system) {
        system.test_combine_clear_ready_before_apply = true;
      },
      "combining clear-ready-before-apply");
}

TEST(MutationTest, UnmutatedCombiningControlRunPasses) {
  const stress::StressResult result = stress::RunStress(
      CombiningStressOptions(101));
  EXPECT_TRUE(result.ok) << result.failure;
}

// --- Sharded-policy bugs (ShardedCoordinator test hooks).
//
// Both seeded bugs break the cross-shard conservation equation (every
// mapped page resident in exactly its home shard) that the coordinator's
// CheckQuiescedInvariants verifies inside CheckIntegrity — one oracle
// covers both the rebalance protocol and the delivery routing.

stress::StressOptions ShardedStressOptions(uint64_t seed) {
  stress::StressOptions options;
  options.seed = seed;
  options.system.policy = "2q";
  options.system.coordinator = "sharded";
  options.system.policy_shards = 4;
  // Tiny ring + fast cadence: commits (and so the mutation's trigger
  // points) every couple of entries.
  options.system.queue_size = 8;
  options.system.rebalance_interval = 2;
  options.threads = 4;
  options.ops_per_thread = 6000;
  // Tiny pool over 4 shards: ~2 resident pages per shard, so victim
  // searches routinely find the home shard empty and borrow — the exact
  // window the stale-shard mutation needs.
  options.frames = 8;
  options.pages = 96;
  options.hot_probability = 0.5;
  options.dirty_probability = 0.3;
  options.schedule.sleep_probability = 0.02;
  options.schedule.max_sleep_micros = 200;
  return options;
}

void ExpectShardedMutationCaught(void (*arm)(SystemConfig&),
                                 const char* what) {
  uint64_t failing_seed = 0;
  std::string failure;
  for (uint64_t seed : {101, 102, 103, 104, 105, 106, 107, 108, 109, 110}) {
    stress::StressOptions options = ShardedStressOptions(seed);
    arm(options.system);
    const stress::StressResult result = stress::RunStress(options);
    if (!result.ok) {
      failing_seed = seed;
      failure = result.failure;
      break;
    }
  }
  ASSERT_NE(failing_seed, 0u)
      << what << " was not detected by any probed seed; the cross-shard "
      << "conservation oracle has lost its teeth";
  EXPECT_NE(failure.find("--seed=" + std::to_string(failing_seed)),
            std::string::npos)
      << failure;
  EXPECT_NE(failure.find("shard conservation"), std::string::npos)
      << "caught by something other than the conservation oracle: "
      << failure;
}

TEST(MutationTest, HarnessCatchesShardDoubleTracking) {
  // The rebalance-without-unregister bug: one page resident in two shards.
  ExpectShardedMutationCaught(
      [](SystemConfig& system) { system.test_shard_double_track = true; },
      "shard double-tracking");
}

TEST(MutationTest, HarnessCatchesShardStaleEviction) {
  // The stale-cached-shard-index bug: a loaded page registered with the
  // shard that supplied its victim frame instead of its home shard.
  ExpectShardedMutationCaught(
      [](SystemConfig& system) { system.test_shard_stale_eviction = true; },
      "shard stale-eviction routing");
}

TEST(MutationTest, UnmutatedShardedControlRunPasses) {
  const stress::StressResult result =
      stress::RunStress(ShardedStressOptions(101));
  EXPECT_TRUE(result.ok) << result.failure;
}

#endif  // BPW_SCHEDULE_POINTS

// Single-threaded hit/miss sequence of a buffer pool, for the equivalence
// mutation below.
std::vector<bool> HitSequence(std::unique_ptr<Coordinator> coordinator,
                              int accesses) {
  constexpr size_t kFrames = 64;
  constexpr size_t kPageSize = 256;
  WorkloadSpec workload;
  workload.name = "zipfian";
  workload.num_pages = 256;
  workload.seed = 7;

  StorageEngine storage(workload.num_pages, kPageSize);
  BufferPoolConfig config;
  config.num_frames = kFrames;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator));
  auto session = pool.CreateSession();
  auto trace = CreateTrace(workload, 0);

  std::vector<bool> hits;
  hits.reserve(accesses);
  for (int i = 0; i < accesses; ++i) {
    const uint64_t before = session->stats().hits;
    auto handle = pool.FetchPage(*session, trace->Next().page);
    EXPECT_TRUE(handle.ok()) << handle.status().ToString();
    hits.push_back(session->stats().hits > before);
  }
  pool.FlushSession(*session);
  return hits;
}

TEST(MutationTest, EquivalenceCatchesSkippedCommitBeforeVictim) {
  constexpr int kAccesses = 20000;
  constexpr size_t kFrames = 64;

  auto make_policy = [] {
    auto policy = CreatePolicy("lru", kFrames);
    EXPECT_TRUE(policy.ok());
    return std::move(policy).value();
  };

  BpWrapperCoordinator::Options faithful;
  faithful.queue_size = 64;
  faithful.batch_threshold = 32;

  BpWrapperCoordinator::Options mutated = faithful;
  mutated.test_skip_commit_before_victim = true;

  const std::vector<bool> base = HitSequence(
      std::make_unique<BpWrapperCoordinator>(make_policy(), faithful),
      kAccesses);
  const std::vector<bool> broken = HitSequence(
      std::make_unique<BpWrapperCoordinator>(make_policy(), mutated),
      kAccesses);

  // Committing after victim selection feeds the policy stale history, so
  // some victim choice must differ and the hit/miss sequence with it. If
  // this ever holds, the equivalence tests have gone blind.
  EXPECT_NE(base, broken)
      << "skipping commit-before-victim did not change behaviour; the "
         "single-thread equivalence property has lost its teeth";
}

}  // namespace
}  // namespace bpw
