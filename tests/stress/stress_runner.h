// Invariant-checking concurrency stress runner.
//
// One RunStress() call drives a (coordinator, policy) stack over a small
// buffer pool with several worker threads of seeded random traffic — hot/cold
// fetches, dirty writes, drops — under an installed ScheduleController (and
// optionally a storage FaultInjector), then checks:
//
//   - every fetched page's stamp matches the page id (no cross-page bytes
//     served to a reader);
//   - BufferPool::CheckIntegrity() after quiescing: page-table/frame-tag
//     agreement, pin counts back to zero, free-list sanity, policy
//     invariants and resident counts;
//   - with writes enabled and faults off: no lost updates (storage holds
//     each page's last flushed version);
//   - with faults on: every stamp inconsistency in storage is covered by an
//     injected write error, torn write, or failed write-back;
//   - hit-ratio sanity: the concurrent run's hit ratio must land within a
//     band of a single-threaded SerializedCoordinator oracle replaying the
//     same access stream.
//
// Every check failure carries the run's seed; re-running with the same
// StressOptions::seed replays the same traces and perturbation decisions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/coordinator_factory.h"
#include "testing/fault_injector.h"
#include "testing/schedule_point.h"

namespace bpw {
namespace stress {

struct StressOptions {
  /// Master seed: derives per-thread traces and schedule perturbations.
  uint64_t seed = 1;
  /// The stack under test.
  SystemConfig system;
  int threads = 4;
  int ops_per_thread = 15000;
  size_t frames = 48;
  uint64_t pages = 192;
  size_t page_size = 512;
  /// Mix: probability an op targets the hot set (pages [0, pages/8)).
  double hot_probability = 0.6;
  /// Probability a fetched page is stamped + marked dirty.
  double dirty_probability = 0.25;
  /// Probability an op is a DropPage instead of a fetch.
  double drop_probability = 0.0;
  /// Install a ScheduleController around the run.
  bool schedule_perturbation = true;
  testing::ScheduleOptions schedule;  // .seed is overridden with `seed`
  /// Storage fault plan (all-zero probabilities = no injector installed).
  testing::FaultPlan faults;          // .seed is overridden with `seed`
  /// Compare the hit ratio against a serialized single-thread oracle.
  bool check_hit_ratio_oracle = true;
  /// Allowed |concurrent − oracle| hit-ratio gap. Concurrency legitimately
  /// perturbs interleaving-sensitive policies, so the band is wide; it
  /// exists to catch wholesale bookkeeping breakage, not ±1% drift.
  double hit_ratio_tolerance = 0.20;
  /// MUTATION KNOB — forwarded to BufferPoolConfig (see buffer_pool.h).
  bool mutate_skip_victim_revalidation = false;
};

struct StressResult {
  bool ok = true;
  /// First failure, including the reproduction seed. Empty when ok.
  std::string failure;

  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t io_errors = 0;          ///< injected failures seen by workers
  uint64_t verify_mismatches = 0;  ///< stamp checks that failed on fetch
  uint64_t schedule_points = 0;    ///< points observed by the controller
  uint64_t perturbations = 0;
  testing::FaultStats fault_stats;
  double hit_ratio = 0.0;
  double oracle_hit_ratio = 0.0;
};

StressResult RunStress(const StressOptions& options);

/// The default stress matrix: every coordinator kind crossed with
/// representative policies (clock-lockfree only pairs with clock/gclock).
/// Each entry is a ready-to-run SystemConfig plus a display name.
struct StressConfig {
  std::string name;
  SystemConfig system;
};
std::vector<StressConfig> DefaultStressMatrix();

}  // namespace stress
}  // namespace bpw
