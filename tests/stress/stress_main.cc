// Standalone stress driver.
//
//   stress_main [--seed=N] [--threads=N] [--ops=N] [--frames=N] [--pages=N]
//               [--filter=substr] [--faults] [--drops=P] [--list]
//
// Runs every (coordinator, policy) stack in DefaultStressMatrix() under
// schedule perturbation (plus storage faults with --faults) and exits
// non-zero on the first invariant violation, printing the seed to re-run
// with. CI runs this with a fixed seed matrix; local debugging re-runs a
// printed seed with --seed=N --filter=<failing stack>.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "stress/stress_runner.h"

namespace {

#if BPW_SCHEDULE_POINTS
bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}
#endif  // BPW_SCHEDULE_POINTS

}  // namespace

int main(int argc, char** argv) {
#if !BPW_SCHEDULE_POINTS
  (void)argc;
  (void)argv;
  std::printf(
      "stress_main: this build has schedule points compiled out "
      "(-DBPW_SCHEDULE_POINTS=0); schedule perturbation needs them. "
      "Skipping.\n");
  return 0;
#else
  uint64_t seed = 1;
  int threads = 4;
  int ops = 15000;
  size_t frames = 48;
  uint64_t pages = 192;
  std::string filter;
  bool faults = false;
  double drops = 0.0;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "seed", &v)) {
      seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "threads", &v)) {
      threads = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "ops", &v)) {
      ops = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "frames", &v)) {
      frames = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "pages", &v)) {
      pages = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "filter", &v)) {
      filter = v;
    } else if (ParseFlag(argv[i], "drops", &v)) {
      drops = std::atof(v.c_str());
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      faults = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      list = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const auto matrix = bpw::stress::DefaultStressMatrix();
  if (list) {
    for (const auto& entry : matrix) std::printf("%s\n", entry.name.c_str());
    return 0;
  }

  int ran = 0;
  for (const auto& entry : matrix) {
    if (!filter.empty() && entry.name.find(filter) == std::string::npos) {
      continue;
    }
    ++ran;
    bpw::stress::StressOptions options;
    options.seed = seed;
    options.system = entry.system;
    options.threads = threads;
    options.ops_per_thread = ops;
    options.frames = frames;
    options.pages = pages;
    options.drop_probability = drops;
    if (faults) {
      options.faults.read_error_probability = 0.002;
      options.faults.write_error_probability = 0.002;
      options.faults.read_spike_probability = 0.001;
      options.faults.write_spike_probability = 0.001;
      options.faults.latency_spike_nanos = 50'000;
      options.faults.torn_write_probability = 0.001;
    }
    const bpw::stress::StressResult result = bpw::stress::RunStress(options);
    if (!result.ok) {
      std::fprintf(stderr, "FAIL %-24s seed=%llu: %s\n", entry.name.c_str(),
                   static_cast<unsigned long long>(seed),
                   result.failure.c_str());
      std::fprintf(stderr,
                   "reproduce: stress_main --seed=%llu --filter=%s%s%s\n",
                   static_cast<unsigned long long>(seed), entry.name.c_str(),
                   faults ? " --faults" : "",
                   drops > 0 ? (" --drops=" + std::to_string(drops)).c_str()
                             : "");
      return 1;
    }
    std::printf(
        "ok   %-24s hits=%llu misses=%llu evict=%llu hr=%.3f oracle=%.3f "
        "points=%llu perturb=%llu io_err=%llu torn=%llu\n",
        entry.name.c_str(), static_cast<unsigned long long>(result.hits),
        static_cast<unsigned long long>(result.misses),
        static_cast<unsigned long long>(result.evictions), result.hit_ratio,
        result.oracle_hit_ratio,
        static_cast<unsigned long long>(result.schedule_points),
        static_cast<unsigned long long>(result.perturbations),
        static_cast<unsigned long long>(result.io_errors),
        static_cast<unsigned long long>(result.fault_stats.torn_writes));
  }
  if (ran == 0) {
    std::fprintf(stderr, "filter %s matched no stacks\n", filter.c_str());
    return 2;
  }
  return 0;
#endif  // BPW_SCHEDULE_POINTS
}
