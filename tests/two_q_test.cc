// Behavioural tests for the full 2Q algorithm: A1in / A1out / Am
// transitions per Johnson & Shasha.
#include <gtest/gtest.h>

#include "policy/two_q.h"

namespace bpw {
namespace {

ReplacementPolicy::EvictableFn All() {
  return [](FrameId) { return true; };
}

TEST(TwoQTest, DefaultParameters) {
  TwoQPolicy q(100);
  q.AssertExclusiveAccess();
  EXPECT_EQ(q.kin(), 25u);
  EXPECT_EQ(q.kout(), 50u);
}

TEST(TwoQTest, NewPagesEnterA1in) {
  TwoQPolicy q(8);
  q.AssertExclusiveAccess();
  q.OnMiss(1, 0);
  q.OnMiss(2, 1);
  EXPECT_EQ(q.a1in_size(), 2u);
  EXPECT_EQ(q.am_size(), 0u);
}

TEST(TwoQTest, HitInA1inDoesNotPromote) {
  // 2Q's correlated-reference filter: re-references while still in A1in
  // do not make a page hot.
  TwoQPolicy q(8);
  q.AssertExclusiveAccess();
  q.OnMiss(1, 0);
  for (int i = 0; i < 10; ++i) q.OnHit(1, 0);
  EXPECT_EQ(q.a1in_size(), 1u);
  EXPECT_EQ(q.am_size(), 0u);
  EXPECT_TRUE(q.CheckInvariants().ok());
}

TEST(TwoQTest, EvictionFromA1inGoesToGhost) {
  TwoQPolicy q(4, TwoQPolicy::Params{.kin = 1, .kout = 4});
  q.AssertExclusiveAccess();
  q.OnMiss(1, 0);
  q.OnMiss(2, 1);  // A1in over target (2 > kin=1)
  auto victim = q.ChooseVictim(All(), 3);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->page, 1u);  // FIFO: oldest of A1in
  EXPECT_TRUE(q.InA1out(1));
}

TEST(TwoQTest, GhostHitPromotesToAm) {
  TwoQPolicy q(4, TwoQPolicy::Params{.kin = 1, .kout = 4});
  q.AssertExclusiveAccess();
  q.OnMiss(1, 0);
  q.OnMiss(2, 1);
  auto victim = q.ChooseVictim(All(), 3);  // evicts 1 into A1out
  ASSERT_TRUE(victim.ok());
  ASSERT_EQ(victim->page, 1u);
  q.OnMiss(3, 0);
  // Page 1 faults back in: it was in A1out, so it becomes hot.
  auto v2 = q.ChooseVictim(All(), 1);
  ASSERT_TRUE(v2.ok());
  q.OnMiss(1, v2->frame);
  EXPECT_EQ(q.am_size(), 1u);
  EXPECT_FALSE(q.InA1out(1));
  EXPECT_TRUE(q.CheckInvariants().ok());
}

TEST(TwoQTest, AmIsLruOrdered) {
  TwoQPolicy q(6, TwoQPolicy::Params{.kin = 1, .kout = 6});
  q.AssertExclusiveAccess();
  // Build three hot pages via the ghost path.
  FrameId next_free = 0;
  auto fault = [&](PageId p) {
    FrameId f;
    if (next_free < 6) {
      f = next_free++;
    } else {
      auto v = q.ChooseVictim(All(), p);
      ASSERT_TRUE(v.ok());
      f = v->frame;
    }
    q.OnMiss(p, f);
  };
  // Fill + churn so pages 1,2,3 pass through A1out and into Am.
  for (PageId p = 1; p <= 3; ++p) fault(p);
  for (PageId p = 10; p <= 15; ++p) fault(p);  // push 1..3 out through ghost
  for (PageId p = 1; p <= 3; ++p) fault(p);    // reload: now hot
  ASSERT_EQ(q.am_size(), 3u);
  // Touch 1 so the Am LRU order is 2, 3, 1.
  FrameId frame_of_1 = kInvalidFrameId;
  for (FrameId f = 0; f < 6; ++f) {
    // Recover frame of page 1 via hits that only land on the right pair.
    q.OnHit(1, f);  // stale-tolerant: only the correct (page,frame) acts
  }
  (void)frame_of_1;
  // Drain Am (kin=1 keeps A1in preferred while it exceeds 1; empty it
  // first). The exact drain order must put page 1 last among {2,3,1}.
  std::vector<PageId> am_victims;
  while (q.resident_count() > 0) {
    auto v = q.ChooseVictim(All(), 999);
    ASSERT_TRUE(v.ok());
    if (v->page <= 3) am_victims.push_back(v->page);
  }
  ASSERT_EQ(am_victims.size(), 3u);
  EXPECT_EQ(am_victims.back(), 1u);
}

TEST(TwoQTest, GhostListBounded) {
  TwoQPolicy q(4, TwoQPolicy::Params{.kin = 1, .kout = 3});
  q.AssertExclusiveAccess();
  FrameId next_free = 0;
  for (PageId p = 0; p < 100; ++p) {
    FrameId f;
    if (next_free < 4) {
      f = next_free++;
    } else {
      auto v = q.ChooseVictim(All(), p);
      ASSERT_TRUE(v.ok());
      f = v->frame;
    }
    q.OnMiss(p, f);
    ASSERT_LE(q.a1out_size(), 3u);
  }
  EXPECT_TRUE(q.CheckInvariants().ok());
}

TEST(TwoQTest, EraseDropsGhostEntryToo) {
  TwoQPolicy q(4, TwoQPolicy::Params{.kin = 1, .kout = 4});
  q.AssertExclusiveAccess();
  q.OnMiss(1, 0);
  q.OnMiss(2, 1);
  auto v = q.ChooseVictim(All(), 3);  // 1 -> ghost
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(q.InA1out(1));
  q.OnErase(1, kInvalidFrameId);  // page 1 is not resident; ghost must go
  EXPECT_FALSE(q.InA1out(1));
  EXPECT_TRUE(q.CheckInvariants().ok());
}

TEST(TwoQTest, ScanResistance) {
  // The signature 2Q property: a one-pass scan must not flush the hot set.
  // Kout must cover the reuse distance of the hot set (48 pages/round of
  // churn here), per the 2Q paper's guidance on sizing the ghost list.
  constexpr size_t kFrames = 32;
  TwoQPolicy q(kFrames, TwoQPolicy::Params{.kin = 8, .kout = 64});
  q.AssertExclusiveAccess();
  FrameId next_free = 0;
  auto access = [&](PageId p) {
    // Simple residency emulation via IsResident (test-scale only).
    if (q.IsResident(p)) {
      for (FrameId f = 0; f < kFrames; ++f) q.OnHit(p, f);
      return;
    }
    FrameId f;
    if (next_free < kFrames) {
      f = next_free++;
    } else {
      auto v = q.ChooseVictim(All(), p);
      ASSERT_TRUE(v.ok());
      f = v->frame;
    }
    q.OnMiss(p, f);
  };
  // Hot set: pages 0..7, established through ghost reloads.
  for (int round = 0; round < 6; ++round) {
    for (PageId p = 0; p < 8; ++p) access(p);
    const PageId churn_base = 100 + static_cast<PageId>(round) * 40;
    for (PageId p = churn_base; p < churn_base + 40; ++p) {
      access(p);  // cold churn, forces hot pages through A1out
    }
  }
  for (PageId p = 0; p < 8; ++p) access(p);  // ensure hot again
  ASSERT_GT(q.am_size(), 0u);
  // One giant scan of never-reused pages.
  for (PageId p = 10000; p < 10000 + 200; ++p) access(p);
  // The hot set should have survived in Am.
  int survivors = 0;
  for (PageId p = 0; p < 8; ++p) survivors += q.IsResident(p) ? 1 : 0;
  EXPECT_GE(survivors, 4) << "scan flushed the hot set";
}

}  // namespace
}  // namespace bpw
