// Tests for trace capture and replay.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <string>

#include "workload/trace_file.h"

namespace bpw {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceFileTest, RoundTripPreservesEveryField) {
  const std::string path = TempPath("roundtrip.bpwt");
  TraceWriter writer;
  ASSERT_TRUE(writer.Open(path, 1000).ok());
  std::vector<PageAccess> original;
  for (int i = 0; i < 500; ++i) {
    PageAccess access;
    access.page = static_cast<PageId>(i * 7 % 1000);
    access.is_write = i % 3 == 0;
    access.begins_transaction = i % 10 == 0;
    original.push_back(access);
    ASSERT_TRUE(writer.Append(access).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  auto loaded = TraceFile::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_pages(), 1000u);
  ASSERT_EQ(loaded->accesses().size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->accesses()[i].page, original[i].page);
    EXPECT_EQ(loaded->accesses()[i].is_write, original[i].is_write);
    EXPECT_EQ(loaded->accesses()[i].begins_transaction,
              original[i].begins_transaction);
  }
  std::remove(path.c_str());
}

TEST(TraceFileTest, ReplayLoopsAndReportsWrap) {
  const std::string path = TempPath("loop.bpwt");
  TraceWriter writer;
  ASSERT_TRUE(writer.Open(path, 10).ok());
  for (PageId p = 0; p < 5; ++p) {
    ASSERT_TRUE(writer.Append(PageAccess{p, false, p == 0}).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  auto loaded = TraceFile::Load(path);
  ASSERT_TRUE(loaded.ok());
  ReplayTrace replay(loaded.value());
  EXPECT_EQ(replay.footprint_pages(), 10u);
  for (int lap = 0; lap < 3; ++lap) {
    for (PageId p = 0; p < 5; ++p) {
      const PageAccess access = replay.Next();
      EXPECT_EQ(access.page, p);
      EXPECT_EQ(access.begins_transaction, p == 0);
    }
  }
  EXPECT_TRUE(replay.wrapped());
  std::remove(path.c_str());
}

TEST(TraceFileTest, LoadRejectsMissingFile) {
  auto loaded = TraceFile::Load(TempPath("does-not-exist.bpwt"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
}

TEST(TraceFileTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("badmagic.bpwt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = "this is not a trace file at all";
  std::fwrite(junk, sizeof(junk), 1, f);
  std::fclose(f);
  auto loaded = TraceFile::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  std::remove(path.c_str());
}

TEST(TraceFileTest, LoadRejectsTruncatedBody) {
  const std::string path = TempPath("truncated.bpwt");
  TraceWriter writer;
  ASSERT_TRUE(writer.Open(path, 10).ok());
  for (PageId p = 0; p < 20; ++p) {
    ASSERT_TRUE(writer.Append(PageAccess{p, false, false}).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  // Chop the last few bytes off.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 4), 0);
  auto loaded = TraceFile::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  std::remove(path.c_str());
}

TEST(TraceFileTest, EmptyTraceRejected) {
  const std::string path = TempPath("empty.bpwt");
  TraceWriter writer;
  ASSERT_TRUE(writer.Open(path, 10).ok());
  ASSERT_TRUE(writer.Close().ok());
  auto loaded = TraceFile::Load(path);
  ASSERT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(TraceFileTest, WriterStateMachine) {
  TraceWriter writer;
  EXPECT_FALSE(writer.Append(PageAccess{}).ok()) << "append before open";
  EXPECT_FALSE(writer.Close().ok()) << "close before open";
  const std::string path = TempPath("statemachine.bpwt");
  ASSERT_TRUE(writer.Open(path, 1).ok());
  EXPECT_FALSE(writer.Open(path, 1).ok()) << "double open";
  ASSERT_TRUE(writer.Append(PageAccess{0, false, true}).ok());
  ASSERT_TRUE(writer.Close().ok());
  std::remove(path.c_str());
}

TEST(TraceFileTest, RecordTraceCapturesWorkload) {
  const std::string path = TempPath("dbt2.bpwt");
  WorkloadSpec spec;
  spec.name = "dbt2";
  spec.num_pages = 1024;
  spec.seed = 9;
  ASSERT_TRUE(RecordTrace(spec, 2000, path).ok());
  auto loaded = TraceFile::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->accesses().size(), 2000u);
  // The replay must match a fresh generator with the same seed, exactly.
  auto fresh = CreateTrace(spec, 0);
  ReplayTrace replay(loaded.value());
  for (int i = 0; i < 2000; ++i) {
    const PageAccess a = fresh->Next();
    const PageAccess b = replay.Next();
    ASSERT_EQ(a.page, b.page) << "at " << i;
    ASSERT_EQ(a.is_write, b.is_write);
    ASSERT_EQ(a.begins_transaction, b.begins_transaction);
  }
  std::remove(path.c_str());
}

TEST(TraceFileTest, RecordTraceRejectsUnknownWorkload) {
  WorkloadSpec spec;
  spec.name = "nope";
  EXPECT_FALSE(RecordTrace(spec, 10, TempPath("x.bpwt")).ok());
}

}  // namespace
}  // namespace bpw
