// Multi-threaded stress tests of the buffer pool: integrity under
// concurrent hits, misses, evictions, dirty write-backs, and pins — for
// each coordinator kind.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "core/coordinator_factory.h"
#include "util/random.h"

namespace bpw {
namespace {

constexpr size_t kPageSize = 512;

struct StressParams {
  std::string system;   // paper system name
  size_t num_frames;
  uint64_t num_pages;
};

class PoolStressTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PoolStressTest, ConcurrentChurnKeepsIntegrity) {
  auto system = PaperSystemConfig(GetParam());
  ASSERT_TRUE(system.ok());

  constexpr size_t kFrames = 64;
  constexpr uint64_t kPages = 256;
  StorageEngine storage(kPages, kPageSize);
  auto coordinator = CreateCoordinator(system.value(), kFrames);
  ASSERT_TRUE(coordinator.ok());
  BufferPoolConfig config;
  config.num_frames = kFrames;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator).value());

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 8000;
  std::atomic<uint64_t> total_errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &total_errors, t] {
      auto session = pool.CreateSession();
      Random rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const PageId page = rng.Bernoulli(0.6) ? rng.Uniform(32)
                                               : rng.Uniform(kPages);
        auto handle = pool.FetchPage(*session, page);
        if (!handle.ok()) {
          total_errors.fetch_add(1);
          continue;
        }
        // Verify the frame really holds this page's data.
        auto [word, version] = StorageEngine::ReadStamp(handle.value().data());
        if (word != version + page * 0x9E3779B97F4A7C15ULL) {
          total_errors.fetch_add(1);
        }
        if (rng.Bernoulli(0.2)) handle.value().MarkDirty();
      }
      pool.FlushSession(*session);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(total_errors.load(), 0u);
  auto session = pool.CreateSession();
  EXPECT_TRUE(pool.CheckIntegrity().ok())
      << pool.CheckIntegrity().ToString();
}

TEST_P(PoolStressTest, DirtyWritesAreNeverLost) {
  // Each page is written by exactly one thread with ascending versions;
  // after a full flush, storage must hold each page's latest version.
  auto system = PaperSystemConfig(GetParam());
  ASSERT_TRUE(system.ok());

  constexpr size_t kFrames = 32;
  constexpr uint64_t kPages = 128;
  StorageEngine storage(kPages, kPageSize);
  auto coordinator = CreateCoordinator(system.value(), kFrames);
  ASSERT_TRUE(coordinator.ok());
  BufferPoolConfig config;
  config.num_frames = kFrames;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator).value());

  constexpr int kThreads = 4;
  constexpr uint64_t kRounds = 400;
  std::vector<std::vector<uint64_t>> latest(
      kThreads, std::vector<uint64_t>(kPages / kThreads, 0));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = pool.CreateSession();
      Random rng(77 + t);
      const PageId base = static_cast<PageId>(t) * (kPages / kThreads);
      for (uint64_t round = 1; round <= kRounds; ++round) {
        const uint64_t idx = rng.Uniform(kPages / kThreads);
        const PageId page = base + idx;
        auto handle = pool.FetchPage(*session, page);
        ASSERT_TRUE(handle.ok());
        StorageEngine::StampPage(handle.value().data(), kPageSize, page,
                                 round);
        handle.value().MarkDirty();
        latest[t][idx] = round;
      }
      pool.FlushSession(*session);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(pool.FlushAll().ok());
  for (int t = 0; t < kThreads; ++t) {
    const PageId base = static_cast<PageId>(t) * (kPages / kThreads);
    for (uint64_t idx = 0; idx < kPages / kThreads; ++idx) {
      if (latest[t][idx] == 0) continue;
      const PageId page = base + idx;
      EXPECT_EQ(storage.VerificationWord(page),
                page * 0x9E3779B97F4A7C15ULL + latest[t][idx])
          << "lost update on page " << page;
    }
  }
}

TEST_P(PoolStressTest, SameHotPageFromAllThreads) {
  auto system = PaperSystemConfig(GetParam());
  ASSERT_TRUE(system.ok());
  constexpr size_t kFrames = 4;
  StorageEngine storage(64, kPageSize);
  auto coordinator = CreateCoordinator(system.value(), kFrames);
  ASSERT_TRUE(coordinator.ok());
  BufferPoolConfig config;
  config.num_frames = kFrames;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator).value());

  std::vector<std::thread> threads;
  std::atomic<uint64_t> errors{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool, &errors] {
      auto session = pool.CreateSession();
      for (int i = 0; i < 5000; ++i) {
        auto handle = pool.FetchPage(*session, 7);
        if (!handle.ok()) errors.fetch_add(1);
      }
      pool.FlushSession(*session);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_TRUE(pool.CheckIntegrity().ok());
}

INSTANTIATE_TEST_SUITE_P(AllSystems, PoolStressTest,
                         ::testing::Values("pgClock", "pg2Q", "pgPre",
                                           "pgBat", "pgBatPre"));

TEST(PoolConcurrencyTest, SingleFlightLoadsOncePerPage) {
  // Many threads fault the same cold page simultaneously; storage must see
  // exactly one read.
  StorageEngine storage(16, kPageSize);
  SystemConfig system;
  system.policy = "lru";
  system.coordinator = "serialized";
  auto coordinator = CreateCoordinator(system, 8);
  ASSERT_TRUE(coordinator.ok());
  BufferPoolConfig config;
  config.num_frames = 8;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator).value());

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto session = pool.CreateSession();
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      auto handle = pool.FetchPage(*session, 3);
      EXPECT_TRUE(handle.ok());
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (auto& th : threads) th.join();
  EXPECT_EQ(storage.stats().reads, 1u)
      << "duplicate I/O for concurrently-faulted page";
}

}  // namespace
}  // namespace bpw
