// Engine tests for the shared static-analysis library (src/analysis/):
// the lexer, the scope graph, the lock-order graph, and the atomics
// discipline checker. These pin the *supported shapes* — the scope-graph
// header promises the model degrades by omission, and these tests are the
// contract for what must not be omitted.
//
// The seeded-violation corpus under tests/static/ covers the end-to-end
// CLI behaviour; here we drive the library directly on small sources.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/atomics_check.h"
#include "analysis/call_graph.h"
#include "analysis/effects.h"
#include "analysis/hold_cost.h"
#include "analysis/lexer.h"
#include "analysis/lock_graph.h"
#include "analysis/scope_graph.h"

namespace bpw {
namespace analysis {
namespace {

// ---------------------------------------------------------------- helpers

TreeModel BuildTree(const std::vector<std::pair<std::string, std::string>>&
                        path_and_source) {
  TreeModel tree;
  for (const auto& ps : path_and_source) {
    tree.AddFile(BuildFileModel(ps.first, ps.second));
  }
  return tree;
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const auto& f : findings) rules.push_back(f.rule);
  std::sort(rules.begin(), rules.end());
  return rules;
}

std::string Dump(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + " [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

const TypeDecl* FindType(const TreeModel& tree, const std::string& name) {
  auto it = tree.types_by_name.find(name);
  return it == tree.types_by_name.end() ? nullptr : it->second;
}

const FieldDecl* FindField(const TypeDecl* type, const std::string& name) {
  if (type == nullptr) return nullptr;
  for (const auto& f : type->fields) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const FunctionDecl* FindFunction(const FileModel& file,
                                 const std::string& qualified) {
  for (const auto& fn : file.functions) {
    if (fn.qualified == qualified) return &fn;
  }
  return nullptr;
}

// ------------------------------------------------------------------ lexer

TEST(LexerTest, RawStringContentsDoNotLeakIntoCleanedLines) {
  // A raw string holding comment markers, quotes, and braces must lex as
  // one token and leave the cleaned line free of its contents — otherwise
  // every checker downstream would "see" phantom code.
  LexedSource lex = Lex(
      "const char* q = R\"sql(SELECT \"a\" // not a comment { )\" )sql\";\n"
      "int after = 1;\n");
  ASSERT_GE(lex.cleaned_lines.size(), 2u);
  EXPECT_EQ(lex.cleaned_lines[0].find("SELECT"), std::string::npos);
  EXPECT_EQ(lex.cleaned_lines[0].find("//"), std::string::npos);
  EXPECT_EQ(lex.cleaned_lines[1].find("after"), 4u);
  // Exactly one string token, carrying the raw contents.
  int strings = 0;
  for (const auto& t : lex.tokens) {
    if (t.kind == TokKind::kString) {
      ++strings;
      EXPECT_NE(t.text.find("SELECT"), std::string::npos);
      EXPECT_EQ(t.line, 1);
    }
  }
  EXPECT_EQ(strings, 1);
}

TEST(LexerTest, LineContinuationMacroKeepsPhysicalLineNumbers) {
  // A backslash-continued #define spans physical lines; the directive
  // state must swallow the continuation so line 3 is real code again and
  // tokens there report line 3.
  LexedSource lex = Lex(
      "#define WIDE(x) \\\n"
      "  do { (x) } while (0)\n"
      "int live = 1;\n");
  ASSERT_GE(lex.cleaned_lines.size(), 3u);
  EXPECT_EQ(lex.cleaned_lines[1].find("while"), std::string::npos)
      << "continuation body leaked into cleaned lines";
  bool saw_live = false;
  for (const auto& t : lex.tokens) {
    if (t.kind == TokKind::kIdent && t.text == "live") {
      saw_live = true;
      EXPECT_EQ(t.line, 3);
    }
  }
  EXPECT_TRUE(saw_live);
}

TEST(LexerTest, DigitSeparatorsLexAsOneNumber) {
  LexedSource lex = Lex("long n = 1'000'000;\n");
  bool saw = false;
  for (const auto& t : lex.tokens) {
    if (t.kind == TokKind::kNumber) {
      saw = true;
      EXPECT_EQ(t.text, "1'000'000");
    }
  }
  EXPECT_TRUE(saw);
}

TEST(LexerTest, UdlSuffixStaysGluedToItsLiteral) {
  LexedSource lex = Lex("auto d = 10ms; auto s = \"abc\"sv;\n");
  for (const auto& t : lex.tokens) {
    // Neither suffix may surface as a spurious identifier: `ms` glued to
    // the number is one pp-number, `sv` after the quote belongs to the
    // string (identifiers named ms/sv elsewhere would be fine, but these
    // are literal suffixes).
    EXPECT_FALSE(t.kind == TokKind::kIdent && (t.text == "ms" || t.text == "sv"))
        << t.text;
    if (t.kind == TokKind::kNumber && t.text.rfind("10", 0) == 0) {
      EXPECT_EQ(t.text, "10ms");
    }
  }
}

TEST(LexerTest, SpliceInsideAnIdentifierJoinsTheHalves) {
  LexedSource lex = Lex("int contention_co\\\nunter = 0;\n");
  bool saw = false;
  for (const auto& t : lex.tokens) {
    if (t.kind == TokKind::kIdent && t.text == "contention_counter") saw = true;
    EXPECT_NE(t.text, "contention_co");
    EXPECT_NE(t.text, "unter");
  }
  EXPECT_TRUE(saw);
}

TEST(LexerTest, CharLiteralWithEscapedQuoteDoesNotDerailState) {
  LexedSource lex = Lex("char c = '\\''; int tail = 2;\n");
  bool saw_tail = false;
  for (const auto& t : lex.tokens) {
    if (t.kind == TokKind::kIdent && t.text == "tail") saw_tail = true;
  }
  EXPECT_TRUE(saw_tail) << "lexer stayed inside the char literal";
}

TEST(LexerTest, AllowCommentsAttachToLineAndFile) {
  LexedSource lex = Lex(
      "// bpw-lint-allow-file(raw-mutex)\n"
      "int a = 0;\n"
      "int b = 1;  // bpw-lint-allow(trylock-unchecked)\n"
      "int c = 2;\n"
      "int d = 3;\n");
  EXPECT_TRUE(lex.Allowed(4, "raw-mutex")) << "file allow covers all lines";
  // Line allow covers its own line and the next (0-based indices).
  EXPECT_TRUE(lex.Allowed(2, "trylock-unchecked"));
  EXPECT_TRUE(lex.Allowed(3, "trylock-unchecked"));
  EXPECT_FALSE(lex.Allowed(4, "trylock-unchecked"));
  EXPECT_FALSE(lex.Allowed(2, "raw-spinlock"));
  // Both allows are recorded as audit sites.
  ASSERT_EQ(lex.allow_sites.size(), 2u);
  EXPECT_TRUE(lex.allow_sites[0].file_scope);
  EXPECT_EQ(lex.allow_sites[0].rule, "raw-mutex");
  EXPECT_FALSE(lex.allow_sites[1].file_scope);
  EXPECT_EQ(lex.allow_sites[1].rule, "trylock-unchecked");
}

TEST(LexerTest, StringTokensCarryAnnotationArguments) {
  // BPW_LOCK_CLASS("shard") only works if the literal's contents survive
  // on the token — the lock graph names the class from it.
  LexedSource lex = Lex("ContentionLock l BPW_LOCK_CLASS(\"shard\");\n");
  bool saw = false;
  for (const auto& t : lex.tokens) {
    if (t.kind == TokKind::kString) {
      saw = true;
      EXPECT_EQ(t.text, "shard");
    }
  }
  EXPECT_TRUE(saw);
  // ...while the cleaned line blanks it, so greps never match literals.
  EXPECT_EQ(lex.cleaned_lines[0].find("shard"), std::string::npos);
}

// ------------------------------------------------------------ scope graph

TEST(ScopeGraphTest, FieldAnnotationsAndArrayDeclaratorNames) {
  TreeModel tree = BuildTree({{"src/x.h", R"cpp(
struct Histogram {
  static constexpr int kNumBuckets = 8;
};
struct Cell {
  std::atomic<unsigned long> hits_{0} BPW_RELAXED_OK("stats counter");
  std::atomic<unsigned> stamp{0} BPW_SEQLOCK_STAMP;
  std::atomic<unsigned long> page{0} BPW_PUBLISHED_BY(stamp);
  std::atomic<unsigned long> buckets[Histogram::kNumBuckets] = {};
};
)cpp"}});
  const TypeDecl* cell = FindType(tree, "Cell");
  ASSERT_NE(cell, nullptr);
  const FieldDecl* hits = FindField(cell, "hits_");
  ASSERT_NE(hits, nullptr);
  ASSERT_TRUE(hits->HasAnnotation("BPW_RELAXED_OK"));
  EXPECT_EQ(hits->FindAnnotation("BPW_RELAXED_OK")->args, "\"stats counter\"");
  const FieldDecl* page = FindField(cell, "page");
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->FindAnnotation("BPW_PUBLISHED_BY")->args, "stamp");
  // The array field is named by its declarator, not by the identifier
  // inside the subscript.
  EXPECT_NE(FindField(cell, "buckets"), nullptr);
  EXPECT_EQ(FindField(cell, "kNumBuckets"), nullptr)
      << "subscript contents mistaken for the field name";
}

TEST(ScopeGraphTest, LocalsPlainTemplatedAndRangeForAliases) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Node { bool resident; };
struct Pool {
  std::vector<Node> nodes_;
  void Sweep() {
    unsigned long page = 7;
    std::atomic<int> phase{0};
    Node* head = nullptr;
    for (auto& n : nodes_) {
      (void)n.resident;
    }
    (void)page;
    (void)head;
  }
};
)cpp"}});
  const FunctionDecl* sweep = FindFunction(tree.files[0], "Pool::Sweep");
  ASSERT_NE(sweep, nullptr);
  // Plain value local, template-typed local, pointer local.
  ASSERT_EQ(sweep->local_types.count("page"), 1u);
  ASSERT_EQ(sweep->local_types.count("phase"), 1u);
  EXPECT_EQ(sweep->local_types.at("phase"), "atomic");
  ASSERT_EQ(sweep->local_types.count("head"), 1u);
  EXPECT_EQ(sweep->local_types.at("head"), "Node");
  // Keywords never become local "types".
  EXPECT_EQ(sweep->local_types.count("resident"), 0u);
  // Range-for element aliases the container member.
  ASSERT_EQ(sweep->local_aliases.count("n"), 1u);
  EXPECT_EQ(sweep->local_aliases.at("n"), "nodes_");
}

TEST(ScopeGraphTest, ResolveMemberPrefersEnclosingAndNeverOuterToNested) {
  TreeModel tree = BuildTree({{"src/x.h", R"cpp(
struct Outer {
  struct Inner {
    unsigned long page = 0;
  };
  unsigned long count = 0;
};
struct Elsewhere {
  unsigned long page = 0;
};
)cpp"}});
  // Nested scope sees the outer field, and its own field first.
  EXPECT_NE(tree.ResolveMember("Outer::Inner", "count"), nullptr);
  const FieldDecl* inner_page = tree.ResolveMember("Outer::Inner", "page");
  ASSERT_NE(inner_page, nullptr);
  EXPECT_EQ(inner_page->owner, "Outer::Inner");
  // A bare name in an Outer method must NOT resolve to a non-static field
  // of a nested type (there is no object to read it from), and with the
  // name declared in more than one type the tree-wide fallback is
  // ambiguous, so resolution fails instead of guessing.
  EXPECT_EQ(tree.ResolveMember("Outer", "page"), nullptr);
}

TEST(ScopeGraphTest, HeaderAnnotationsJoinCcBodiesByQualifiedName) {
  TreeModel tree = BuildTree({
      {"src/x.h", R"cpp(
struct Pool {
  Mutex mu_;
  void DrainLocked() BPW_REQUIRES(mu_);
};
)cpp"},
      {"src/x.cc", R"cpp(
void Pool::DrainLocked() {}
)cpp"},
  });
  auto it = tree.function_annotations.find("Pool::DrainLocked");
  ASSERT_NE(it, tree.function_annotations.end());
  ASSERT_EQ(it->second.size(), 1u);
  EXPECT_EQ(it->second[0].name, "BPW_REQUIRES");
  EXPECT_EQ(it->second[0].args, "mu_");
  const FunctionDecl* def = FindFunction(tree.files[1], "Pool::DrainLocked");
  ASSERT_NE(def, nullptr);
  EXPECT_TRUE(def->has_body);
}

// ------------------------------------------------------------- lock graph

TEST(LockGraphTest, InconsistentOrderAcrossFunctionsIsACycle) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Pool {
  Mutex map_mu_;
  Mutex free_mu_;
  void A() {
    MutexGuard m(map_mu_);
    MutexGuard f(free_mu_);
  }
  void B() {
    MutexGuard f(free_mu_);
    MutexGuard m(map_mu_);
  }
};
)cpp"}});
  LockGraph graph = BuildLockGraph(tree);
  ASSERT_EQ(graph.locks.size(), 2u);
  EXPECT_EQ(Rules(graph.findings),
            std::vector<std::string>{"lock-order-cycle"})
      << Dump(graph.findings);
}

TEST(LockGraphTest, ConsistentOrderIsAcyclicAndEdgesMaterialize) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Pool {
  Mutex map_mu_;
  Mutex free_mu_;
  void A() {
    MutexGuard m(map_mu_);
    MutexGuard f(free_mu_);
  }
};
)cpp"}});
  LockGraph graph = BuildLockGraph(tree);
  EXPECT_TRUE(graph.findings.empty()) << Dump(graph.findings);
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.edges[0].from_class, "Pool::map_mu_");
  EXPECT_EQ(graph.edges[0].to_class, "Pool::free_mu_");
  EXPECT_FALSE(graph.edges[0].try_edge);
}

TEST(LockGraphTest, TryEdgesAreWhitelistedInTheAcyclicityProof) {
  // Same-class neighbor probe under a held shard lock: a blocking edge
  // would be an instant cycle, a TryLock-bounded edge is sanctioned.
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Shard {
  ContentionLock lock BPW_LOCK_CLASS("shard");
};
struct Set {
  bool Probe(Shard& a, Shard& b) {
    ContentionLockGuard g(a.lock);
    if (b.lock.TryLock()) {
      b.lock.Unlock();
      return true;
    }
    return false;
  }
};
)cpp"}});
  LockGraph graph = BuildLockGraph(tree);
  EXPECT_TRUE(graph.findings.empty()) << Dump(graph.findings);
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_TRUE(graph.edges[0].try_edge);
  EXPECT_EQ(graph.edges[0].from_class, "shard");
  EXPECT_EQ(graph.edges[0].to_class, "shard");
  // The DOT export renders the bounded probe dashed.
  const std::string dot = LockGraphToDot(graph);
  EXPECT_NE(dot.find("dashed"), std::string::npos);
  EXPECT_NE(dot.find("\"shard\""), std::string::npos);
}

TEST(LockGraphTest, LeafLockMustNotBlockOnAnything) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Shard {
  ContentionLock lock BPW_LOCK_CLASS("shard") BPW_LOCK_LEAF;
};
struct Set {
  Mutex registry_mu_;
  void Escalate(Shard& s) {
    ContentionLockGuard g(s.lock);
    MutexGuard r(registry_mu_);
  }
};
)cpp"}});
  LockGraph graph = BuildLockGraph(tree);
  EXPECT_EQ(Rules(graph.findings),
            std::vector<std::string>{"leaf-lock-acquires"})
      << Dump(graph.findings);
  // Leaf classes render with a doubled border.
  EXPECT_NE(LockGraphToDot(graph).find("peripheries=2"), std::string::npos);
}

TEST(LockGraphTest, RequiresAnnotationSeedsTheHeldSet) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Pool {
  Mutex outer_mu_;
  Mutex inner_mu_;
  void TakeInnerLocked() BPW_REQUIRES(outer_mu_) {
    MutexGuard g(inner_mu_);
  }
  void Reverse() {
    MutexGuard i(inner_mu_);
    MutexGuard o(outer_mu_);
  }
};
)cpp"}});
  // TakeInnerLocked contributes outer->inner purely via its REQUIRES
  // annotation; Reverse's inner->outer completes the cycle.
  LockGraph graph = BuildLockGraph(tree);
  EXPECT_EQ(Rules(graph.findings),
            std::vector<std::string>{"lock-order-cycle"})
      << Dump(graph.findings);
}

// ---------------------------------------------------------------- atomics

AtomicsOptions LibEverywhere() {
  AtomicsOptions opts;
  opts.all_files_lib = true;
  return opts;
}

TEST(AtomicsTest, RelaxedUnannotatedFiresAndAnnotationsSilenceIt) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Counters {
  std::atomic<unsigned long> bare_{0};
  std::atomic<unsigned long> ok_{0} BPW_RELAXED_OK("stats counter");
  void Bump() {
    bare_.fetch_add(1, std::memory_order_relaxed);
    ok_.fetch_add(1, std::memory_order_relaxed);
  }
};
)cpp"}});
  auto findings = CheckAtomics(tree, LibEverywhere());
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "relaxed-unannotated");
  EXPECT_NE(findings[0].message.find("bare_"), std::string::npos);
}

TEST(AtomicsTest, StandaloneSiteStatementCoversItsLineAndTheNext) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Counters {
  std::atomic<unsigned long> bare_{0};
  void Reset() {
    BPW_RELAXED_OK("all writers joined before reset");
    bare_.store(0, std::memory_order_relaxed);
  }
  void Bump() {
    bare_.fetch_add(1, std::memory_order_relaxed);
  }
};
)cpp"}});
  auto findings = CheckAtomics(tree, LibEverywhere());
  // Reset's store is whitelisted by the site statement; Bump still fires.
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "relaxed-unannotated");
}

TEST(AtomicsTest, LocalAtomicsAreOutOfScope) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Driver {
  void Run() {
    std::atomic<int> phase{0};
    phase.store(1, std::memory_order_relaxed);
  }
};
)cpp"}});
  auto findings = CheckAtomics(tree, LibEverywhere());
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(AtomicsTest, PublicationStoreWithoutReleaseOnTheStamp) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Slot {
  std::atomic<unsigned> ready{0} BPW_RELAXED_OK("flag; see publish");
  std::atomic<unsigned long> payload{0} BPW_PUBLISHED_BY(ready);
  void BadPublish(unsigned long v) {
    payload.store(v, std::memory_order_relaxed);
    ready.store(1, std::memory_order_relaxed);
  }
  void GoodPublish(unsigned long v) {
    payload.store(v, std::memory_order_relaxed);
    ready.store(1, std::memory_order_release);
  }
};
)cpp"}});
  auto findings = CheckAtomics(tree, LibEverywhere());
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "relaxed-publication-store");
}

TEST(AtomicsTest, PublicationReadWithoutAcquireOnTheStamp) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Slot {
  std::atomic<unsigned> ready{0} BPW_RELAXED_OK("flag; see publish");
  std::atomic<unsigned long> payload{0} BPW_PUBLISHED_BY(ready);
  unsigned long BadConsume() {
    if (ready.load(std::memory_order_relaxed) == 0) return 0;
    return payload.load(std::memory_order_relaxed);
  }
  unsigned long GoodConsume() {
    if (ready.load(std::memory_order_acquire) == 0) return 0;
    return payload.load(std::memory_order_relaxed);
  }
};
)cpp"}});
  auto findings = CheckAtomics(tree, LibEverywhere());
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "unordered-publication-read");
}

TEST(AtomicsTest, TornSeqlockReadNeedsTwoLoadsAndAnOddTest) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Slot {
  std::atomic<unsigned> version{0} BPW_SEQLOCK_STAMP;
  std::atomic<unsigned long> value{0} BPW_PUBLISHED_BY(version);
  unsigned long TornRead() {
    if ((version.load(std::memory_order_acquire) & 1u) != 0) return 0;
    return value.load(std::memory_order_relaxed);
  }
  unsigned long GoodRead() {
    for (;;) {
      const unsigned v0 = version.load(std::memory_order_acquire);
      if ((v0 & 1u) != 0) continue;
      const unsigned long out = value.load(std::memory_order_relaxed);
      if (version.load(std::memory_order_acquire) == v0) return out;
    }
  }
};
)cpp"}});
  auto findings = CheckAtomics(tree, LibEverywhere());
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "torn-seqlock-read");
  EXPECT_NE(findings[0].message.find("TornRead"), std::string::npos);
}

TEST(AtomicsTest, OddTestAcceptsIntegerSuffixes) {
  // `& 1UL` is the same odd-test as `& 1` — the suffix must not break the
  // seqlock shape detection.
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Slot {
  std::atomic<unsigned> version{0} BPW_SEQLOCK_STAMP;
  std::atomic<unsigned long> value{0} BPW_PUBLISHED_BY(version);
  unsigned long Read() {
    for (;;) {
      const unsigned v0 = version.load(std::memory_order_acquire);
      if ((v0 & 1UL) != 0) continue;
      const unsigned long out = value.load(std::memory_order_relaxed);
      if (version.load(std::memory_order_acquire) == v0) return out;
    }
  }
};
)cpp"}});
  auto findings = CheckAtomics(tree, LibEverywhere());
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(AtomicsTest, McAccessRequiresAnAnnotatedObject) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Target {
  Mutex mu_;
  unsigned long bare_word = 0;
  unsigned long guarded_word BPW_GUARDED_BY(mu_) = 0;
  void Touch() {
    BPW_MC_ACCESS_WRITE("t.bare", &bare_word);
    BPW_MC_ACCESS_WRITE("t.guarded", &guarded_word);
  }
};
)cpp"}});
  auto findings = CheckAtomics(tree, LibEverywhere());
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "mc-access-unannotated");
  EXPECT_NE(findings[0].message.find("bare_word"), std::string::npos);
}

TEST(AtomicsTest, PublishedByMustNameAFieldInScope) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Slot {
  std::atomic<unsigned long> orphan_{0} BPW_PUBLISHED_BY(no_such_stamp);
};
)cpp"}});
  auto findings = CheckAtomics(tree, LibEverywhere());
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].rule, "bad-annotation");
}

TEST(AtomicsTest, RangeForElementInheritsContainerFieldAnnotations) {
  // `n.ref` through a range-for over nodes_ (std::vector<Node>) must
  // resolve to Node::ref and honour its BPW_RELAXED_OK.
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Policy {
  struct Node {
    std::atomic<bool> ref{false} BPW_RELAXED_OK("reference bit");
  };
  std::vector<Node> nodes_;
  void SweepAll() {
    for (auto& n : nodes_) {
      n.ref.store(false, std::memory_order_relaxed);
    }
  }
};
)cpp"}});
  auto findings = CheckAtomics(tree, LibEverywhere());
  EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(AtomicsTest, AllowCommentsSuppressUnlessIgnored) {
  TreeModel tree = BuildTree({{"src/x.cc", R"cpp(
struct Counters {
  std::atomic<unsigned long> bare_{0};
  void Bump() {
    // bpw-lint-allow(relaxed-unannotated)
    bare_.fetch_add(1, std::memory_order_relaxed);
  }
};
)cpp"}});
  EXPECT_TRUE(CheckAtomics(tree, LibEverywhere()).empty());
  AtomicsOptions audit = LibEverywhere();
  audit.ignore_allows = true;
  auto unsuppressed = CheckAtomics(tree, audit);
  ASSERT_EQ(unsuppressed.size(), 1u) << Dump(unsuppressed);
  EXPECT_EQ(unsuppressed[0].rule, "relaxed-unannotated");
}

TEST(AtomicsTest, DefaultScopeSkipsTestsAndSyncButCoversSrc) {
  const std::string bad = R"cpp(
struct Counters {
  std::atomic<unsigned long> bare_{0};
  void Bump() {
    bare_.fetch_add(1, std::memory_order_relaxed);
  }
};
)cpp";
  TreeModel tree = BuildTree({{"src/core/x.cc", bad},
                              {"src/sync/y.cc", bad},
                              {"tests/z.cc", bad}});
  auto findings = CheckAtomics(tree);  // default scope
  ASSERT_EQ(findings.size(), 1u) << Dump(findings);
  EXPECT_EQ(findings[0].file, "src/core/x.cc");
}

// ------------------------------------------------- call graph + effects

/// Effects of `qualified` in a one-file tree, via the full pipeline.
unsigned EffectsOf(const TreeModel& tree, const CallGraph& cg,
                   const EffectMap& effects, const std::string& qualified) {
  auto it = cg.index.find(qualified);
  if (it == cg.index.end()) return 0xdead;
  return effects.BitsOf(it->second);
}

TEST(CallGraphTest, VirtualCallsFanOutToEveryOverride) {
  const std::string src = R"cpp(
struct Policy {
  virtual void OnHit(int frame);
};
struct LruPolicy : Policy {
  void OnHit(int frame) override { touched_ = frame; }
};
struct ArcPolicy : Policy {
  void OnHit(int frame) override { ghosts_.push_back(frame); }
};
struct Driver {
  Policy* policy_;
  void Replay() { policy_->OnHit(0); }
};
)cpp";
  TreeModel tree = BuildTree({{"src/core/a.cc", src}});
  const CallGraph cg = BuildCallGraph(tree);
  const EffectMap effects = ComputeEffects(tree, cg);
  // The base-typed call must reach ArcPolicy's allocating override: the
  // caller inherits alloc even though LruPolicy's override is clean.
  EXPECT_EQ(EffectsOf(tree, cg, effects, "Driver::Replay") & kEffAlloc,
            kEffAlloc);
}

TEST(CallGraphTest, RecursionCycleMembersUnionTheirEffects) {
  const std::string src = R"cpp(
struct Walker {
  void Descend(int n) { if (n > 0) Record(n); }
  void Record(int n) {
    trail_.push_back(n);
    Descend(n - 1);
  }
  void Entry() { Descend(8); }
};
)cpp";
  TreeModel tree = BuildTree({{"src/core/a.cc", src}});
  const CallGraph cg = BuildCallGraph(tree);
  const EffectMap effects = ComputeEffects(tree, cg);
  // Descend itself never allocates, but it is in a cycle with Record,
  // which does — every member of the SCC carries the union.
  EXPECT_EQ(EffectsOf(tree, cg, effects, "Walker::Descend") & kEffAlloc,
            kEffAlloc);
  EXPECT_EQ(EffectsOf(tree, cg, effects, "Walker::Entry") & kEffAlloc,
            kEffAlloc);
}

TEST(CallGraphTest, IndirectCallsAreConservativelyMayEverything) {
  const std::string src = R"cpp(
struct Visitor {
  void ForEach(void (*visit)(int)) { visit(0); }
  void ForEachFn(const EvictableFn& evictable) { evictable(1); }
};
)cpp";
  TreeModel tree = BuildTree({{"src/core/a.cc", src}});
  const CallGraph cg = BuildCallGraph(tree);
  const EffectMap effects = ComputeEffects(tree, cg);
  // Both the raw function pointer and the std::function-shaped parameter
  // have unknown target sets: the indirect bit is the conservative "may
  // do anything" verdict the hold prover needs.
  EXPECT_EQ(EffectsOf(tree, cg, effects, "Visitor::ForEach") & kEffIndirect,
            kEffIndirect);
  EXPECT_EQ(EffectsOf(tree, cg, effects, "Visitor::ForEachFn") & kEffIndirect,
            kEffIndirect);
}

TEST(CallGraphTest, GuardDeclarationIsAConstruction_NotAnIndirectCall) {
  const std::string src = R"cpp(
struct Pool {
  SpinLock mu_;
  void Drain() {
    SpinLockGuard guard(mu_);
    count_ = 0;
  }
};
)cpp";
  TreeModel tree = BuildTree({{"src/core/a.cc", src}});
  const CallGraph cg = BuildCallGraph(tree);
  const CallNode* drain = cg.Find("Pool::Drain");
  ASSERT_NE(drain, nullptr);
  // `guard` is a local, and `guard(mu_)` is token-identical to a call of
  // it — but the preceding type identifier makes it a declaration. The
  // indirect bit here would poison every guarded function in the tree.
  EXPECT_TRUE(drain->indirect_calls.empty());
}

TEST(CallGraphTest, LambdaInMemberInitListDoesNotSwallowTheCtorBody) {
  const std::string src = R"cpp(
struct Coordinator {
  Coordinator()
      : source_("coord", [this](int snap) {
          return snap + 1;
        }) {
    slots_.reserve(64);
  }
};
)cpp";
  TreeModel tree = BuildTree({{"src/core/a.cc", src}});
  const CallGraph cg = BuildCallGraph(tree);
  const EffectMap effects = ComputeEffects(tree, cg);
  // The lambda's braces sit inside the init list's parens; the modeled
  // body must be the real one after it, where the reserve() allocates.
  EXPECT_EQ(
      EffectsOf(tree, cg, effects, "Coordinator::Coordinator") & kEffAlloc,
      kEffAlloc);
}

TEST(CallGraphTest, AutoMakeUniqueLocalRefinesToTheElementType) {
  const std::string src = R"cpp(
struct Widget {
  void Poke() { log_.push_back(1); }
};
struct Factory {
  void Spawn() {
    auto w = std::make_unique<Widget>();
    w->Poke();
  }
};
)cpp";
  TreeModel tree = BuildTree({{"src/core/a.cc", src}});
  const CallGraph cg = BuildCallGraph(tree);
  const EffectMap effects = ComputeEffects(tree, cg);
  // `auto` alone would leave w untyped and the member call unresolved;
  // the make_unique<T> refinement types it as Widget, so Poke's alloc
  // effect reaches the caller (on top of make_unique's own).
  const CallNode* spawn = cg.Find("Factory::Spawn");
  ASSERT_NE(spawn, nullptr);
  bool calls_poke = false;
  for (const CallEdge& e : spawn->edges) {
    calls_poke |= cg.nodes[e.callee].qualified == "Widget::Poke";
  }
  EXPECT_TRUE(calls_poke);
}

TEST(CallGraphTest, HoldEffectOkExoneratesOneBitWithItsReason) {
  const std::string src = R"cpp(
struct Stash {
  void Push(int v)
      BPW_HOLD_EFFECT_OK(alloc, "capacity reserved at construction") {
    entries_.push_back(v);
  }
  void PushAll() { Push(1); }
};
)cpp";
  TreeModel tree = BuildTree({{"src/core/a.cc", src}});
  const CallGraph cg = BuildCallGraph(tree);
  const EffectMap effects = ComputeEffects(tree, cg);
  // The exonerated bit vanishes from the summary before propagation, so
  // the caller proves clean against the cleansed summary too.
  EXPECT_EQ(EffectsOf(tree, cg, effects, "Stash::Push") & kEffAlloc, 0u);
  EXPECT_EQ(EffectsOf(tree, cg, effects, "Stash::PushAll") & kEffAlloc, 0u);
}

// ------------------------------------------------------ hold-region rules

HoldReport RunHolds(const std::string& source) {
  TreeModel tree = BuildTree({{"src/core/a.cc", source}});
  const CallGraph cg = BuildCallGraph(tree);
  const EffectMap effects = ComputeEffects(tree, cg);
  HoldOptions opts;
  return CheckHolds(tree, cg, effects, opts);
}

TEST(HoldTest, TransitiveAllocationUnderAGuardFires) {
  HoldReport report = RunHolds(R"cpp(
struct Table {
  ContentionLock lock_;
  void Grow() { cells_.resize(128); }
  void Rehash() { Grow(); }
  void Commit() {
    ContentionLockGuard guard(lock_);
    Rehash();
  }
};
)cpp");
  ASSERT_EQ(report.findings.size(), 1u) << Dump(report.findings);
  EXPECT_EQ(report.findings[0].rule, "hold-alloc");
  // The witness names the chain, not just the symptom — that is what
  // makes the finding actionable two calls away from the resize.
  EXPECT_NE(report.findings[0].message.find("Rehash"), std::string::npos)
      << report.findings[0].message;
}

TEST(HoldTest, BoundedByAnnotationSilencesTheLoopRule) {
  const char* kLoop = R"cpp(
struct Ghosts {
  ContentionLock lock_;
  void Trim() {
    ContentionLockGuard guard(lock_);
    %s
    while (ghosts_.size() > cap_) {
      Drop();
    }
  }
  void Drop() { --count_; }
};
)cpp";
  char with[512], without[512];
  std::snprintf(without, sizeof(without), kLoop, "");
  std::snprintf(with, sizeof(with), kLoop,
                "BPW_BOUNDED_BY(ghosts_.size() - cap_);");
  HoldReport bare = RunHolds(without);
  ASSERT_EQ(bare.findings.size(), 1u) << Dump(bare.findings);
  EXPECT_EQ(bare.findings[0].rule, "hold-unbounded-loop");
  HoldReport annotated = RunHolds(with);
  EXPECT_TRUE(annotated.findings.empty()) << Dump(annotated.findings);
}

TEST(HoldTest, CasRetryLoopsMustBeBoundedAndLockFree) {
  HoldReport report = RunHolds(R"cpp(
struct Counter {
  Mutex fallback_mu_;
  void BumpForever(unsigned long d) {
    unsigned long cur = word_.load();
    while (true) {
      if (word_.compare_exchange_weak(cur, cur + d)) return;
    }
  }
  void BumpBlocking(unsigned long d) {
    unsigned long cur = word_.load();
    BPW_BOUNDED_BY(kMaxWriters);
    while (true) {
      if (word_.compare_exchange_weak(cur, cur + d)) return;
      MutexGuard guard(fallback_mu_);
    }
  }
  void BumpBounded(unsigned long d) {
    unsigned long cur = word_.load();
    for (int i = 0; i < 16; ++i) {
      if (word_.compare_exchange_weak(cur, cur + d)) return;
    }
  }
};
)cpp");
  EXPECT_EQ(Rules(report.findings),
            (std::vector<std::string>{"cas-retry-blocks",
                                      "cas-retry-unbounded"}))
      << Dump(report.findings);
}

TEST(HoldTest, StaticCostRanksTheLoopedRegionHeavier) {
  HoldReport report = RunHolds(R"cpp(
struct TwoLocks {
  ContentionLock cheap_;
  ContentionLock looped_;
  void Quick() {
    ContentionLockGuard guard(cheap_);
    a_ = 1;
  }
  void Sweep() {
    ContentionLockGuard guard(looped_);
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        b_ = i * j;
      }
    }
  }
};
)cpp");
  EXPECT_TRUE(report.findings.empty()) << Dump(report.findings);
  double quick = -1, sweep = -1;
  for (const HoldSite& site : report.sites) {
    if (site.function == "TwoLocks::Quick") quick = site.cost;
    if (site.function == "TwoLocks::Sweep") sweep = site.cost;
  }
  ASSERT_GE(quick, 0);
  ASSERT_GE(sweep, 0);
  // Two nesting levels multiply the inner statement by 64: the ranking,
  // not the absolute number, is the contract reconciliation depends on.
  EXPECT_GT(sweep, quick * 8);
  // The JSON exporter sorts by descending weight, so the looped region
  // leads the document bpw_profile --reconcile consumes.
  const std::string json = HoldCostsToJson(report);
  EXPECT_LT(json.find("TwoLocks::Sweep"), json.find("TwoLocks::Quick"));
}


}  // namespace
}  // namespace analysis
}  // namespace bpw
