// Tests for TableReporter's machine-readable outputs (CSV and JSON).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/reporter.h"

namespace bpw {
namespace {

TEST(TableReporterTest, CsvRoundsTripRows) {
  TableReporter table({"system", "tps"});
  table.AddRow({"pgBatPre", "1234"});
  table.AddNumericRow("pg2Q", {567.891}, 1);
  EXPECT_EQ(table.ToCsv(), "system,tps\npgBatPre,1234\npg2Q,567.9\n");
}

TEST(TableReporterTest, JsonKeysRowsByHeader) {
  TableReporter table({"system", "tps", "note"});
  table.AddRow({"pgBatPre", "1234", "warm"});
  table.AddRow({"pg2Q", "567.9", "a \"quoted\" note"});
  EXPECT_EQ(table.ToJson(),
            "[{\"system\":\"pgBatPre\",\"tps\":1234,\"note\":\"warm\"},"
            "{\"system\":\"pg2Q\",\"tps\":567.9,"
            "\"note\":\"a \\\"quoted\\\" note\"}]");
}

TEST(TableReporterTest, JsonQuotesNonNumericCells) {
  // "1234abc" is not a complete number token and must stay a string; a
  // short row pads missing cells with empty strings.
  TableReporter table({"a", "b"});
  table.AddRow({"1234abc"});
  EXPECT_EQ(table.ToJson(), "[{\"a\":\"1234abc\",\"b\":\"\"}]");
}

TEST(TableReporterTest, CsvEscapesCommasQuotesAndNewlines) {
  // RFC 4180: a cell with a comma/quote/newline is quoted and embedded
  // quotes are doubled — otherwise a free-form policy label shifts every
  // column after it.
  TableReporter table({"configuration", "tps"});
  table.AddRow({"partitioned-2q, 64 parts", "100"});
  table.AddRow({"the \"fast\" path", "200"});
  table.AddRow({"multi\nline", "300"});
  EXPECT_EQ(table.ToCsv(),
            "configuration,tps\n"
            "\"partitioned-2q, 64 parts\",100\n"
            "\"the \"\"fast\"\" path\",200\n"
            "\"multi\nline\",300\n");
}

TEST(TableReporterTest, CsvLeavesPlainCellsUnquoted) {
  TableReporter table({"a b", "c"});
  table.AddRow({"plain-cell", "1.5"});
  EXPECT_EQ(table.ToCsv(), "a b,c\nplain-cell,1.5\n");
}

TEST(TableReporterTest, JsonEscapesControlAndUnicodeishCells) {
  TableReporter table({"k"});
  table.AddRow({std::string("tab\there\x01")});
  EXPECT_EQ(table.ToJson(), "[{\"k\":\"tab\\there\\u0001\"}]");
}

TEST(TableReporterTest, EmptyTableIsEmptyJsonArray) {
  TableReporter table({"a"});
  EXPECT_EQ(table.ToJson(), "[]");
}

TEST(TableReporterTest, NumericRowFormatsWithPrecision) {
  TableReporter table({"label", "v1", "v2"});
  table.AddNumericRow("row", {1.0, 2.345}, 2);
  EXPECT_EQ(table.ToJson(), "[{\"label\":\"row\",\"v1\":1.00,\"v2\":2.35}]");
}

}  // namespace
}  // namespace bpw
