// Tests for ContentionLock (the paper's instrumented latch) and SpinLock.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sync/contention_lock.h"
#include "sync/prefetch.h"
#include "sync/spinlock.h"
#include "util/clock.h"
#include "util/thread_annotations.h"

namespace bpw {
namespace {

// White-box helpers that exercise raw TryLock/Unlock interleavings — locks
// held conditionally on runtime state, exactly the shapes the thread-safety
// analysis exists to reject. They opt out of the analysis; the runtime
// EXPECTs (and TSan in CI) validate them instead.
void ExpectTryLockSucceedsAndRelease(ContentionLock& lock)
    BPW_NO_THREAD_SAFETY_ANALYSIS {
  // bpw-lint-allow(trylock-no-fallback)
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

void ExpectTryLockFails(ContentionLock& lock) BPW_NO_THREAD_SAFETY_ANALYSIS {
  // bpw-lint-allow(trylock-no-fallback)
  EXPECT_FALSE(lock.TryLock());
}

void SpinTryLockRoundTrip(SpinLock& lock) BPW_NO_THREAD_SAFETY_ANALYSIS {
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(ContentionLockTest, UncontendedLockCountsNoContention) {
  ContentionLock lock;
  for (int i = 0; i < 100; ++i) {
    lock.Lock();
    lock.Unlock();
  }
  LockStats s = lock.stats();
  EXPECT_EQ(s.acquisitions, 100u);
  EXPECT_EQ(s.contentions, 0u);
  EXPECT_EQ(s.trylock_failures, 0u);
}

TEST(ContentionLockTest, TryLockSucceedsWhenFree) {
  ContentionLock lock;
  ExpectTryLockSucceedsAndRelease(lock);
  EXPECT_EQ(lock.stats().acquisitions, 1u);
}

TEST(ContentionLockTest, TryLockFailsWhenHeldAndIsNotAContention) {
  ContentionLock lock;
  lock.Lock();
  std::thread other([&] {
    ExpectTryLockFails(lock);
    ExpectTryLockFails(lock);
  });
  other.join();
  lock.Unlock();
  LockStats s = lock.stats();
  EXPECT_EQ(s.trylock_failures, 2u);
  EXPECT_EQ(s.contentions, 0u);  // TryLock never blocks
}

TEST(ContentionLockTest, BlockingWaitIsAContention) {
  ContentionLock lock;
  lock.Lock();
  std::thread waiter([&] { lock.Lock(); lock.Unlock(); });
  // Give the waiter time to block.
  BusyWaitNanos(20'000'000);
  lock.Unlock();
  waiter.join();
  LockStats s = lock.stats();
  EXPECT_EQ(s.acquisitions, 2u);
  EXPECT_EQ(s.contentions, 1u);
}

TEST(ContentionLockTest, MutualExclusionUnderContention) {
  ContentionLock lock;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        lock.Lock();
        ++counter;
        lock.Unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
  EXPECT_EQ(lock.stats().acquisitions,
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(ContentionLockTest, TimingInstrumentationRecordsHoldTime) {
  ContentionLock lock(LockInstrumentation::kTiming);
  lock.Lock();
  BusyWaitNanos(3'000'000);  // hold 3 ms
  lock.Unlock();
  EXPECT_GE(lock.stats().hold_nanos, 2'000'000u);
}

TEST(ContentionLockTest, TimingInstrumentationRecordsWaitTime) {
  ContentionLock lock(LockInstrumentation::kTiming);
  lock.Lock();
  std::thread waiter([&] { lock.Lock(); lock.Unlock(); });
  BusyWaitNanos(5'000'000);
  lock.Unlock();
  waiter.join();
  EXPECT_GE(lock.stats().wait_nanos, 1'000'000u);
}

TEST(ContentionLockTest, NoInstrumentationKeepsZeroStats) {
  ContentionLock lock(LockInstrumentation::kNone);
  lock.Lock();
  lock.Unlock();
  ExpectTryLockSucceedsAndRelease(lock);
  LockStats s = lock.stats();
  EXPECT_EQ(s.acquisitions, 0u);
  EXPECT_EQ(s.hold_nanos, 0u);
}

TEST(ContentionLockTest, ResetStatsZeroesCounters) {
  ContentionLock lock;
  lock.Lock();
  lock.Unlock();
  lock.ResetStats();
  EXPECT_EQ(lock.stats().acquisitions, 0u);
}

TEST(LockStatsTest, PlusEqualsAccumulates) {
  LockStats a{1, 2, 3, 4, 5};
  LockStats b{10, 20, 30, 40, 50};
  a += b;
  EXPECT_EQ(a.acquisitions, 11u);
  EXPECT_EQ(a.contentions, 22u);
  EXPECT_EQ(a.trylock_failures, 33u);
  EXPECT_EQ(a.hold_nanos, 44u);
  EXPECT_EQ(a.wait_nanos, 55u);
}

TEST(SpinLockTest, BasicExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 200000);
}

TEST(SpinLockTest, TryLockReflectsState) {
  SpinLock lock;
  SpinTryLockRoundTrip(lock);
}

TEST(PrefetchTest, NullAndValidPointersAreSafe) {
  PrefetchRead(nullptr);
  PrefetchWrite(nullptr);
  PrefetchRange(nullptr, 1024);
  int x = 0;
  PrefetchRead(&x);
  PrefetchWrite(&x);
  char buf[512];
  PrefetchRange(buf, sizeof(buf));
  SUCCEED();
}

}  // namespace
}  // namespace bpw
