// Edge cases of the per-thread AccessQueue and the BP-Wrapper commit paths
// built on it: wraparound reuse after commits, partial-queue commits via
// FlushSlot, the deterministic queue-full blocking-Lock fallback (Fig. 4
// line 13), and FlushSlot on an empty queue staying off the lock entirely.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/access_queue.h"
#include "core/bp_wrapper.h"
#include "policy/policy_factory.h"

namespace bpw {
namespace {

TEST(AccessQueueTest, RecordFillClearReuse) {
  AccessQueue queue(4);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.capacity(), 4u);

  // Fill, clear, and refill several times: the buffer is reused in place
  // and arrival order is preserved across the wraparound.
  for (uint64_t round = 0; round < 3; ++round) {
    for (uint64_t i = 0; i < 4; ++i) {
      EXPECT_FALSE(queue.full());
      queue.Record(/*page=*/round * 100 + i, /*frame=*/i);
    }
    EXPECT_TRUE(queue.full());
    EXPECT_EQ(queue.size(), 4u);
    for (size_t i = 0; i < queue.size(); ++i) {
      EXPECT_EQ(queue[i].page, round * 100 + i);
      EXPECT_EQ(queue[i].frame, i);
    }
    queue.Clear();
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.size(), 0u);
  }
}

TEST(AccessQueueTest, ZeroCapacityIsClampedToOne) {
  AccessQueue queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  queue.Record(7, 0);
  EXPECT_TRUE(queue.full());
}

std::unique_ptr<BpWrapperCoordinator> MakeCoordinator(
    BpWrapperCoordinator::Options options, size_t frames) {
  auto policy = CreatePolicy("lru", frames);
  EXPECT_TRUE(policy.ok());
  return std::make_unique<BpWrapperCoordinator>(std::move(policy).value(),
                                                options);
}

// Makes pages 0..n-1 resident in frames 0..n-1 through the coordinator.
void Populate(BpWrapperCoordinator& coord, Coordinator::ThreadSlot* slot,
              size_t n) {
  for (size_t i = 0; i < n; ++i) {
    coord.CompleteMiss(slot, /*page=*/i, /*frame=*/i);
  }
}

TEST(AccessQueueTest, FlushSlotCommitsPartialQueue) {
  BpWrapperCoordinator::Options options;
  options.queue_size = 8;
  options.batch_threshold = 8;  // no auto-commit below 8 entries
  auto coord = MakeCoordinator(options, 8);
  auto slot = coord->RegisterThread();
  Populate(*coord, slot.get(), 8);

  // Three hits: below threshold, so they stay queued.
  for (PageId p = 0; p < 3; ++p) coord->OnHit(slot.get(), p, p);
  EXPECT_EQ(coord->committed_entries(), 0u);
  EXPECT_EQ(coord->commit_batches(), 0u);

  coord->FlushSlot(slot.get());
  EXPECT_EQ(coord->committed_entries(), 3u);
  EXPECT_EQ(coord->commit_batches(), 1u);

  // The queue was cleared: a second flush finds nothing.
  coord->FlushSlot(slot.get());
  EXPECT_EQ(coord->commit_batches(), 1u);
  slot.reset();
}

TEST(AccessQueueTest, FlushSlotOnEmptyQueueNeverTouchesTheLock) {
  BpWrapperCoordinator::Options options;
  options.instrumentation = LockInstrumentation::kCounts;
  auto coord = MakeCoordinator(options, 4);
  auto slot = coord->RegisterThread();
  const uint64_t acquisitions_before = coord->lock_stats().acquisitions;
  coord->FlushSlot(slot.get());
  EXPECT_EQ(coord->lock_stats().acquisitions, acquisitions_before)
      << "an empty flush must not acquire the policy lock";
  slot.reset();
}

TEST(AccessQueueTest, FullQueueFallsBackToBlockingLock) {
  // Deterministic construction of the Fig. 4 line-13 path: a helper thread
  // parks inside ChooseVictim *holding the policy lock* (its evictable
  // callback spins until it sees the fallback counter move). Meanwhile this
  // thread records hits: the threshold TryLock fails (lock held), recording
  // continues, and on the queue-full hit the coordinator must block —
  // which is exactly the event the helper is waiting for.
  constexpr size_t kQueue = 4;
  BpWrapperCoordinator::Options options;
  options.queue_size = kQueue;
  options.batch_threshold = 2;
  auto coord = MakeCoordinator(options, 8);
  auto main_slot = coord->RegisterThread();
  Populate(*coord, main_slot.get(), 8);

  std::atomic<bool> holder_inside{false};
  std::thread holder([&] {
    auto slot = coord->RegisterThread();
    auto victim = coord->ChooseVictim(
        slot.get(),
        [&](FrameId) {
          holder_inside.store(true);
          // Hold the lock until the main thread is forced into fallback.
          while (coord->lock_fallbacks() == 0) std::this_thread::yield();
          return true;
        },
        /*incoming=*/100);
    EXPECT_TRUE(victim.ok()) << victim.status().ToString();
    slot.reset();
  });

  while (!holder_inside.load()) std::this_thread::yield();

  // Queue fills: thresholds at 2,3,4 try TryLock and fail; entry 4 finds
  // the queue full and must take the blocking path.
  for (size_t i = 0; i < kQueue; ++i) {
    coord->OnHit(main_slot.get(), /*page=*/i % 7, /*frame=*/i % 7);
  }
  holder.join();

  EXPECT_EQ(coord->lock_fallbacks(), 1u);
  EXPECT_GT(coord->lock_stats().trylock_failures, 0u);
  // The blocking commit drained the full queue (minus any entry staled by
  // the helper's eviction).
  EXPECT_EQ(coord->commit_batches(), 1u);
  EXPECT_GT(coord->committed_entries(), 0u);
  main_slot.reset();
}

}  // namespace
}  // namespace bpw
