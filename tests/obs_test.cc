// Tests for the observability layer: sharded counters under concurrent
// writers, registry snapshots and sources, the stats sampler's time series,
// trace-event recording, and the JSON helpers everything is serialized with.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/stats_sampler.h"
#include "obs/trace_recorder.h"
#include "util/thread_id.h"

namespace bpw {
namespace obs {
namespace {

// Scans a JSON document for structural validity: balanced {} / [] outside
// string literals, terminated strings, no trailing garbage. Not a full
// parser, but catches the ways hand-rolled emitters typically break.
bool JsonIsBalanced(const std::string& doc) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : doc) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(CounterTest, SingleThreadSum) {
  Counter c;
  EXPECT_EQ(c.Sum(), 0u);
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.Sum(), 7u);
  c.Reset();
  EXPECT_EQ(c.Sum(), 0u);
}

TEST(CounterTest, ConcurrentWritersSumExactly) {
  // Writers from distinct threads land in (mostly) distinct shards; the
  // folded sum must still be exact once they join.
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Sum(), kThreads * kAddsPerThread);
}

TEST(CounterTest, ConcurrentResetNeverTears) {
  // Sum() under concurrent Add()/Reset() may be any partial value but must
  // never exceed what was written; mainly a TSan target.
  Counter c;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) c.Add(1);
  });
  for (int i = 0; i < 1000; ++i) {
    c.Reset();
    c.Sum();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(MetricMacroTest, DisabledSkipsIncrement) {
  Counter c;
  SetMetricsEnabled(false);
  BPW_METRIC_ADD(&c, 5);
  EXPECT_EQ(c.Sum(), 0u);
  SetMetricsEnabled(true);
  BPW_METRIC_ADD(&c, 5);
  EXPECT_EQ(c.Sum(), 5u);
  Counter* null_counter = nullptr;
  BPW_METRIC_ADD(null_counter, 1);  // must not crash
}

TEST(MetricsRegistryTest, GetCounterIsStable) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("y"));
}

TEST(MetricsRegistryTest, SnapshotReadsAllKinds) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Add(11);
  reg.GetGauge("g")->Set(-4);
  reg.GetHistogram("h")->Record(100);
  reg.GetHistogram("h")->Record(300);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_GT(snap.wall_nanos, 0u);
  EXPECT_DOUBLE_EQ(snap.value("c"), 11.0);
  EXPECT_DOUBLE_EQ(snap.value("g"), -4.0);
  EXPECT_DOUBLE_EQ(snap.value("h.count"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("h.mean"), 200.0);
  EXPECT_DOUBLE_EQ(snap.value("h.max"), 300.0);
  EXPECT_DOUBLE_EQ(snap.value("missing", -1.0), -1.0);
}

TEST(MetricsRegistryTest, SourcesContributeAndDuplicateNamesSum) {
  MetricsRegistry reg;
  uint64_t id1 = reg.RegisterSource(
      [](MetricsSnapshot& s) { s.Add("lock.acquisitions", 10); });
  uint64_t id2 = reg.RegisterSource(
      [](MetricsSnapshot& s) { s.Add("lock.acquisitions", 7); });
  EXPECT_DOUBLE_EQ(reg.Snapshot().value("lock.acquisitions"), 17.0);

  reg.UnregisterSource(id2);
  EXPECT_DOUBLE_EQ(reg.Snapshot().value("lock.acquisitions"), 10.0);
  reg.UnregisterSource(id1);
  EXPECT_EQ(reg.Snapshot().values.count("lock.acquisitions"), 0u);
}

TEST(MetricsRegistryTest, ScopedSourceUnregistersOnDestruction) {
  MetricsRegistry reg;
  {
    ScopedMetricSource source(&reg,
                              [](MetricsSnapshot& s) { s.Add("v", 1); });
    EXPECT_DOUBLE_EQ(reg.Snapshot().value("v"), 1.0);
  }
  EXPECT_EQ(reg.Snapshot().values.count("v"), 0u);
}

TEST(MetricsRegistryTest, ResetCountersZeroesOwnedMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Add(5);
  reg.GetHistogram("h")->Record(9);
  reg.ResetCounters();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_DOUBLE_EQ(snap.value("c"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value("h.count"), 0.0);
}

TEST(MetricsSnapshotTest, DeltaFromSubtractsPointwise) {
  MetricsSnapshot before, after;
  before.wall_nanos = 1000;
  before.Add("a", 10);
  after.wall_nanos = 3000;
  after.Add("a", 25);
  after.Add("b", 5);  // missing from `before` counts as 0

  MetricsSnapshot delta = after.DeltaFrom(before);
  EXPECT_EQ(delta.wall_nanos, 2000u);
  EXPECT_DOUBLE_EQ(delta.value("a"), 15.0);
  EXPECT_DOUBLE_EQ(delta.value("b"), 5.0);
}

TEST(MetricsSnapshotTest, ToJsonIsBalancedAndNamed) {
  MetricsSnapshot snap;
  snap.wall_nanos = 1500000;  // 1.5 ms
  snap.Add("buffer.hits", 42);
  std::string json = snap.ToJson();
  EXPECT_TRUE(JsonIsBalanced(json)) << json;
  EXPECT_NE(json.find("\"t_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"buffer.hits\":42"), std::string::npos);
}

TEST(StatsSamplerTest, SampleNowCapturesDeltas) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("work");
  StatsSampler sampler(&reg, /*interval_ms=*/1000);

  c->Add(10);
  sampler.SampleNow();
  c->Add(32);
  sampler.SampleNow();

  std::vector<MetricsSnapshot> series = sampler.samples();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0].value("work"), 10.0);
  EXPECT_DOUBLE_EQ(series[1].value("work"), 42.0);

  std::vector<MetricsSnapshot> deltas = StatsSampler::Deltas(series);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(deltas[0].value("work"), 32.0);
}

TEST(StatsSamplerTest, StartStopYieldsAtLeastTwoSamples) {
  MetricsRegistry reg;
  reg.GetCounter("work")->Add(1);
  // Interval far longer than the run: the initial + final samples must
  // still be there.
  StatsSampler sampler(&reg, /*interval_ms=*/10000);
  sampler.Start();
  sampler.Stop();
  EXPECT_GE(sampler.samples().size(), 2u);
  sampler.Stop();  // idempotent
}

TEST(StatsSamplerTest, BackgroundThreadSamplesWhileRunning) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("work");
  StatsSampler sampler(&reg, /*interval_ms=*/5);
  sampler.Start();
  for (int i = 0; i < 20; ++i) {
    c->Add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sampler.Stop();
  // initial + final + at least one periodic sample over ~100ms at 5ms.
  EXPECT_GE(sampler.samples().size(), 3u);
}

TEST(StatsSamplerTest, ToJsonLinesOneObjectPerSample) {
  MetricsRegistry reg;
  reg.GetCounter("work")->Add(3);
  StatsSampler sampler(&reg, 1000);
  sampler.SampleNow();
  sampler.SampleNow();
  std::string lines = sampler.ToJsonLines();
  size_t newline_count = 0;
  size_t pos = 0;
  while ((pos = lines.find('\n', pos)) != std::string::npos) {
    ++newline_count;
    ++pos;
  }
  EXPECT_EQ(newline_count, 2u);
  EXPECT_TRUE(JsonIsBalanced(lines)) << lines;
}

TEST(TraceRecorderTest, DisabledEmitIsDropped) {
  TraceRecorder rec;
  rec.Emit(TraceEventKind::kLockHold, 100, 50, 0);
  EXPECT_EQ(rec.total_events(), 0u);
}

TEST(TraceRecorderTest, MultiThreadEventsExportAsChromeTrace) {
  TraceRecorder rec;
  rec.SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        uint64_t start = 1000 + static_cast<uint64_t>(i) * 10;
        rec.Emit(TraceEventKind::kLockHold, start, 5, 0);
        rec.Emit(TraceEventKind::kBatchCommit, start, 3, 64);
        rec.Emit(TraceEventKind::kEviction, start, 0, 7);
      }
    });
  }
  for (auto& t : threads) t.join();
  rec.SetEnabled(false);

  EXPECT_EQ(rec.total_events(), kThreads * kEventsPerThread * 3u);
  EXPECT_EQ(rec.dropped_events(), 0u);

  std::string json = rec.ToChromeTrace();
  EXPECT_TRUE(JsonIsBalanced(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"lock.hold\""), std::string::npos);
  EXPECT_NE(json.find("\"commit.batch\""), std::string::npos);
  EXPECT_NE(json.find("\"pool.evict\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(json.find("\"batch\":64"), std::string::npos);
  // One thread_name metadata record per emitting thread.
  size_t meta_count = 0;
  size_t pos = 0;
  while ((pos = json.find("\"thread_name\"", pos)) != std::string::npos) {
    ++meta_count;
    ++pos;
  }
  EXPECT_EQ(meta_count, static_cast<size_t>(kThreads));
}

TEST(TraceRecorderTest, RingWrapDropsOldestAndCounts) {
  TraceRecorder rec;
  rec.SetBufferCapacity(16);  // the floor SetBufferCapacity enforces
  rec.SetEnabled(true);
  for (int i = 0; i < 40; ++i) {
    rec.Emit(TraceEventKind::kLockWait, static_cast<uint64_t>(i) * 100, 1, 0);
  }
  rec.SetEnabled(false);
  EXPECT_EQ(rec.total_events(), 40u);
  EXPECT_EQ(rec.dropped_events(), 24u);
  std::string json = rec.ToChromeTrace();
  EXPECT_TRUE(JsonIsBalanced(json));
  // Only the newest 16 events survive: the last event (start 3900ns ->
  // ts 3.900us) must be present.
  EXPECT_NE(json.find("\"ts\":3.900"), std::string::npos);
}

TEST(TraceRecorderTest, ClearDiscardsBufferedEvents) {
  TraceRecorder rec;
  rec.SetEnabled(true);
  rec.Emit(TraceEventKind::kLockFallback, 10, 0, 0);
  rec.Clear();
  EXPECT_EQ(rec.total_events(), 0u);
  rec.Emit(TraceEventKind::kLockFallback, 10, 0, 0);
  EXPECT_EQ(rec.total_events(), 1u);
}

TEST(JsonHelpersTest, EscapeAndNumberFormats) {
  EXPECT_EQ(JsonString("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(0.0 / 0.0), "0");  // NaN
  EXPECT_TRUE(LooksLikeJsonNumber("12"));
  EXPECT_TRUE(LooksLikeJsonNumber("-0.5"));
  EXPECT_TRUE(LooksLikeJsonNumber("1e9"));
  EXPECT_FALSE(LooksLikeJsonNumber(""));
  EXPECT_FALSE(LooksLikeJsonNumber("12x"));
  EXPECT_FALSE(LooksLikeJsonNumber("1.2.3"));
  EXPECT_FALSE(LooksLikeJsonNumber("-"));
}

TEST(ThreadIdTest, DenseAndStablePerThread) {
  uint32_t id_main = CurrentThreadId();
  EXPECT_EQ(CurrentThreadId(), id_main);
  uint32_t id_other = 0;
  std::thread t([&id_other] { id_other = CurrentThreadId(); });
  t.join();
  EXPECT_NE(id_other, id_main);
  EXPECT_GT(id_other, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace bpw
