// Behavioural tests for the Multi-Queue (MQ) policy.
#include <gtest/gtest.h>

#include "policy/mq.h"

namespace bpw {
namespace {

ReplacementPolicy::EvictableFn All() {
  return [](FrameId) { return true; };
}

TEST(MqTest, DefaultsDeriveFromFrames) {
  MqPolicy mq(64);
  mq.AssertExclusiveAccess();
  EXPECT_EQ(mq.num_queues(), 8u);
  EXPECT_EQ(mq.life_time(), 128u);
}

TEST(MqTest, NewPageStartsInQ0) {
  MqPolicy mq(8);
  mq.AssertExclusiveAccess();
  mq.OnMiss(1, 0);
  EXPECT_EQ(mq.queue_size(0), 1u);
  EXPECT_EQ(mq.RefCountOf(1), 1u);
}

TEST(MqTest, RefCountPlacesPageInLogQueue) {
  MqPolicy mq(8);
  mq.AssertExclusiveAccess();
  mq.OnMiss(1, 0);
  mq.OnHit(1, 0);  // ref 2 -> queue 1
  EXPECT_EQ(mq.queue_size(1), 1u);
  mq.OnHit(1, 0);  // ref 3 -> still queue 1
  EXPECT_EQ(mq.queue_size(1), 1u);
  mq.OnHit(1, 0);  // ref 4 -> queue 2
  EXPECT_EQ(mq.queue_size(2), 1u);
  EXPECT_EQ(mq.RefCountOf(1), 4u);
  EXPECT_TRUE(mq.CheckInvariants().ok());
}

TEST(MqTest, VictimComesFromLowestQueue) {
  MqPolicy mq(4);
  mq.AssertExclusiveAccess();
  mq.OnMiss(1, 0);
  mq.OnMiss(2, 1);
  mq.OnHit(2, 1);  // 2 climbs to queue 1
  auto victim = mq.ChooseVictim(All(), 9);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->page, 1u);
}

TEST(MqTest, ExpiredPagesAreDemoted) {
  MqPolicy mq(4, MqPolicy::Params{.num_queues = 4, .life_time = 3});
  mq.AssertExclusiveAccess();
  mq.OnMiss(1, 0);
  mq.OnHit(1, 0);  // page 1 in queue 1, expires at time+3
  ASSERT_EQ(mq.queue_size(1), 1u);
  // Burn logical time with accesses to another page.
  mq.OnMiss(2, 1);
  for (int i = 0; i < 6; ++i) mq.OnHit(2, 1);
  // Page 1's lifetime elapsed: it must have been demoted back to queue 0.
  EXPECT_EQ(mq.queue_size(1) + mq.queue_size(2) + mq.queue_size(3), 1u)
      << "only the hot page 2 should sit above queue 0";
  EXPECT_TRUE(mq.CheckInvariants().ok());
}

TEST(MqTest, GhostRemembersRefCount) {
  MqPolicy mq(2, MqPolicy::Params{.num_queues = 4, .life_time = 1000,
                                  .qout_capacity = 8});
  mq.OnMiss(1, 0);
  mq.OnHit(1, 0);
  mq.OnHit(1, 0);  // ref 3
  mq.OnMiss(2, 1);
  auto victim = mq.ChooseVictim(All(), 3);  // lowest queue first: page 2
  ASSERT_TRUE(victim.ok());
  ASSERT_EQ(victim->page, 2u);
  // With page 2 gone, the next victim is the hot page 1 itself.
  auto v2 = mq.ChooseVictim(All(), 3);
  ASSERT_TRUE(v2.ok());
  ASSERT_EQ(v2->page, 1u);
  // Reload page 1 from the ghost: its ref count resumes at 4 (saved 3 + 1),
  // placing it straight into queue 2.
  mq.OnMiss(1, v2->frame);
  EXPECT_EQ(mq.RefCountOf(1), 4u);
  EXPECT_EQ(mq.queue_size(2), 1u);
  EXPECT_TRUE(mq.CheckInvariants().ok());
}

TEST(MqTest, GhostCapacityBounded) {
  MqPolicy mq(2, MqPolicy::Params{.num_queues = 4, .life_time = 100,
                                  .qout_capacity = 4});
  FrameId next = 0;
  for (PageId p = 0; p < 100; ++p) {
    FrameId f;
    if (next < 2) {
      f = next++;
    } else {
      auto v = mq.ChooseVictim(All(), p);
      ASSERT_TRUE(v.ok());
      f = v->frame;
    }
    mq.OnMiss(p, f);
    ASSERT_LE(mq.qout_size(), 4u);
  }
  EXPECT_TRUE(mq.CheckInvariants().ok());
}

TEST(MqTest, FrequentPageSurvivesChurn) {
  MqPolicy mq(8, MqPolicy::Params{.num_queues = 8, .life_time = 10000});
  mq.AssertExclusiveAccess();
  mq.OnMiss(1, 0);
  for (int i = 0; i < 20; ++i) mq.OnHit(1, 0);  // very hot
  FrameId next = 1;
  for (PageId p = 100; p < 150; ++p) {
    FrameId f;
    if (next < 8) {
      f = next++;
    } else {
      auto v = mq.ChooseVictim(All(), p);
      ASSERT_TRUE(v.ok());
      EXPECT_NE(v->page, 1u) << "hot page evicted while cold pages present";
      f = v->frame;
    }
    mq.OnMiss(p, f);
  }
  EXPECT_TRUE(mq.IsResident(1));
}

}  // namespace
}  // namespace bpw
