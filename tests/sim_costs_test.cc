// Property tests for the simulator's cost model: the relations the model
// must preserve for the paper reproduction to be trustworthy.
#include <gtest/gtest.h>

#include "harness/systems.h"
#include "sim/sim_driver.h"

namespace bpw {
namespace {

DriverConfig Base(const std::string& system_name, uint32_t procs) {
  DriverConfig config = ScalabilityRunConfig("dbt2", 4096, 40);
  config.warmup_ms = 10;
  config.num_threads = procs;
  config.system = PaperSystemConfig(system_name).value();
  return config;
}

TEST(SimCostsTest, ContentionGrowsWithProcessorCount) {
  double previous = -1;
  for (uint32_t procs : {2, 4, 8, 16}) {
    auto result = RunSimulation(Base("pg2Q", procs));
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->contentions_per_million, previous)
        << procs << " processors";
    previous = result->contentions_per_million;
  }
  EXPECT_GT(previous, 100000.0) << "pg2Q must be saturated at 16";
}

TEST(SimCostsTest, PrefetchShortensLockHold) {
  // §III-B's claimed mechanism: the same work, but the warm-up misses move
  // out of the lock-holding period.
  auto base = RunSimulation(Base("pg2Q", 4));
  auto pre = RunSimulation(Base("pgPre", 4));
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(pre.ok());
  const double base_hold =
      static_cast<double>(base->lock.hold_nanos) / base->lock.acquisitions;
  const double pre_hold =
      static_cast<double>(pre->lock.hold_nanos) / pre->lock.acquisitions;
  EXPECT_LT(pre_hold, base_hold * 0.7)
      << "prefetch must shorten the average lock-holding period";
}

TEST(SimCostsTest, CoherenceCostsVanishOnOneProcessor) {
  // With P=1 the (P-1)/P coherence scaling zeroes out: pg2Q's single-
  // processor throughput must sit within a few percent of pgClock's.
  auto clock = RunSimulation(Base("pgClock", 1));
  auto two_q = RunSimulation(Base("pg2Q", 1));
  ASSERT_TRUE(clock.ok());
  ASSERT_TRUE(two_q.ok());
  EXPECT_GT(two_q->throughput_tps, clock->throughput_tps * 0.93);
}

TEST(SimCostsTest, LargerAccessWorkDelaysSaturation) {
  // More non-critical work per access => the lock saturates later: at a
  // fixed processor count, heavier access work means relatively *better*
  // pg2Q scaling (throughput ratio 4-proc/1-proc closer to 4).
  auto ratio_for = [&](uint64_t work) {
    SimCosts costs;
    costs.access_work = work;
    auto one = RunSimulation(Base("pg2Q", 1), costs);
    auto four = RunSimulation(Base("pg2Q", 4), costs);
    EXPECT_TRUE(one.ok());
    EXPECT_TRUE(four.ok());
    return four->throughput_tps / one->throughput_tps;
  };
  EXPECT_LT(ratio_for(800), ratio_for(8000));
}

TEST(SimCostsTest, JitterZeroIsStillDeterministic) {
  SimCosts costs;
  costs.jitter = 0;
  auto a = RunSimulation(Base("pgBat", 8), costs);
  auto b = RunSimulation(Base("pgBat", 8), costs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->accesses, b->accesses);
  EXPECT_EQ(a->lock.acquisitions, b->lock.acquisitions);
}

TEST(SimCostsTest, BatchSizeControlsAcquisitionRate) {
  // The core batching arithmetic: acquisitions per access ~ 1/batch.
  auto acq_rate = [&](size_t batch) {
    DriverConfig config = Base("pgBat", 4);
    config.system.queue_size = batch;
    config.system.batch_threshold = batch;
    auto result = RunSimulation(config);
    EXPECT_TRUE(result.ok());
    return static_cast<double>(result->lock.acquisitions) /
           static_cast<double>(result->accesses);
  };
  const double rate8 = acq_rate(8);
  const double rate64 = acq_rate(64);
  EXPECT_NEAR(rate8 / rate64, 8.0, 1.5)
      << "8x larger batches => ~8x fewer acquisitions";
}

TEST(SimCostsTest, IoWriteChargedOnlyForDirtyEvictions) {
  DriverConfig config = Base("pg2Q", 2);
  config.num_frames = 128;
  config.prewarm = false;
  config.workload.name = "dbt1";  // read-mostly: few dirty pages
  SimCosts costs;
  costs.io_read = 50'000;
  costs.io_write = 50'000;
  auto result = RunSimulation(config, costs);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->evictions, 0u);
  EXPECT_LT(result->writebacks, result->evictions)
      << "a read-mostly workload must not write back every eviction";
}

TEST(SimCostsTest, ResponseTimeAccountsForIo) {
  DriverConfig fast = Base("pgClock", 2);
  fast.num_frames = 256;
  fast.prewarm = false;
  DriverConfig slow = fast;
  SimCosts no_io;
  SimCosts with_io;
  with_io.io_read = 500'000;  // 0.5 ms per miss
  auto fast_result = RunSimulation(fast, no_io);
  auto slow_result = RunSimulation(slow, with_io);
  ASSERT_TRUE(fast_result.ok());
  ASSERT_TRUE(slow_result.ok());
  EXPECT_GT(slow_result->avg_response_us, fast_result->avg_response_us * 3);
}

TEST(SimCostsTest, StaleTagFilteringHappensInSim) {
  // With multiple processors and heavy eviction churn, some queued entries
  // must go stale between recording and commit, and the simulator must not
  // feed them to the policy (it shares the pool's §IV-B check). Indirect
  // observation: the run completes with exact residency accounting (the
  // policy CheckInvariants inside the sim would fail loudly otherwise) and
  // hit ratios stay sane.
  DriverConfig config = Base("pgBatPre", 8);
  config.num_frames = 96;
  config.prewarm = false;
  SimCosts costs;
  costs.io_read = 20'000;
  auto result = RunSimulation(config, costs);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->evictions, 0u);
  EXPECT_GT(result->hit_ratio, 0.0);
  EXPECT_LT(result->hit_ratio, 1.0);
}

}  // namespace
}  // namespace bpw
