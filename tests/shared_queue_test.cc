// Tests for the shared-queue coordinator (the §III-A design the paper
// rejected, kept as an ablation baseline).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "core/coordinator_factory.h"
#include "core/shared_queue_coordinator.h"
#include "policy/lru.h"
#include "util/random.h"
#include "workload/trace_generator.h"

namespace bpw {
namespace {

TEST(SharedQueueTest, FactoryBuildsIt) {
  SystemConfig config;
  config.policy = "2q";
  config.coordinator = "shared-queue";
  auto coordinator = CreateCoordinator(config, 64);
  ASSERT_TRUE(coordinator.ok());
  EXPECT_EQ(coordinator.value()->name(), "shared-queue");
}

TEST(SharedQueueTest, BatchesHitsLikeBpWrapper) {
  SharedQueueCoordinator::Options options;
  options.queue_size = 8;
  options.batch_threshold = 4;
  SharedQueueCoordinator coord(std::make_unique<LruPolicy>(16), options);
  auto slot = coord.RegisterThread();
  for (PageId p = 0; p < 4; ++p) {
    coord.CompleteMiss(slot.get(), p, static_cast<FrameId>(p));
  }
  const uint64_t acq_before = coord.lock_stats().acquisitions;
  coord.OnHit(slot.get(), 0, 0);
  coord.OnHit(slot.get(), 1, 1);
  coord.OnHit(slot.get(), 2, 2);
  EXPECT_EQ(coord.lock_stats().acquisitions, acq_before)
      << "below threshold: no policy-lock acquisition";
  coord.OnHit(slot.get(), 3, 3);  // threshold reached
  EXPECT_EQ(coord.lock_stats().acquisitions, acq_before + 1);
  // But the queue lock was taken on EVERY hit — the design's flaw.
  EXPECT_EQ(coord.queue_lock_acquisitions(), 4u);
}

TEST(SharedQueueTest, EveryHitTouchesTheSharedQueue) {
  SharedQueueCoordinator coord(std::make_unique<LruPolicy>(16));
  auto slot = coord.RegisterThread();
  coord.CompleteMiss(slot.get(), 1, 0);
  for (int i = 0; i < 100; ++i) coord.OnHit(slot.get(), 1, 0);
  EXPECT_EQ(coord.queue_lock_acquisitions(), 100u);
}

TEST(SharedQueueTest, MissCommitsQueueFirst) {
  SharedQueueCoordinator::Options options;
  options.queue_size = 64;
  options.batch_threshold = 32;
  SharedQueueCoordinator coord(std::make_unique<LruPolicy>(4), options);
  auto slot = coord.RegisterThread();
  for (PageId p = 0; p < 4; ++p) {
    coord.CompleteMiss(slot.get(), p, static_cast<FrameId>(p));
  }
  coord.OnHit(slot.get(), 0, 0);  // 0 becomes MRU once committed
  auto victim = coord.ChooseVictim(
      slot.get(), [](FrameId) { return true; }, 99);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->page, 1u)
      << "the queued hit on page 0 must commit before victim selection";
}

TEST(SharedQueueTest, SingleThreadedPoolBehavesLikeBpWrapper) {
  // With one thread, global arrival order == the thread's order, so the
  // shared-queue design must produce the same hit/miss sequence as
  // BP-Wrapper (and hence as lock-per-access).
  auto run = [](const char* coordinator_kind) {
    WorkloadSpec workload;
    workload.name = "zipfian";
    workload.num_pages = 512;
    workload.seed = 3;
    StorageEngine storage(512, 512);
    SystemConfig system;
    system.policy = "2q";
    system.coordinator = coordinator_kind;
    auto coordinator = CreateCoordinator(system, 128);
    EXPECT_TRUE(coordinator.ok());
    BufferPoolConfig config;
    config.num_frames = 128;
    config.page_size = 512;
    BufferPool pool(config, &storage, std::move(coordinator).value());
    auto session = pool.CreateSession();
    auto trace = CreateTrace(workload, 0);
    for (int i = 0; i < 10000; ++i) {
      auto handle = pool.FetchPage(*session, trace->Next().page);
      EXPECT_TRUE(handle.ok());
    }
    pool.FlushSession(*session);
    return std::pair{session->stats().hits, session->stats().misses};
  };
  EXPECT_EQ(run("shared-queue"), run("bp-wrapper"));
}

TEST(SharedQueueTest, ConcurrentPoolStressKeepsIntegrity) {
  StorageEngine storage(256, 512);
  SystemConfig system;
  system.policy = "2q";
  system.coordinator = "shared-queue";
  auto coordinator = CreateCoordinator(system, 64);
  ASSERT_TRUE(coordinator.ok());
  BufferPoolConfig config;
  config.num_frames = 64;
  config.page_size = 512;
  BufferPool pool(config, &storage, std::move(coordinator).value());
  std::vector<std::thread> threads;
  std::atomic<uint64_t> errors{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool, &errors, t] {
      auto session = pool.CreateSession();
      Random rng(t);
      for (int i = 0; i < 8000; ++i) {
        auto handle = pool.FetchPage(*session, rng.Uniform(256));
        if (!handle.ok()) errors.fetch_add(1);
      }
      pool.FlushSession(*session);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_TRUE(pool.CheckIntegrity().ok())
      << pool.CheckIntegrity().ToString();
}

}  // namespace
}  // namespace bpw
