// End-to-end integration tests: the full stack (storage, pool, coordinator,
// policy, workload) exercised the way a database would use it — data
// written through the buffer, evicted under pressure, flushed, and read
// back across a "restart" of the buffer pool.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "core/coordinator_factory.h"
#include "util/random.h"
#include "workload/trace_generator.h"

namespace bpw {
namespace {

constexpr size_t kPageSize = 512;

std::unique_ptr<BufferPool> MakePool(StorageEngine* storage,
                                     const std::string& system_name,
                                     size_t frames) {
  auto system = PaperSystemConfig(system_name);
  EXPECT_TRUE(system.ok());
  auto coordinator = CreateCoordinator(system.value(), frames);
  EXPECT_TRUE(coordinator.ok());
  BufferPoolConfig config;
  config.num_frames = frames;
  config.page_size = kPageSize;
  return std::make_unique<BufferPool>(config, storage,
                                      std::move(coordinator).value());
}

class IntegrationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(IntegrationTest, DataSurvivesPoolRestart) {
  StorageEngine storage(512, kPageSize);
  // Phase 1: write versioned stamps to every 3rd page through a small pool
  // (forcing evictions + write-backs mid-run), then flush and destroy.
  {
    auto pool = MakePool(&storage, GetParam(), 32);
    auto session = pool->CreateSession();
    for (PageId p = 0; p < 512; p += 3) {
      auto handle = pool->FetchPage(*session, p);
      ASSERT_TRUE(handle.ok());
      StorageEngine::StampPage(handle.value().data(), kPageSize, p, p + 1000);
      handle.value().MarkDirty();
    }
    pool->FlushSession(*session);
    ASSERT_TRUE(pool->FlushAll().ok());
    ASSERT_TRUE(pool->CheckIntegrity().ok());
  }
  // Phase 2: a fresh pool (cold cache) must read back every stamp.
  {
    auto pool = MakePool(&storage, GetParam(), 32);
    auto session = pool->CreateSession();
    for (PageId p = 0; p < 512; ++p) {
      auto handle = pool->FetchPage(*session, p);
      ASSERT_TRUE(handle.ok());
      auto [word, version] = StorageEngine::ReadStamp(handle.value().data());
      const uint64_t expect_version = p % 3 == 0 ? p + 1000 : 0;
      ASSERT_EQ(version, expect_version) << "page " << p;
      ASSERT_EQ(word, p * 0x9E3779B97F4A7C15ULL + expect_version);
    }
  }
}

TEST_P(IntegrationTest, OltpWorkloadEndToEnd) {
  // A realistic small OLTP run: 4 threads, buffer at 1/4 of the data,
  // writes and evictions throughout; finishes with a full integrity check
  // and verified write-back of the final state.
  StorageEngine storage(2048, kPageSize);
  auto pool = MakePool(&storage, GetParam(), 512);

  WorkloadSpec spec;
  spec.name = "dbt2";
  spec.num_pages = 2048;
  spec.seed = 31;

  std::vector<std::thread> threads;
  std::atomic<uint64_t> errors{0};
  for (uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&pool, &spec, &errors, t] {
      auto session = pool->CreateSession();
      auto trace = CreateTrace(spec, t);
      for (int i = 0; i < 20000; ++i) {
        const PageAccess access = trace->Next();
        auto handle = pool->FetchPage(*session, access.page);
        if (!handle.ok()) {
          errors.fetch_add(1);
          continue;
        }
        // Verify the page is the one asked for.
        auto [word, version] = StorageEngine::ReadStamp(handle.value().data());
        if (word != access.page * 0x9E3779B97F4A7C15ULL + version) {
          errors.fetch_add(1);
        }
        if (access.is_write) {
          // Refresh the stamp with the same version (content-stable writes
          // keep cross-thread verification simple).
          StorageEngine::StampPage(handle.value().data(), kPageSize,
                                   access.page, version);
          handle.value().MarkDirty();
        }
      }
      pool->FlushSession(*session);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_GT(pool->evictions(), 0u) << "test needs eviction pressure";
  EXPECT_TRUE(pool->CheckIntegrity().ok())
      << pool->CheckIntegrity().ToString();
  EXPECT_TRUE(pool->FlushAll().ok());
}

TEST_P(IntegrationTest, DropAndReloadUnderConcurrency) {
  StorageEngine storage(256, kPageSize);
  auto pool = MakePool(&storage, GetParam(), 64);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> errors{0};

  std::thread dropper([&] {
    auto session = pool->CreateSession();
    Random rng(1);
    while (!stop.load()) {
      const PageId page = rng.Uniform(256);
      // Dropping may legitimately fail (pinned / not buffered); only
      // crashes or corruption count as failures here.
      (void)pool->DropPage(*session, page);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      auto session = pool->CreateSession();
      Random rng(100 + t);
      for (int i = 0; i < 30000; ++i) {
        const PageId page = rng.Uniform(256);
        auto handle = pool->FetchPage(*session, page);
        if (!handle.ok()) {
          errors.fetch_add(1);
          continue;
        }
        auto [word, version] = StorageEngine::ReadStamp(handle.value().data());
        if (word != page * 0x9E3779B97F4A7C15ULL + version) {
          errors.fetch_add(1);
        }
      }
      pool->FlushSession(*session);
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true);
  dropper.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_TRUE(pool->CheckIntegrity().ok())
      << pool->CheckIntegrity().ToString();
}

INSTANTIATE_TEST_SUITE_P(AllSystems, IntegrationTest,
                         ::testing::Values("pgClock", "pg2Q", "pgBatPre"));

}  // namespace
}  // namespace bpw
