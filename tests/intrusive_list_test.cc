// Tests for the intrusive doubly-linked list all policies build on.
#include <gtest/gtest.h>

#include <vector>

#include "policy/intrusive_list.h"

// GCC 12 flags designated initializers that rely on the remaining members'
// default initializers; that is exactly the intent here.
#pragma GCC diagnostic ignored "-Wmissing-field-initializers"

namespace bpw {
namespace {

struct Node {
  int id = 0;
  Link a;
  Link b;  // second link: a node can be on two lists at once
};

using ListA = IntrusiveList<Node, &Node::a>;
using ListB = IntrusiveList<Node, &Node::b>;

TEST(IntrusiveListTest, StartsEmpty) {
  ListA list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.Front(), nullptr);
  EXPECT_EQ(list.Back(), nullptr);
  EXPECT_EQ(list.PopFront(), nullptr);
  EXPECT_EQ(list.PopBack(), nullptr);
}

TEST(IntrusiveListTest, PushFrontOrder) {
  ListA list;
  Node n1{.id = 1}, n2{.id = 2}, n3{.id = 3};
  list.PushFront(&n1);
  list.PushFront(&n2);
  list.PushFront(&n3);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.Front()->id, 3);
  EXPECT_EQ(list.Back()->id, 1);
}

TEST(IntrusiveListTest, PushBackOrder) {
  ListA list;
  Node n1{.id = 1}, n2{.id = 2};
  list.PushBack(&n1);
  list.PushBack(&n2);
  EXPECT_EQ(list.Front()->id, 1);
  EXPECT_EQ(list.Back()->id, 2);
}

TEST(IntrusiveListTest, TraversalBothDirections) {
  ListA list;
  Node nodes[5];
  for (int i = 0; i < 5; ++i) {
    nodes[i].id = i;
    list.PushBack(&nodes[i]);
  }
  int expect = 0;
  for (Node* n = list.Front(); n != nullptr; n = list.Next(n)) {
    EXPECT_EQ(n->id, expect++);
  }
  EXPECT_EQ(expect, 5);
  expect = 4;
  for (Node* n = list.Back(); n != nullptr; n = list.Prev(n)) {
    EXPECT_EQ(n->id, expect--);
  }
  EXPECT_EQ(expect, -1);
}

TEST(IntrusiveListTest, RemoveMiddle) {
  ListA list;
  Node n1{.id = 1}, n2{.id = 2}, n3{.id = 3};
  list.PushBack(&n1);
  list.PushBack(&n2);
  list.PushBack(&n3);
  list.Remove(&n2);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.Next(&n1)->id, 3);
  EXPECT_FALSE(n2.a.linked());
}

TEST(IntrusiveListTest, RemoveOnlyElement) {
  ListA list;
  Node n{.id = 9};
  list.PushFront(&n);
  list.Remove(&n);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, MoveToFrontAndBack) {
  ListA list;
  Node n1{.id = 1}, n2{.id = 2}, n3{.id = 3};
  list.PushBack(&n1);
  list.PushBack(&n2);
  list.PushBack(&n3);
  list.MoveToFront(&n3);
  EXPECT_EQ(list.Front()->id, 3);
  list.MoveToBack(&n3);
  EXPECT_EQ(list.Back()->id, 3);
  EXPECT_EQ(list.size(), 3u);
}

TEST(IntrusiveListTest, PopFrontAndBack) {
  ListA list;
  Node n1{.id = 1}, n2{.id = 2}, n3{.id = 3};
  list.PushBack(&n1);
  list.PushBack(&n2);
  list.PushBack(&n3);
  EXPECT_EQ(list.PopFront()->id, 1);
  EXPECT_EQ(list.PopBack()->id, 3);
  EXPECT_EQ(list.PopFront()->id, 2);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, InsertBefore) {
  ListA list;
  Node n1{.id = 1}, n3{.id = 3}, n2{.id = 2};
  list.PushBack(&n1);
  list.PushBack(&n3);
  list.InsertBefore(&n3, &n2);
  EXPECT_EQ(list.Next(&n1)->id, 2);
  EXPECT_EQ(list.Next(&n2)->id, 3);
  EXPECT_EQ(list.size(), 3u);
}

TEST(IntrusiveListTest, NodeOnTwoListsIndependently) {
  ListA la;
  ListB lb;
  Node n1{.id = 1}, n2{.id = 2};
  la.PushBack(&n1);
  la.PushBack(&n2);
  lb.PushFront(&n1);  // only n1 is on list B
  EXPECT_EQ(la.size(), 2u);
  EXPECT_EQ(lb.size(), 1u);
  la.Remove(&n1);
  EXPECT_EQ(lb.Front(), &n1);  // removal from A does not disturb B
  EXPECT_EQ(lb.size(), 1u);
}

TEST(IntrusiveListTest, ContainsScan) {
  ListA list;
  Node in{.id = 1}, out{.id = 2};
  list.PushBack(&in);
  EXPECT_TRUE(list.Contains(&in));
  EXPECT_FALSE(list.Contains(&out));
}

TEST(IntrusiveListTest, ClearResets) {
  ListA list;
  Node n1, n2;
  list.PushBack(&n1);
  list.PushBack(&n2);
  list.Clear();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
}

TEST(IntrusiveListTest, ReuseAfterRemove) {
  ListA list;
  Node n{.id = 5};
  for (int round = 0; round < 10; ++round) {
    list.PushFront(&n);
    EXPECT_EQ(list.size(), 1u);
    list.Remove(&n);
    EXPECT_TRUE(list.empty());
  }
}

TEST(IntrusiveListTest, LargeListStressOrder) {
  ListA list;
  std::vector<Node> nodes(1000);
  for (int i = 0; i < 1000; ++i) {
    nodes[i].id = i;
    list.PushBack(&nodes[i]);
  }
  // Remove evens.
  for (int i = 0; i < 1000; i += 2) list.Remove(&nodes[i]);
  EXPECT_EQ(list.size(), 500u);
  int expect = 1;
  for (Node* n = list.Front(); n != nullptr; n = list.Next(n)) {
    EXPECT_EQ(n->id, expect);
    expect += 2;
  }
}

}  // namespace
}  // namespace bpw
