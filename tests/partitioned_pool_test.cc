// Tests for the distributed-lock (partitioned) baseline of §V-A.
//
// The structural tests run as a value-parameterized sweep over partition
// counts {1, 3, 64}: the degenerate single partition (equivalent to one
// serialized pool), a count that does not divide the frame budget (the
// last partition absorbs the rounding remainder), and more partitions
// than some pools have frames for (down to one frame per partition).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "buffer/partitioned_pool.h"
#include "util/random.h"

namespace bpw {
namespace {

constexpr size_t kPageSize = 512;

SystemConfig SerializedLru() {
  SystemConfig system;
  system.policy = "lru";
  system.coordinator = "serialized";
  return system;
}

// PartitionedPool::PartitionFor's hash, mirrored so tests can construct
// colliding / disjoint page sets (same multiplicative family as the page
// table, different stream).
size_t PartitionOf(PageId page, size_t num_partitions) {
  return (page * 0xC2B2AE3D27D4EB4FULL >> 33) % num_partitions;
}

class PartitionedPoolSweep : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionedPoolSweep,
                         ::testing::Values(1, 3, 64),
                         ::testing::PrintToStringParamName());

TEST_P(PartitionedPoolSweep, SplitsFramesAcrossPartitions) {
  const size_t partitions = GetParam();
  StorageEngine storage(1024, kPageSize);
  BufferPoolConfig config;
  // 100 % 3 != 0 and 100 % 64 != 0: the remainder lands in the last
  // partition and the sum must still be exact.
  config.num_frames = 100;
  config.page_size = kPageSize;
  PartitionedPool pool(config, partitions, SerializedLru(), &storage);
  EXPECT_EQ(pool.num_partitions(), partitions);
  size_t total = 0;
  for (size_t i = 0; i < partitions; ++i) {
    const size_t frames = pool.partition(i).num_frames();
    EXPECT_GE(frames, 1u) << "partition " << i << " has no frames";
    total += frames;
  }
  EXPECT_EQ(total, 100u);
}

TEST_P(PartitionedPoolSweep, FetchWorksAcrossPartitions) {
  const size_t partitions = GetParam();
  StorageEngine storage(1024, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 64;  // at 64 partitions: one frame each
  config.page_size = kPageSize;
  PartitionedPool pool(config, partitions, SerializedLru(), &storage);
  auto session = pool.CreateSession();
  for (PageId p = 0; p < 200; ++p) {
    auto handle = pool.FetchPage(*session, p);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    auto [word, version] = StorageEngine::ReadStamp(handle.value().data());
    EXPECT_EQ(word, p * 0x9E3779B97F4A7C15ULL + version);
  }
  EXPECT_GT(session->stats().misses, 0u);
}

TEST_P(PartitionedPoolSweep, SamePageSamePartitionAcrossReloads) {
  // Mr.LRU's property: hashing keeps a page in the same partition, so
  // reloads find their history. Verified indirectly: a page fetched twice
  // is a hit the second time. Frames scale with the partition count so no
  // partition can overflow however the 32 pages hash.
  const size_t partitions = GetParam();
  StorageEngine storage(1024, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 33 * partitions;
  config.page_size = kPageSize;
  PartitionedPool pool(config, partitions, SerializedLru(), &storage);
  auto session = pool.CreateSession();
  for (PageId p = 0; p < 32; ++p) {
    auto h = pool.FetchPage(*session, p);
    ASSERT_TRUE(h.ok());
  }
  const auto stats_before = session->stats();
  for (PageId p = 0; p < 32; ++p) {
    auto h = pool.FetchPage(*session, p);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(session->stats().misses, stats_before.misses)
      << "second pass must be all hits";
}

TEST_P(PartitionedPoolSweep, LockStatsAggregateOverPartitions) {
  const size_t partitions = GetParam();
  StorageEngine storage(1024, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 64;
  config.page_size = kPageSize;
  PartitionedPool pool(config, partitions, SerializedLru(), &storage);
  auto session = pool.CreateSession();
  for (PageId p = 0; p < 100; ++p) {
    auto h = pool.FetchPage(*session, p);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_GT(pool.lock_stats().acquisitions, 0u);
  pool.ResetLockStats();
  EXPECT_EQ(pool.lock_stats().acquisitions, 0u);
}

TEST_P(PartitionedPoolSweep, ConcurrentMixedTraffic) {
  const size_t partitions = GetParam();
  StorageEngine storage(2048, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 128;
  config.page_size = kPageSize;
  PartitionedPool pool(config, partitions, SerializedLru(), &storage);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> errors{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool, &errors, t] {
      auto session = pool.CreateSession();
      Random rng(t);
      for (int i = 0; i < 5000; ++i) {
        auto h = pool.FetchPage(*session, rng.Uniform(2048));
        if (!h.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
}

TEST(PartitionedPoolTest, SkewedAccessConcentratesOnOnePartitionLock) {
  // The paper's criticism (2): hot pages still contend on one partition.
  // Hammer a single page from many threads and verify one partition took
  // all the acquisitions.
  StorageEngine storage(1024, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 64;
  config.page_size = kPageSize;
  PartitionedPool pool(config, 4, SerializedLru(), &storage);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool] {
      auto session = pool.CreateSession();
      for (int i = 0; i < 2000; ++i) {
        auto h = pool.FetchPage(*session, 42);
        ASSERT_TRUE(h.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  size_t partitions_with_traffic = 0;
  for (size_t i = 0; i < pool.num_partitions(); ++i) {
    if (pool.partition(i).coordinator().lock_stats().acquisitions > 0) {
      ++partitions_with_traffic;
    }
  }
  EXPECT_EQ(partitions_with_traffic, 1u);
}

TEST(PartitionedPoolTest, HashCollisionsShareOnePartition) {
  // Partition-hash collision edge case: pages that collide under the
  // partition hash must land in (and contend on) exactly one sub-pool,
  // leaving every other partition untouched.
  constexpr size_t kPartitions = 64;
  const size_t target = PartitionOf(0, kPartitions);
  std::vector<PageId> colliding{0};
  for (PageId p = 1; colliding.size() < 8 && p < 4096; ++p) {
    if (PartitionOf(p, kPartitions) == target) colliding.push_back(p);
  }
  ASSERT_EQ(colliding.size(), 8u)
      << "hash too uniform to find 8 collisions in 4096 pages?";

  StorageEngine storage(4096, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 512;  // 8 frames per partition: all 8 pages fit
  config.page_size = kPageSize;
  PartitionedPool pool(config, kPartitions, SerializedLru(), &storage);
  auto session = pool.CreateSession();
  for (PageId p : colliding) {
    auto h = pool.FetchPage(*session, p);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
  }
  // The colliding set fits its partition, so the second pass is all hits —
  // collisions cost locality, not correctness.
  const auto stats_before = session->stats();
  for (PageId p : colliding) {
    auto h = pool.FetchPage(*session, p);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(session->stats().misses, stats_before.misses);
  for (size_t i = 0; i < kPartitions; ++i) {
    const auto acquisitions =
        pool.partition(i).coordinator().lock_stats().acquisitions;
    if (i == target) {
      EXPECT_GT(acquisitions, 0u);
    } else {
      EXPECT_EQ(acquisitions, 0u) << "partition " << i
                                  << " saw traffic for a colliding set";
    }
  }
}

TEST(PartitionedPoolTest, HashCollisionsThrashAOneFramePartition) {
  // The same collision set against one-frame partitions: every access
  // evicts the previous colliding page, so the whole working set thrashes
  // inside a single partition while 63 partitions sit idle — the paper's
  // "localized history" criticism in its sharpest form.
  constexpr size_t kPartitions = 64;
  const size_t target = PartitionOf(0, kPartitions);
  PageId other = 0;
  for (PageId p = 1; p < 4096; ++p) {
    if (PartitionOf(p, kPartitions) == target) {
      other = p;
      break;
    }
  }
  ASSERT_NE(other, 0u);

  StorageEngine storage(4096, kPageSize);
  BufferPoolConfig config;
  config.num_frames = kPartitions;  // exactly one frame per partition
  config.page_size = kPageSize;
  PartitionedPool pool(config, kPartitions, SerializedLru(), &storage);
  ASSERT_EQ(pool.partition(target).num_frames(), 1u);
  auto session = pool.CreateSession();
  constexpr int kRounds = 20;
  for (int i = 0; i < kRounds; ++i) {
    // One handle at a time: a live handle pins the partition's only frame.
    {
      auto a = pool.FetchPage(*session, 0);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
    }
    {
      auto b = pool.FetchPage(*session, other);
      ASSERT_TRUE(b.ok()) << b.status().ToString();
    }
  }
  EXPECT_EQ(session->stats().misses, 2u * kRounds)
      << "two colliding pages through a one-frame partition must miss on "
         "every access";
  EXPECT_EQ(session->stats().hits, 0u);
}

}  // namespace
}  // namespace bpw
