// Tests for the distributed-lock (partitioned) baseline of §V-A.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "buffer/partitioned_pool.h"
#include "util/random.h"

namespace bpw {
namespace {

constexpr size_t kPageSize = 512;

SystemConfig SerializedLru() {
  SystemConfig system;
  system.policy = "lru";
  system.coordinator = "serialized";
  return system;
}

TEST(PartitionedPoolTest, SplitsFramesAcrossPartitions) {
  StorageEngine storage(1024, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 100;
  config.page_size = kPageSize;
  PartitionedPool pool(config, 4, SerializedLru(), &storage);
  EXPECT_EQ(pool.num_partitions(), 4u);
  size_t total = 0;
  for (size_t i = 0; i < 4; ++i) total += pool.partition(i).num_frames();
  EXPECT_EQ(total, 100u);
}

TEST(PartitionedPoolTest, FetchWorksAcrossPartitions) {
  StorageEngine storage(1024, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 64;
  config.page_size = kPageSize;
  PartitionedPool pool(config, 8, SerializedLru(), &storage);
  auto session = pool.CreateSession();
  for (PageId p = 0; p < 200; ++p) {
    auto handle = pool.FetchPage(*session, p);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    auto [word, version] = StorageEngine::ReadStamp(handle.value().data());
    EXPECT_EQ(word, p * 0x9E3779B97F4A7C15ULL + version);
  }
  EXPECT_GT(session->stats().misses, 0u);
}

TEST(PartitionedPoolTest, SamePageSamePartitionAcrossReloads) {
  // Mr.LRU's property: hashing keeps a page in the same partition, so
  // reloads find their history. Verified indirectly: a page fetched twice
  // is a hit the second time.
  StorageEngine storage(1024, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 64;
  config.page_size = kPageSize;
  PartitionedPool pool(config, 8, SerializedLru(), &storage);
  auto session = pool.CreateSession();
  for (PageId p = 0; p < 32; ++p) {
    auto h = pool.FetchPage(*session, p);
    ASSERT_TRUE(h.ok());
  }
  const auto stats_before = session->stats();
  for (PageId p = 0; p < 32; ++p) {
    auto h = pool.FetchPage(*session, p);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(session->stats().misses, stats_before.misses)
      << "second pass must be all hits";
}

TEST(PartitionedPoolTest, LockStatsAggregateOverPartitions) {
  StorageEngine storage(1024, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 64;
  config.page_size = kPageSize;
  PartitionedPool pool(config, 4, SerializedLru(), &storage);
  auto session = pool.CreateSession();
  for (PageId p = 0; p < 100; ++p) {
    auto h = pool.FetchPage(*session, p);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_GT(pool.lock_stats().acquisitions, 0u);
  pool.ResetLockStats();
  EXPECT_EQ(pool.lock_stats().acquisitions, 0u);
}

TEST(PartitionedPoolTest, SkewedAccessConcentratesOnOnePartitionLock) {
  // The paper's criticism (2): hot pages still contend on one partition.
  // Hammer a single page from many threads and verify one partition took
  // all the acquisitions.
  StorageEngine storage(1024, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 64;
  config.page_size = kPageSize;
  PartitionedPool pool(config, 4, SerializedLru(), &storage);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool] {
      auto session = pool.CreateSession();
      for (int i = 0; i < 2000; ++i) {
        auto h = pool.FetchPage(*session, 42);
        ASSERT_TRUE(h.ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  size_t partitions_with_traffic = 0;
  for (size_t i = 0; i < pool.num_partitions(); ++i) {
    if (pool.partition(i).coordinator().lock_stats().acquisitions > 0) {
      ++partitions_with_traffic;
    }
  }
  EXPECT_EQ(partitions_with_traffic, 1u);
}

TEST(PartitionedPoolTest, ConcurrentMixedTraffic) {
  StorageEngine storage(2048, kPageSize);
  BufferPoolConfig config;
  config.num_frames = 128;
  config.page_size = kPageSize;
  PartitionedPool pool(config, 8, SerializedLru(), &storage);
  std::vector<std::thread> threads;
  std::atomic<uint64_t> errors{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool, &errors, t] {
      auto session = pool.CreateSession();
      Random rng(t);
      for (int i = 0; i < 5000; ++i) {
        auto h = pool.FetchPage(*session, rng.Uniform(2048));
        if (!h.ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0u);
}

}  // namespace
}  // namespace bpw
