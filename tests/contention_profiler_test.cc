// Tests for the contention profiler: per-site aggregation across threads,
// histogram determinism, nested-phase exclusive accounting, waiter depth,
// reset semantics, and the ContentionLock/SpinLock recording hooks.
//
// The profiler registry is process-global, so every test uses its own
// unique site labels and brackets itself with ResetProfiler() +
// SetProfilerEnabled(); rows from other tests may exist in a snapshot but
// are zeroed and never share labels.
#include "obs/contention_profiler.h"

#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/profile_export.h"
#include "sync/contention_lock.h"
#include "sync/spinlock.h"
#include "util/clock.h"

namespace bpw {
namespace obs {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetProfilerEnabled(true);
    ResetProfiler();
  }
  void TearDown() override { SetProfilerEnabled(false); }
};

TEST_F(ProfilerTest, RegistrationDedupesByLabelAndKind) {
  const ProfSiteId a = RegisterProfSite("f.cc", 1, "test.dedupe",
                                        ProfSiteKind::kLock);
  const ProfSiteId b = RegisterProfSite("g.cc", 99, "test.dedupe",
                                        ProfSiteKind::kLock);
  ASSERT_NE(a, kInvalidProfSite);
  EXPECT_EQ(a, b);
  // Same label, different kind: a distinct site.
  const ProfSiteId c = RegisterProfSite("f.cc", 2, "test.dedupe",
                                        ProfSiteKind::kPhase);
  EXPECT_NE(a, c);
}

TEST_F(ProfilerTest, PerSiteAggregationAcrossThreads) {
  const ProfSiteId site = ProfRootPath(RegisterProfSite(
      "f.cc", 10, "test.aggregation", ProfSiteKind::kLock));
  ASSERT_NE(site, kInvalidProfSite);

  constexpr int kThreads = 8;
  constexpr int kUncontended = 500;
  constexpr int kContended = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([site] {
      for (int i = 0; i < kUncontended; ++i) {
        ProfRecordAcquire(site, /*contended=*/false, 0);
      }
      for (int i = 0; i < kContended; ++i) {
        ProfRecordAcquire(site, /*contended=*/true, /*wait_nanos=*/1000);
        ProfRecordHold(site, /*hold_nanos=*/200);
      }
    });
  }
  for (auto& t : threads) t.join();

  const ProfSnapshot snap = CollectProfSnapshot();
  const ProfSiteSnapshot* row = snap.Find("test.aggregation");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->kind, ProfSiteKind::kLock);
  EXPECT_EQ(row->uncontended, uint64_t{kThreads} * kUncontended);
  EXPECT_EQ(row->contended, uint64_t{kThreads} * kContended);
  EXPECT_EQ(row->wait_nanos, uint64_t{kThreads} * kContended * 1000);
  EXPECT_EQ(row->hold_nanos, uint64_t{kThreads} * kContended * 200);
  // The wait histogram samples contended acquisitions only.
  EXPECT_EQ(row->wait_hist.count(), uint64_t{kThreads} * kContended);
  EXPECT_EQ(row->hold_hist.count(), uint64_t{kThreads} * kContended);
}

TEST_F(ProfilerTest, HistogramMergeIsDeterministic) {
  const ProfSiteId site = ProfRootPath(RegisterProfSite(
      "f.cc", 20, "test.hist_determinism", ProfSiteKind::kLock));
  ASSERT_NE(site, kInvalidProfSite);

  // Record a spread of hold times from several threads; the sharded bucket
  // counts must merge into exactly the same distribution a single-threaded
  // reference Histogram records.
  const std::vector<uint64_t> values = {1,    7,     64,     100,   1023,
                                        4096, 65537, 100000, 999999};
  Histogram reference;
  constexpr int kThreads = 4;
  for (int rep = 0; rep < kThreads; ++rep) {
    for (uint64_t v : values) reference.Record(v);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&values, site] {
      for (uint64_t v : values) ProfRecordHold(site, v);
    });
  }
  for (auto& t : threads) t.join();

  const ProfSnapshot a = CollectProfSnapshot();
  const ProfSnapshot b = CollectProfSnapshot();
  const ProfSiteSnapshot* row_a = a.Find("test.hist_determinism");
  const ProfSiteSnapshot* row_b = b.Find("test.hist_determinism");
  ASSERT_NE(row_a, nullptr);
  ASSERT_NE(row_b, nullptr);

  // The sharded counts merge into exactly the reference's buckets —
  // Record(v) and the profiler's atomic BucketFor(v) increment land in the
  // same bucket. (Percentiles are compared between the two snapshots, not
  // against the reference: reconstruction via Add(BucketLow) is
  // bucket-exact but interpolates against bucket bounds, not the original
  // min/max.)
  EXPECT_EQ(row_a->hold_hist.count(), reference.count());
  for (int bucket = 0; bucket < Histogram::kNumBuckets; ++bucket) {
    ASSERT_EQ(row_a->hold_hist.BucketCount(bucket),
              reference.BucketCount(bucket))
        << "bucket " << bucket;
    ASSERT_EQ(row_a->hold_hist.BucketCount(bucket),
              row_b->hold_hist.BucketCount(bucket))
        << "bucket " << bucket;
  }
  // Collecting twice is deterministic down to the percentile queries.
  for (double p : {50.0, 90.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(row_a->hold_hist.Percentile(p),
                     row_b->hold_hist.Percentile(p))
        << "p" << p;
  }
}

// The phase-macro tests need BPW_PROF_PHASE to expand to a real scope; under
// -DBPW_PROF=0 the macro is a statement no-op (covered by prof_disabled_test)
// and there is nothing to observe, so they compile away with it.
#if BPW_PROF

TEST_F(ProfilerTest, NestedPhaseExcludesChildFromParentExclusive) {
  {
    BPW_PROF_PHASE("test.outer");
    SpinWork(20000);
    {
      BPW_PROF_PHASE("test.inner");
      SpinWork(20000);
    }
    SpinWork(20000);
  }

  const ProfSnapshot snap = CollectProfSnapshot();
  const ProfSiteSnapshot* outer = snap.Find("test.outer");
  const ProfSiteSnapshot* inner = snap.Find("test.outer;test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->kind, ProfSiteKind::kPhase);
  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(outer->uncontended, 1u);  // one entry each
  EXPECT_EQ(inner->uncontended, 1u);

  // Phase rows: wait = inclusive, hold = exclusive. With exactly one entry
  // per phase the accounting identity is exact, not approximate.
  EXPECT_GT(inner->wait_nanos, 0u);
  EXPECT_EQ(outer->hold_nanos, outer->wait_nanos - inner->wait_nanos);
  // The inner phase has no children: inclusive == exclusive.
  EXPECT_EQ(inner->hold_nanos, inner->wait_nanos);
}

TEST_F(ProfilerTest, SamePhaseUnderDifferentParentsAccumulatesSeparately) {
  {
    BPW_PROF_PHASE("test.parent_a");
    BPW_PROF_PHASE("test.shared_child");
  }
  {
    BPW_PROF_PHASE("test.parent_b");
    BPW_PROF_PHASE("test.shared_child");
  }
  const ProfSnapshot snap = CollectProfSnapshot();
  EXPECT_NE(snap.Find("test.parent_a;test.shared_child"), nullptr);
  EXPECT_NE(snap.Find("test.parent_b;test.shared_child"), nullptr);
}

#endif  // BPW_PROF

TEST_F(ProfilerTest, MaxWaiterDepthLatchesTheHighWaterMark) {
  const ProfSiteId site = ProfRootPath(RegisterProfSite(
      "f.cc", 30, "test.waiters", ProfSiteKind::kLock));
  ASSERT_NE(site, kInvalidProfSite);

  ProfWaiterEnter(site);
  ProfWaiterEnter(site);
  ProfWaiterEnter(site);
  ProfWaiterExit(site);
  ProfWaiterExit(site);
  ProfWaiterExit(site);
  ProfWaiterEnter(site);  // lower second peak must not move the max
  ProfWaiterExit(site);

  const ProfSnapshot snap = CollectProfSnapshot();
  const ProfSiteSnapshot* row = snap.Find("test.waiters");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->max_waiters, 3u);
}

TEST_F(ProfilerTest, ResetZeroesAccumulatorsButKeepsRegistrations) {
  const ProfSiteId site = ProfRootPath(RegisterProfSite(
      "f.cc", 40, "test.reset", ProfSiteKind::kLock));
  ProfRecordAcquire(site, true, 500);
  ProfRecordHold(site, 100);
  ResetProfiler();
  const ProfSnapshot snap = CollectProfSnapshot();
  const ProfSiteSnapshot* row = snap.Find("test.reset");
  ASSERT_NE(row, nullptr);  // registration survives
  EXPECT_EQ(row->events(), 0u);
  EXPECT_EQ(row->wait_nanos, 0u);
  EXPECT_EQ(row->hold_nanos, 0u);
  EXPECT_EQ(row->max_waiters, 0u);
  EXPECT_EQ(row->wait_hist.count(), 0u);
}

TEST_F(ProfilerTest, DisabledProfilerRecordsNothing) {
  const ProfSiteId site = ProfRootPath(RegisterProfSite(
      "f.cc", 50, "test.disabled", ProfSiteKind::kLock));
  SetProfilerEnabled(false);
  ProfRecordAcquire(site, true, 500);
  ProfRecordHold(site, 100);
  {
    BPW_PROF_PHASE("test.disabled_phase");
  }
  SetProfilerEnabled(true);
  const ProfSnapshot snap = CollectProfSnapshot();
  const ProfSiteSnapshot* row = snap.Find("test.disabled");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->events(), 0u);
  EXPECT_EQ(snap.Find("test.disabled_phase"), nullptr);
}

TEST_F(ProfilerTest, ContentionLockRecordsThroughItsBinding) {
  ContentionLock lock(LockInstrumentation::kTiming);
  const ProfSiteId site = ProfRootPath(RegisterProfSite(
      "f.cc", 60, "test.contention_lock", ProfSiteKind::kLock));
  lock.BindProfSite(site);

  constexpr int kAcquisitions = 100;
  for (int i = 0; i < kAcquisitions; ++i) {
    lock.Lock();
    lock.Unlock();
  }
  ASSERT_TRUE(lock.TryLock());
  lock.Unlock();

  const ProfSnapshot snap = CollectProfSnapshot();
  const ProfSiteSnapshot* row = snap.Find("test.contention_lock");
  ASSERT_NE(row, nullptr);
#if BPW_PROF
  EXPECT_EQ(row->events(), uint64_t{kAcquisitions} + 1);
  EXPECT_EQ(row->contended, 0u);  // single-threaded: never blocked
  EXPECT_GT(row->hold_nanos, 0u);
  // Profiler hold time and the lock's own kTiming accounting measure the
  // same critical sections with the same clock reads.
  EXPECT_EQ(row->hold_nanos, lock.stats().hold_nanos);
#else
  EXPECT_EQ(row->events(), 0u);  // hooks compiled out
#endif
}

TEST_F(ProfilerTest, ContentionLockBlockedAcquisitionCountsAsContended) {
  ContentionLock lock(LockInstrumentation::kTiming);
  const ProfSiteId site = ProfRootPath(RegisterProfSite(
      "f.cc", 65, "test.contended_lock", ProfSiteKind::kLock));
  lock.BindProfSite(site);

  lock.Lock();
  std::thread blocked([&lock] {
    lock.Lock();
    lock.Unlock();
  });
  // Give the second thread time to fail its immediate attempt and block.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.Unlock();
  blocked.join();

  const ProfSnapshot snap = CollectProfSnapshot();
  const ProfSiteSnapshot* row = snap.Find("test.contended_lock");
  ASSERT_NE(row, nullptr);
#if BPW_PROF
  EXPECT_EQ(row->events(), 2u);
  EXPECT_EQ(row->contended, 1u);
  EXPECT_GT(row->wait_nanos, 0u);
  EXPECT_GE(row->max_waiters, 1u);
  EXPECT_EQ(row->wait_nanos, lock.stats().wait_nanos);
#endif
}

TEST_F(ProfilerTest, SpinLockRecordsThroughItsBinding) {
  SpinLock lock;
  const ProfSiteId site = ProfRootPath(RegisterProfSite(
      "f.cc", 70, "test.spinlock", ProfSiteKind::kLock));
  lock.BindProfSite(site);

  for (int i = 0; i < 10; ++i) {
    SpinLockGuard guard(lock);
  }

  const ProfSnapshot snap = CollectProfSnapshot();
  const ProfSiteSnapshot* row = snap.Find("test.spinlock");
  ASSERT_NE(row, nullptr);
#if BPW_PROF
  EXPECT_EQ(row->uncontended, 10u);
  EXPECT_GT(row->hold_nanos, 0u);
#else
  EXPECT_EQ(row->events(), 0u);
#endif
}

TEST_F(ProfilerTest, TotalLockNanosSumsLockRowsOnly) {
  const ProfSiteId site = ProfRootPath(RegisterProfSite(
      "f.cc", 80, "test.totals", ProfSiteKind::kLock));
  ProfRecordAcquire(site, true, 300);
  ProfRecordHold(site, 700);
  {
    BPW_PROF_PHASE("test.totals_phase");
    SpinWork(1000);
  }
  const ProfSnapshot snap = CollectProfSnapshot();
  // Phases contribute nothing to the Fig. 2 lock-time total.
  EXPECT_EQ(snap.TotalLockNanos(), 1000u);
}

}  // namespace
}  // namespace obs
}  // namespace bpw
