// Tests for SerializedCoordinator, ClockCoordinator, and the factories
// (including the paper's five named systems of Table I).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/clock_coordinator.h"
#include "core/coordinator_factory.h"
#include "core/serialized_coordinator.h"
#include "policy/lru.h"

namespace bpw {
namespace {

TEST(SerializedCoordinatorTest, EveryHitAcquiresTheLock) {
  SerializedCoordinator coord(std::make_unique<LruPolicy>(8));
  auto slot = coord.RegisterThread();
  coord.CompleteMiss(slot.get(), 1, 0);
  for (int i = 0; i < 10; ++i) coord.OnHit(slot.get(), 1, 0);
  // 1 miss + 10 hits = 11 acquisitions: the paper's "one lock-acquisition
  // per page access" baseline behaviour.
  EXPECT_EQ(coord.lock_stats().acquisitions, 11u);
}

TEST(SerializedCoordinatorTest, OperationsReachThePolicy) {
  SerializedCoordinator coord(std::make_unique<LruPolicy>(4));
  auto slot = coord.RegisterThread();
  for (PageId p = 0; p < 4; ++p) {
    coord.CompleteMiss(slot.get(), p, static_cast<FrameId>(p));
  }
  const ReplacementPolicy& policy = coord.policy();
  policy.AssertExclusiveAccess();  // single-threaded test: no races possible
  EXPECT_EQ(policy.resident_count(), 4u);
  coord.OnHit(slot.get(), 0, 0);  // 0 becomes MRU
  auto victim = coord.ChooseVictim(
      slot.get(), [](FrameId) { return true; }, 9);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->page, 1u);
  coord.OnErase(slot.get(), 2, 2);
  EXPECT_EQ(policy.resident_count(), 2u);
}

TEST(SerializedCoordinatorTest, PrefetchOptionChangesNameOnly) {
  SerializedCoordinator::Options options;
  options.prefetch = true;
  SerializedCoordinator with(std::make_unique<LruPolicy>(4), options);
  SerializedCoordinator without(std::make_unique<LruPolicy>(4));
  EXPECT_EQ(with.name(), "serialized+pre");
  EXPECT_EQ(without.name(), "serialized");
  // Behaviour identical.
  auto sa = with.RegisterThread();
  auto sb = without.RegisterThread();
  for (PageId p = 0; p < 4; ++p) {
    with.CompleteMiss(sa.get(), p, static_cast<FrameId>(p));
    without.CompleteMiss(sb.get(), p, static_cast<FrameId>(p));
  }
  with.OnHit(sa.get(), 2, 2);
  without.OnHit(sb.get(), 2, 2);
  auto va = with.ChooseVictim(sa.get(), [](FrameId) { return true; }, 9);
  auto vb = without.ChooseVictim(sb.get(), [](FrameId) { return true; }, 9);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(vb.ok());
  EXPECT_EQ(va->page, vb->page);
}

TEST(ClockCoordinatorTest, HitsTakeNoLock) {
  ClockCoordinator coord(std::make_unique<ClockPolicy>(8));
  auto slot = coord.RegisterThread();
  coord.CompleteMiss(slot.get(), 1, 0);
  const uint64_t acq_after_miss = coord.lock_stats().acquisitions;
  for (int i = 0; i < 1000; ++i) coord.OnHit(slot.get(), 1, 0);
  EXPECT_EQ(coord.lock_stats().acquisitions, acq_after_miss)
      << "clock hits must be lock-free (the paper's pgClock property)";
}

TEST(ClockCoordinatorTest, RefBitProtectsHitPage) {
  ClockCoordinator coord(std::make_unique<ClockPolicy>(3));
  auto slot = coord.RegisterThread();
  for (PageId p = 1; p <= 3; ++p) {
    coord.CompleteMiss(slot.get(), p, static_cast<FrameId>(p - 1));
  }
  // First sweep clears all bits and evicts page 1; the hand rests on
  // frame 1 (page 2).
  auto v1 = coord.ChooseVictim(slot.get(), [](FrameId) { return true; }, 4);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->page, 1u);
  coord.CompleteMiss(slot.get(), 4, v1->frame);
  // Page 3 gets referenced; page 2 does not. The next sweep starts at
  // page 2 (ref clear) and must take it, leaving the hit page 3 alone.
  coord.OnHit(slot.get(), 3, 2);
  auto v2 = coord.ChooseVictim(slot.get(), [](FrameId) { return true; }, 5);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->page, 2u);
  const ReplacementPolicy& policy = coord.policy();
  policy.AssertExclusiveAccess();  // single-threaded test: no races possible
  EXPECT_TRUE(policy.IsResident(3));
}

TEST(ClockCoordinatorTest, GClockVariantWorks) {
  ClockCoordinator coord(std::make_unique<GClockPolicy>(4));
  auto slot = coord.RegisterThread();
  for (PageId p = 0; p < 4; ++p) {
    coord.CompleteMiss(slot.get(), p, static_cast<FrameId>(p));
  }
  for (int i = 0; i < 10; ++i) coord.OnHit(slot.get(), 2, 2);
  for (int i = 0; i < 3; ++i) {
    auto v = coord.ChooseVictim(slot.get(), [](FrameId) { return true; }, 9);
    ASSERT_TRUE(v.ok());
    EXPECT_NE(v->page, 2u);
    coord.CompleteMiss(slot.get(), 100 + i, v->frame);
  }
}

TEST(ClockCoordinatorTest, ConcurrentHitsWithEvictions) {
  ClockCoordinator coord(std::make_unique<ClockPolicy>(32));
  {
    auto slot = coord.RegisterThread();
    for (PageId p = 0; p < 32; ++p) {
      coord.CompleteMiss(slot.get(), p, static_cast<FrameId>(p));
    }
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&coord, &stop] {
      auto slot = coord.RegisterThread();
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        coord.OnHit(slot.get(), i % 32, static_cast<FrameId>(i % 32));
        ++i;
      }
    });
  }
  auto slot = coord.RegisterThread();
  for (int i = 0; i < 3000; ++i) {
    auto v = coord.ChooseVictim(slot.get(), [](FrameId) { return true; },
                                1000 + i);
    ASSERT_TRUE(v.ok());
    coord.CompleteMiss(slot.get(), 1000 + i, v->frame);
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  const ReplacementPolicy& policy = coord.policy();
  policy.AssertExclusiveAccess();  // workers joined: exclusive again
  EXPECT_EQ(policy.resident_count(), 32u);
  EXPECT_TRUE(policy.CheckInvariants().ok());
}

TEST(CoordinatorFactoryTest, BuildsAllKinds) {
  for (const char* kind : {"serialized", "bp-wrapper", "combining"}) {
    SystemConfig config;
    config.policy = "2q";
    config.coordinator = kind;
    auto coord = CreateCoordinator(config, 64);
    ASSERT_TRUE(coord.ok()) << kind;
  }
  SystemConfig clock_config;
  clock_config.policy = "clock";
  clock_config.coordinator = "clock-lockfree";
  EXPECT_TRUE(CreateCoordinator(clock_config, 64).ok());
  clock_config.policy = "gclock";
  EXPECT_TRUE(CreateCoordinator(clock_config, 64).ok());
}

TEST(CoordinatorFactoryTest, ClockLockFreeRequiresClockPolicy) {
  SystemConfig config;
  config.policy = "lru";
  config.coordinator = "clock-lockfree";
  auto coord = CreateCoordinator(config, 64);
  ASSERT_FALSE(coord.ok());
  EXPECT_EQ(coord.status().code(), StatusCode::kInvalidArgument);
}

TEST(CoordinatorFactoryTest, UnknownCoordinatorRejected) {
  SystemConfig config;
  config.coordinator = "magic";
  EXPECT_FALSE(CreateCoordinator(config, 64).ok());
}

TEST(PaperSystemsTest, AllFiveConfigsResolve) {
  const auto names = PaperSystemNames();
  // The paper's five + this repo's pgBat++ and pgShard.
  ASSERT_EQ(names.size(), 7u);
  for (const auto& name : names) {
    auto config = PaperSystemConfig(name);
    ASSERT_TRUE(config.ok()) << name;
    auto coord = CreateCoordinator(config.value(), 128);
    ASSERT_TRUE(coord.ok()) << name;
  }
}

TEST(PaperSystemsTest, ConfigsMatchTableOne) {
  auto clock = PaperSystemConfig("pgClock");
  ASSERT_TRUE(clock.ok());
  EXPECT_EQ(clock->policy, "clock");
  EXPECT_EQ(clock->coordinator, "clock-lockfree");

  auto base = PaperSystemConfig("pg2Q");
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->policy, "2q");
  EXPECT_EQ(base->coordinator, "serialized");
  EXPECT_FALSE(base->prefetch);

  auto pre = PaperSystemConfig("pgPre");
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->coordinator, "serialized");
  EXPECT_TRUE(pre->prefetch);

  auto bat = PaperSystemConfig("pgBat");
  ASSERT_TRUE(bat.ok());
  EXPECT_EQ(bat->coordinator, "bp-wrapper");
  EXPECT_FALSE(bat->prefetch);

  auto batpre = PaperSystemConfig("pgBatPre");
  ASSERT_TRUE(batpre.ok());
  EXPECT_EQ(batpre->coordinator, "bp-wrapper");
  EXPECT_TRUE(batpre->prefetch);

  auto batpp = PaperSystemConfig("pgBat++");
  ASSERT_TRUE(batpp.ok());
  EXPECT_EQ(batpp->coordinator, "combining");
  EXPECT_TRUE(batpp->batching);
  EXPECT_TRUE(batpp->prefetch);

  auto shard = PaperSystemConfig("pgShard");
  ASSERT_TRUE(shard.ok());
  EXPECT_EQ(shard->policy, "2q");
  EXPECT_EQ(shard->coordinator, "sharded");
  EXPECT_EQ(shard->policy_shards, 8u);
  EXPECT_TRUE(shard->batching);
  EXPECT_TRUE(shard->prefetch);

  EXPECT_FALSE(PaperSystemConfig("pgMagic").ok());
}

}  // namespace
}  // namespace bpw
