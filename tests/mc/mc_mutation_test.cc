// Mutation rediscovery (ISSUE 5 acceptance): the explorer must
// deterministically rediscover the PR-2 seeded bugs as invariant
// violations, and the minimized replay for each must reproduce it.
#include <gtest/gtest.h>

#include <string>

#include "mc/explorer.h"
#include "mc/replay.h"
#include "mc/scenario.h"

namespace bpw {
namespace mc {
namespace {

#if BPW_SCHEDULE_POINTS

struct Discovery {
  ExploreResult result;
  ReplayFile replay;
};

Discovery Explore(const ScenarioConfig& config, CooperativeScheduler& sched,
                  int bound) {
  ExploreOptions options;
  options.preemption_bound = bound;
  Explorer explorer(Scenario(config), options);
  Discovery discovery;
  discovery.result = explorer.Run(sched);
  discovery.replay.config = config;
  discovery.replay.violation_kind =
      ViolationKindName(discovery.result.violation.kind);
  discovery.replay.choices = discovery.result.violating_choices;
  return discovery;
}

/// Discovery → minimize → replay: the full CLI pipeline, asserted at each
/// stage for the expected violation kind and message fragment.
void ExpectRediscovered(const ScenarioConfig& config, int bound,
                        ViolationKind kind, const std::string& fragment) {
  CooperativeScheduler sched;
  sched.Install();
  const Discovery discovery = Explore(config, sched, bound);
  ASSERT_TRUE(discovery.result.found_violation)
      << "mutation survived a bound-" << bound << " exploration ("
      << discovery.result.stats.executions << " executions)";
  EXPECT_EQ(discovery.result.violation.kind, kind)
      << discovery.result.violation.message;
  EXPECT_NE(discovery.result.violation.message.find(fragment),
            std::string::npos)
      << "got: " << discovery.result.violation.message;

  // Determinism: the same exploration finds the same counterexample.
  const Discovery again = Explore(config, sched, bound);
  ASSERT_TRUE(again.result.found_violation);
  EXPECT_EQ(again.result.violating_choices, discovery.result.violating_choices)
      << "exploration is not deterministic";
  EXPECT_EQ(again.result.stats.executions, discovery.result.stats.executions);

  // The minimized replay still reproduces the violation.
  MinimizeStats stats;
  const ReplayFile minimized = MinimizeReplay(discovery.replay, sched, &stats);
  EXPECT_LE(minimized.choices.size(), discovery.replay.choices.size());
  const ReplayOutcome outcome = RunReplay(minimized, sched);
  sched.Uninstall();
  EXPECT_TRUE(outcome.result.violated) << "minimized replay lost the bug";
  EXPECT_EQ(outcome.result.violation.kind, kind)
      << outcome.result.violation.message;
}

TEST(MutationRediscoveryTest, SkipVictimRevalidationCorruptsAPinnedFrame) {
  // PR-2 mutation #1. Under the serialized coordinator the two-thread
  // eviction scenario exposes it within two preemptions: the victim chosen
  // before the re-check window can be re-pinned by the other thread, and
  // the skipped revalidation lets the I/O overwrite the pinned frame. The
  // worker sees the foreign stamp.
  auto preset = Scenario::Preset("eviction");
  ASSERT_TRUE(preset.ok());
  ScenarioConfig config = preset.value();
  config.coordinator = "serialized";
  config.mutate_skip_victim_revalidation = true;
  ExpectRediscovered(config, /*bound=*/2, ViolationKind::kInvariant,
                     "foreign bytes");
}

TEST(MutationRediscoveryTest,
     SkipVictimRevalidationBreaksIntegrityThroughTheQueue) {
  // The same mutation through the SharedQueueCoordinator needs one more
  // preemption (the queue lock's extra decision points consume the bound)
  // and surfaces as the post-run integrity check instead: a quiesced frame
  // left pinned.
  auto preset = Scenario::Preset("eviction");
  ASSERT_TRUE(preset.ok());
  ScenarioConfig config = preset.value();
  config.mutate_skip_victim_revalidation = true;
  ExpectRediscovered(config, /*bound=*/3, ViolationKind::kInvariant,
                     "integrity");
}

TEST(MutationRediscoveryTest, SkipCommitBeforeVictimChangesTheDecisions) {
  // PR-2 mutation #2. No corruption and no race — the policy just evicts
  // the wrong page, so only serial equivalence can see it. The "serial"
  // preset's trace is built so the queued hit decides the victim.
  auto preset = Scenario::Preset("serial");
  ASSERT_TRUE(preset.ok());
  ScenarioConfig config = preset.value();
  config.mutate_skip_commit_before_victim = true;
  ExpectRediscovered(config, /*bound=*/0, ViolationKind::kInvariant,
                     "serial equivalence");
}

TEST(MutationRediscoveryTest, FaithfulTreeIsCleanWhereTheMutantsFail) {
  // Control: every scenario/bound pair that catches a mutant must pass on
  // the unmutated tree, or the "discoveries" above prove nothing.
  struct Case {
    const char* preset;
    const char* coordinator;  // nullptr = preset default
    int bound;
  };
  const Case cases[] = {
      {"eviction", "serialized", 2},
      {"serial", nullptr, 0},
  };
  CooperativeScheduler sched;
  sched.Install();
  for (const Case& test_case : cases) {
    SCOPED_TRACE(test_case.preset);
    auto preset = Scenario::Preset(test_case.preset);
    ASSERT_TRUE(preset.ok());
    ScenarioConfig config = preset.value();
    if (test_case.coordinator != nullptr) {
      config.coordinator = test_case.coordinator;
    }
    const Discovery discovery = Explore(config, sched, test_case.bound);
    EXPECT_FALSE(discovery.result.found_violation)
        << discovery.result.violation.message;
    EXPECT_TRUE(discovery.result.stats.complete);
  }
  sched.Uninstall();
}

#else  // !BPW_SCHEDULE_POINTS

TEST(MutationRediscoveryTest, RequiresSchedulePoints) {
  GTEST_SKIP() << "model checker requires schedule points; this build has "
                  "-DBPW_SCHEDULE_POINTS=0";
}

#endif  // BPW_SCHEDULE_POINTS

}  // namespace
}  // namespace mc
}  // namespace bpw
