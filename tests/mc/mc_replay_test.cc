// Replay-format tests (ISSUE 5 satellite 4): serialize/parse round-trips,
// bit-identical re-execution of a recorded trace, and the
// minimizer-shrinks-monotonically property.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "mc/explorer.h"
#include "mc/replay.h"
#include "mc/scenario.h"

namespace bpw {
namespace mc {
namespace {

#if BPW_SCHEDULE_POINTS

ReplayFile SampleReplay() {
  ReplayFile replay;
  replay.config.name = "custom";
  replay.config.coordinator = "bp-wrapper";
  replay.config.policy = "clock";
  replay.config.threads = 3;
  replay.config.pages = 5;
  replay.config.frames = 3;
  replay.config.queue_size = 8;
  replay.config.batch_threshold = 3;
  replay.config.ops_per_thread = 7;
  replay.config.trace = {4, 0, 2};
  replay.config.check_serial_equivalence = true;
  replay.config.mutate_skip_victim_revalidation = true;
  replay.config.mutate_commit_without_lock = true;
  replay.config.max_decisions = 1234;
  replay.violation_kind = "invariant";
  replay.choices = {0, 2, 1, 1, 0};
  return replay;
}

TEST(ReplayFormatTest, SerializeParseRoundTrip) {
  const ReplayFile replay = SampleReplay();
  const std::string text = SerializeReplay(replay);
  auto parsed = ParseReplay(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ReplayFile& back = parsed.value();
  EXPECT_EQ(back.version, replay.version);
  EXPECT_EQ(back.config.name, replay.config.name);
  EXPECT_EQ(back.config.coordinator, replay.config.coordinator);
  EXPECT_EQ(back.config.policy, replay.config.policy);
  EXPECT_EQ(back.config.threads, replay.config.threads);
  EXPECT_EQ(back.config.pages, replay.config.pages);
  EXPECT_EQ(back.config.frames, replay.config.frames);
  EXPECT_EQ(back.config.queue_size, replay.config.queue_size);
  EXPECT_EQ(back.config.batch_threshold, replay.config.batch_threshold);
  EXPECT_EQ(back.config.ops_per_thread, replay.config.ops_per_thread);
  EXPECT_EQ(back.config.trace, replay.config.trace);
  EXPECT_EQ(back.config.check_serial_equivalence,
            replay.config.check_serial_equivalence);
  EXPECT_EQ(back.config.mutate_skip_victim_revalidation,
            replay.config.mutate_skip_victim_revalidation);
  EXPECT_EQ(back.config.mutate_skip_commit_before_victim,
            replay.config.mutate_skip_commit_before_victim);
  EXPECT_EQ(back.config.mutate_commit_without_lock,
            replay.config.mutate_commit_without_lock);
  EXPECT_EQ(back.config.max_decisions, replay.config.max_decisions);
  EXPECT_EQ(back.violation_kind, replay.violation_kind);
  EXPECT_EQ(back.choices, replay.choices);
  // A second serialize of the parsed value must be byte-identical: the
  // format has one canonical rendering.
  EXPECT_EQ(SerializeReplay(back), text);
}

TEST(ReplayFormatTest, FileRoundTrip) {
  const ReplayFile replay = SampleReplay();
  const std::string path =
      ::testing::TempDir() + "/bpw_mc_replay_roundtrip.txt";
  Status written = WriteReplayFile(replay, path);
  ASSERT_TRUE(written.ok()) << written.ToString();
  auto back = ReadReplayFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(SerializeReplay(back.value()), SerializeReplay(replay));
}

TEST(ReplayFormatTest, RejectsGarbage) {
  EXPECT_FALSE(ParseReplay("").ok());
  EXPECT_FALSE(ParseReplay("not-a-replay 1\nend\n").ok());
  EXPECT_FALSE(ParseReplay("bpw-mc-replay 99\nend\n").ok()) << "bad version";
  // Truncated: no "end" terminator.
  std::string text = SerializeReplay(SampleReplay());
  text.resize(text.size() / 2);
  EXPECT_FALSE(ParseReplay(text).ok());
}

TEST(ReplayFormatTest, UnknownParamsAreSkipped) {
  std::string text = SerializeReplay(SampleReplay());
  const std::string anchor = "violation";
  const size_t pos = text.find(anchor);
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, "param some_future_knob 42\n");
  auto parsed = ParseReplay(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().config.threads, 3);
}

/// Explores `config` until it finds a violation; returns the replay.
ReplayFile FindViolation(const ScenarioConfig& config,
                         CooperativeScheduler& sched, int bound,
                         ViolationKind expected_kind) {
  ExploreOptions options;
  options.preemption_bound = bound;
  Explorer explorer(Scenario(config), options);
  const ExploreResult result = explorer.Run(sched);
  EXPECT_TRUE(result.found_violation);
  EXPECT_EQ(result.violation.kind, expected_kind) << result.violation.message;
  ReplayFile replay;
  replay.config = config;
  replay.violation_kind = ViolationKindName(result.violation.kind);
  replay.choices = result.violating_choices;
  return replay;
}

TEST(ReplayExecutionTest, ReExecutionIsBitIdentical) {
  auto preset = Scenario::Preset("eviction");
  ASSERT_TRUE(preset.ok());
  CooperativeScheduler sched;
  sched.Install();
  // Record one clean execution (default chooser via empty choices), then
  // re-run it twice: the canonical run records must match byte for byte.
  ReplayFile replay;
  replay.config = preset.value();
  const ReplayOutcome first = RunReplay(replay, sched);
  EXPECT_FALSE(first.result.violated) << first.result.violation.message;
  // Replay the decisions the first run actually made.
  replay.choices = first.result.decisions;
  const ReplayOutcome second = RunReplay(replay, sched);
  const ReplayOutcome third = RunReplay(replay, sched);
  sched.Uninstall();
  EXPECT_EQ(second.fallbacks, 0u)
      << "a recorded trace must replay without fallbacks";
  EXPECT_EQ(third.fallbacks, 0u);
  const std::string record2 = SerializeRunRecord(second.result);
  const std::string record3 = SerializeRunRecord(third.result);
  EXPECT_FALSE(record2.empty());
  EXPECT_EQ(record2, record3) << "same choices, different executions: the "
                                 "scenario is nondeterministic";
  EXPECT_EQ(second.result.decisions, first.result.decisions);
  EXPECT_EQ(second.result.signatures, first.result.signatures);
}

TEST(ReplayExecutionTest, PastEndFallsBackDeterministically) {
  auto preset = Scenario::Preset("eviction");
  ASSERT_TRUE(preset.ok());
  CooperativeScheduler sched;
  sched.Install();
  ReplayFile replay;
  replay.config = preset.value();
  replay.choices = {0, 0, 0};  // far shorter than the execution needs
  const ReplayOutcome a = RunReplay(replay, sched);
  const ReplayOutcome b = RunReplay(replay, sched);
  sched.Uninstall();
  EXPECT_GT(a.fallbacks, 0u);
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(SerializeRunRecord(a.result), SerializeRunRecord(b.result));
}

TEST(ReplayMinimizeTest, ShrinksMonotonicallyAndPreservesTheViolation) {
  // Property test over every mutation the checker knows: minimization must
  // (a) never grow the trace, (b) keep the violation kind, and (c) be
  // idempotent-or-shrinking when applied again.
  struct Case {
    const char* preset;
    int bound;
    ViolationKind kind;
    void (*mutate)(ScenarioConfig&);
  };
  const Case cases[] = {
      {"serial", 0, ViolationKind::kInvariant,
       [](ScenarioConfig& c) { c.mutate_skip_commit_before_victim = true; }},
      {"race", 1, ViolationKind::kRace,
       [](ScenarioConfig& c) { c.mutate_commit_without_lock = true; }},
  };
  CooperativeScheduler sched;
  sched.Install();
  for (const Case& test_case : cases) {
    SCOPED_TRACE(test_case.preset);
    auto preset = Scenario::Preset(test_case.preset);
    ASSERT_TRUE(preset.ok());
    ScenarioConfig config = preset.value();
    test_case.mutate(config);
    ReplayFile replay =
        FindViolation(config, sched, test_case.bound, test_case.kind);

    MinimizeStats stats;
    const ReplayFile minimized = MinimizeReplay(replay, sched, &stats);
    EXPECT_LE(minimized.choices.size(), replay.choices.size())
        << "minimization grew the trace";
    EXPECT_EQ(stats.shrunk_from, replay.choices.size());
    EXPECT_EQ(stats.shrunk_to, minimized.choices.size());
    EXPECT_GT(stats.attempts, 0u);

    // The shrunk trace still reproduces the same violation kind.
    const ReplayOutcome outcome = RunReplay(minimized, sched);
    EXPECT_TRUE(outcome.result.violated);
    EXPECT_EQ(outcome.result.violation.kind, test_case.kind)
        << outcome.result.violation.message;

    // Re-minimizing cannot grow.
    const ReplayFile twice = MinimizeReplay(minimized, sched);
    EXPECT_LE(twice.choices.size(), minimized.choices.size());
  }
  sched.Uninstall();
}

TEST(ReplayMinimizeTest, CleanTraceIsReturnedUnchanged) {
  auto preset = Scenario::Preset("eviction");
  ASSERT_TRUE(preset.ok());
  CooperativeScheduler sched;
  sched.Install();
  ReplayFile replay;
  replay.config = preset.value();
  replay.choices = {0, 1, 0};  // replays clean (fallbacks finish the run)
  MinimizeStats stats;
  const ReplayFile minimized = MinimizeReplay(replay, sched, &stats);
  sched.Uninstall();
  EXPECT_EQ(minimized.choices, replay.choices)
      << "non-violating input must pass through untouched";
}

#else  // !BPW_SCHEDULE_POINTS

TEST(ReplayFormatTest, RequiresSchedulePoints) {
  GTEST_SKIP() << "model checker requires schedule points; this build has "
                  "-DBPW_SCHEDULE_POINTS=0";
}

#endif  // BPW_SCHEDULE_POINTS

}  // namespace
}  // namespace mc
}  // namespace bpw
