// Flat-combining certification (the "combine" scenario): the bounded
// exploration of two publishers + one combiner must exhaust clean with the
// publication-slot protocol certified race-free, and each seeded handoff
// bug (skip-release, drain-twice, clear-ready) must be rediscovered as a
// conservation-invariant violation with a minimized, reproducing replay.
#include <gtest/gtest.h>

#include <string>

#include "mc/explorer.h"
#include "mc/replay.h"
#include "mc/scenario.h"

namespace bpw {
namespace mc {
namespace {

#if BPW_SCHEDULE_POINTS

struct Discovery {
  ExploreResult result;
  ReplayFile replay;
};

Discovery Explore(const ScenarioConfig& config, CooperativeScheduler& sched,
                  int bound) {
  ExploreOptions options;
  options.preemption_bound = bound;
  Explorer explorer(Scenario(config), options);
  Discovery discovery;
  discovery.result = explorer.Run(sched);
  discovery.replay.config = config;
  discovery.replay.violation_kind =
      ViolationKindName(discovery.result.violation.kind);
  discovery.replay.choices = discovery.result.violating_choices;
  return discovery;
}

ScenarioConfig CombinePreset() {
  auto preset = Scenario::Preset("combine");
  EXPECT_TRUE(preset.ok());
  return preset.ok() ? preset.value() : ScenarioConfig{};
}

/// Discovery → minimize → replay, asserted at each stage.
void ExpectRediscovered(const ScenarioConfig& config, int bound,
                        const std::string& fragment) {
  CooperativeScheduler sched;
  sched.Install();
  const Discovery discovery = Explore(config, sched, bound);
  ASSERT_TRUE(discovery.result.found_violation)
      << "mutation survived a bound-" << bound << " exploration ("
      << discovery.result.stats.executions << " executions)";
  EXPECT_EQ(discovery.result.violation.kind, ViolationKind::kInvariant)
      << discovery.result.violation.message;
  EXPECT_NE(discovery.result.violation.message.find(fragment),
            std::string::npos)
      << "got: " << discovery.result.violation.message;

  const ReplayFile minimized = MinimizeReplay(discovery.replay, sched);
  EXPECT_LE(minimized.choices.size(), discovery.replay.choices.size());
  const ReplayOutcome outcome = RunReplay(minimized, sched);
  sched.Uninstall();
  EXPECT_TRUE(outcome.result.violated) << "minimized replay lost the bug";
  EXPECT_EQ(outcome.result.violation.kind, ViolationKind::kInvariant)
      << outcome.result.violation.message;
}

TEST(CombineScenarioTest, BoundTwoExhaustsCleanAndCertifiesRaceFree) {
  // The acceptance run: two publishers + one combiner, every interleaving
  // up to two preemptions. No deadlock, no conservation violation, and the
  // vector-clock certifier — fed happens-before edges by the pub-slot
  // pseudo-capability hooks — must have checked the slot traffic without
  // reporting a race.
  CooperativeScheduler sched;
  sched.Install();
  const Discovery discovery = Explore(CombinePreset(), sched, /*bound=*/2);
  sched.Uninstall();
  EXPECT_FALSE(discovery.result.found_violation)
      << discovery.result.violation.message;
  EXPECT_TRUE(discovery.result.stats.complete)
      << "bound-2 space not exhausted";
  EXPECT_GT(discovery.result.stats.executions, 1u);
  EXPECT_GT(discovery.result.stats.races_checked, 0u)
      << "certifier saw no guarded accesses — the pseudo-capability hooks "
         "are not wired";
}

TEST(CombineScenarioTest, SkipReleaseRediscoveredWithMinimizedReplay) {
  // The stuck-slot bug: post-commit recycling skipped, slots left in
  // kDraining at quiesce.
  ScenarioConfig config = CombinePreset();
  config.mutate_combine_skip_release = true;
  ExpectRediscovered(config, /*bound=*/1, "publication conservation");
}

TEST(CombineScenarioTest, DrainTwiceRediscovered) {
  // The lost-handoff bug: a claimed slot applied twice (drained >
  // published).
  ScenarioConfig config = CombinePreset();
  config.mutate_combine_drain_twice = true;
  ExpectRediscovered(config, /*bound=*/1, "publication conservation");
}

TEST(CombineScenarioTest, ClearReadyBeforeApplyRediscovered) {
  // The dropped-batch bug: ready flag cleared without applying (published
  // > drained).
  ScenarioConfig config = CombinePreset();
  config.mutate_combine_clear_ready = true;
  ExpectRediscovered(config, /*bound=*/1, "publication conservation");
}

TEST(CombineScenarioTest, EvictionPressureThroughCombiningIsClean) {
  // The standard eviction scenario re-pointed at the combining coordinator:
  // miss paths, victim selection, and slot flushes interleave with
  // publications. Bound 1 keeps this sub-second for tier-1; CI's deep job
  // runs it at bound 2.
  auto preset = Scenario::Preset("eviction");
  ASSERT_TRUE(preset.ok());
  ScenarioConfig config = preset.value();
  config.coordinator = "combining";
  CooperativeScheduler sched;
  sched.Install();
  const Discovery discovery = Explore(config, sched, /*bound=*/1);
  sched.Uninstall();
  EXPECT_FALSE(discovery.result.found_violation)
      << discovery.result.violation.message;
  EXPECT_TRUE(discovery.result.stats.complete);
}

#else  // !BPW_SCHEDULE_POINTS

TEST(CombineScenarioTest, RequiresSchedulePoints) {
  GTEST_SKIP() << "model checker requires schedule points; this build has "
                  "-DBPW_SCHEDULE_POINTS=0";
}

#endif  // BPW_SCHEDULE_POINTS

}  // namespace
}  // namespace mc
}  // namespace bpw
