// Race-certifier acceptance: the clean tree certifies race-free over the
// explored spaces, and a seeded GUARDED_BY-violating mutation (commit
// without the queue lock) is caught as a vector-clock race.
#include <gtest/gtest.h>

#include <string>

#include "mc/explorer.h"
#include "mc/replay.h"
#include "mc/scenario.h"

namespace bpw {
namespace mc {
namespace {

#if BPW_SCHEDULE_POINTS

ExploreResult Explore(const ScenarioConfig& config,
                      CooperativeScheduler& sched, int bound) {
  ExploreOptions options;
  options.preemption_bound = bound;
  Explorer explorer(Scenario(config), options);
  return explorer.Run(sched);
}

TEST(RaceCertificationTest, CleanTreeCertifiesRaceFree) {
  // Every preset, explored at bound 1: zero races, and the certifier must
  // actually have checked accesses (an instrumentation hole would certify
  // vacuously).
  CooperativeScheduler sched;
  sched.Install();
  for (const std::string& name : Scenario::PresetNames()) {
    SCOPED_TRACE(name);
    auto preset = Scenario::Preset(name);
    ASSERT_TRUE(preset.ok());
    const ExploreResult result = Explore(preset.value(), sched, /*bound=*/1);
    EXPECT_FALSE(result.found_violation) << result.violation.message;
    EXPECT_TRUE(result.stats.complete);
    EXPECT_GT(result.stats.races_checked, 0u)
        << "no accesses certified: instrumentation hole?";
  }
  sched.Uninstall();
}

TEST(RaceCertificationTest, CommitWithoutLockIsCaughtAsARace) {
  // The seeded mutation drains the hit queue without taking the queue
  // lock, violating the GUARDED_BY contract on the policy. The certifier
  // sees the unordered write pair on the policy's exclusive-access
  // location within one preemption.
  auto preset = Scenario::Preset("race");
  ASSERT_TRUE(preset.ok());
  ScenarioConfig config = preset.value();
  config.mutate_commit_without_lock = true;
  CooperativeScheduler sched;
  sched.Install();
  const ExploreResult result = Explore(config, sched, /*bound=*/1);
  ASSERT_TRUE(result.found_violation)
      << "mutation survived " << result.stats.executions << " executions";
  EXPECT_EQ(result.violation.kind, ViolationKind::kRace)
      << result.violation.message;
  EXPECT_NE(result.violation.message.find("policy.exclusive"),
            std::string::npos)
      << "got: " << result.violation.message;

  // The replay pipeline reproduces the race.
  ReplayFile replay;
  replay.config = config;
  replay.violation_kind = ViolationKindName(result.violation.kind);
  replay.choices = result.violating_choices;
  const ReplayFile minimized = MinimizeReplay(replay, sched);
  const ReplayOutcome outcome = RunReplay(minimized, sched);
  sched.Uninstall();
  EXPECT_TRUE(outcome.result.violated);
  EXPECT_EQ(outcome.result.violation.kind, ViolationKind::kRace)
      << outcome.result.violation.message;
  EXPECT_NE(outcome.result.violation.message.find("policy.exclusive"),
            std::string::npos);
}

TEST(RaceCertificationTest, CertifierCountsScaleWithTheSpace) {
  // Sanity on the reporting the CLI prints: accesses certified accumulates
  // across executions, so a wider bound certifies at least as much.
  auto preset = Scenario::Preset("race");
  ASSERT_TRUE(preset.ok());
  CooperativeScheduler sched;
  sched.Install();
  const ExploreResult narrow = Explore(preset.value(), sched, /*bound=*/0);
  const ExploreResult wide = Explore(preset.value(), sched, /*bound=*/1);
  sched.Uninstall();
  EXPECT_FALSE(narrow.found_violation);
  EXPECT_FALSE(wide.found_violation);
  EXPECT_GE(wide.stats.races_checked, narrow.stats.races_checked);
  EXPECT_GT(wide.stats.executions, narrow.stats.executions);
}

#else  // !BPW_SCHEDULE_POINTS

TEST(RaceCertificationTest, RequiresSchedulePoints) {
  GTEST_SKIP() << "model checker requires schedule points; this build has "
                  "-DBPW_SCHEDULE_POINTS=0";
}

#endif  // BPW_SCHEDULE_POINTS

}  // namespace
}  // namespace mc
}  // namespace bpw
