// "shard" mc preset: bounded exploration of the ShardedCoordinator's
// commit / borrow / rebalance protocol, plus rediscovery of the two seeded
// cross-shard conservation bugs (the same mutations the stress harness
// catches in tests/stress/mutation_test.cc, here found systematically and
// reproduced from a minimized replay).
#include <gtest/gtest.h>

#include <string>

#include "mc/explorer.h"
#include "mc/replay.h"
#include "mc/scenario.h"

namespace bpw {
namespace mc {
namespace {

#if BPW_SCHEDULE_POINTS

ExploreResult Explore(const ScenarioConfig& config, CooperativeScheduler& sched,
                      int bound) {
  ExploreOptions options;
  options.preemption_bound = bound;
  Explorer explorer(Scenario(config), options);
  return explorer.Run(sched);
}

/// Explore, assert a conservation violation was found, then minimize the
/// trace and assert the replay still reproduces it.
void ExpectShardViolation(const ScenarioConfig& config, int bound) {
  CooperativeScheduler sched;
  sched.Install();
  const ExploreResult result = Explore(config, sched, bound);
  ASSERT_TRUE(result.found_violation)
      << "mutation survived a bound-" << bound << " exploration ("
      << result.stats.executions << " executions)";
  EXPECT_EQ(result.violation.kind, ViolationKind::kInvariant)
      << result.violation.message;
  EXPECT_NE(result.violation.message.find("shard conservation"),
            std::string::npos)
      << "caught by something other than the conservation oracle: "
      << result.violation.message;

  ReplayFile replay;
  replay.config = config;
  replay.violation_kind = ViolationKindName(result.violation.kind);
  replay.choices = result.violating_choices;
  MinimizeStats stats;
  const ReplayFile minimized = MinimizeReplay(replay, sched, &stats);
  EXPECT_LE(minimized.choices.size(), replay.choices.size());

  // Round-trip through the on-disk format: the new shard params must
  // survive serialization or a saved repro rebuilds the wrong scenario.
  auto parsed = ParseReplay(SerializeReplay(minimized));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().config.policy_shards, config.policy_shards);
  EXPECT_EQ(parsed.value().config.rebalance_interval,
            config.rebalance_interval);
  EXPECT_EQ(parsed.value().config.mutate_shard_double_track,
            config.mutate_shard_double_track);
  EXPECT_EQ(parsed.value().config.mutate_shard_stale_eviction,
            config.mutate_shard_stale_eviction);

  const ReplayOutcome outcome = RunReplay(parsed.value(), sched);
  sched.Uninstall();
  ASSERT_TRUE(outcome.result.violated) << "minimized replay lost the bug";
  EXPECT_NE(outcome.result.violation.message.find("shard conservation"),
            std::string::npos)
      << outcome.result.violation.message;
}

TEST(McShardTest, PresetExploresCleanUnmutated) {
  // The faithful sharded stack must survive its bounded space — otherwise
  // the mutation rediscoveries below prove nothing.
  auto preset = Scenario::Preset("shard");
  ASSERT_TRUE(preset.ok());
  CooperativeScheduler sched;
  sched.Install();
  const ExploreResult result = Explore(preset.value(), sched, /*bound=*/2);
  sched.Uninstall();
  EXPECT_FALSE(result.found_violation) << result.violation.message;
  EXPECT_TRUE(result.stats.complete);
}

TEST(McShardTest, ShardCountSweepExploresClean) {
  // The per-shard capability protocol must hold at every topology: the
  // degenerate single shard (bit-identical to unsharded), the preset's 2,
  // and more shards than frames (every shard mostly empty, maximal
  // borrowing).
  auto preset = Scenario::Preset("shard");
  ASSERT_TRUE(preset.ok());
  CooperativeScheduler sched;
  sched.Install();
  for (size_t shards : {1u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ScenarioConfig config = preset.value();
    config.policy_shards = shards;
    const ExploreResult result = Explore(config, sched, /*bound=*/2);
    EXPECT_FALSE(result.found_violation) << result.violation.message;
    EXPECT_TRUE(result.stats.complete);
  }
  sched.Uninstall();
}

TEST(McShardTest, RediscoversDoubleTracking) {
  // The rebalance-without-unregister bug: one page resident in two shards.
  auto preset = Scenario::Preset("shard");
  ASSERT_TRUE(preset.ok());
  ScenarioConfig config = preset.value();
  config.mutate_shard_double_track = true;
  ExpectShardViolation(config, /*bound=*/1);
}

TEST(McShardTest, RediscoversStaleEvictionRouting) {
  // The stale-cached-shard-index bug: deliveries routed to the previous
  // miss's home shard.
  auto preset = Scenario::Preset("shard");
  ASSERT_TRUE(preset.ok());
  ScenarioConfig config = preset.value();
  config.mutate_shard_stale_eviction = true;
  ExpectShardViolation(config, /*bound=*/1);
}

#else  // !BPW_SCHEDULE_POINTS

TEST(McShardTest, RequiresSchedulePoints) {
  GTEST_SKIP() << "model checker requires schedule points; this build has "
                  "-DBPW_SCHEDULE_POINTS=0";
}

#endif  // BPW_SCHEDULE_POINTS

}  // namespace
}  // namespace mc
}  // namespace bpw
