// Unit tests for the model checker's core machinery: vector clocks, the
// race certifier, and the cooperative scheduler driven through its raw
// hook interface (no real locks involved, so deadlock scenarios here are
// synthetic and always unwind).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "mc/cooperative_scheduler.h"
#include "mc/explorer.h"
#include "mc/scenario.h"

namespace bpw {
namespace mc {
namespace {

#if BPW_SCHEDULE_POINTS

// --- VectorClock -----------------------------------------------------------

TEST(VectorClockTest, TickJoinLessEq) {
  VectorClock a(2), b(2);
  EXPECT_TRUE(a.LessEq(b));
  a.Tick(0);
  EXPECT_FALSE(a.LessEq(b));
  EXPECT_TRUE(b.LessEq(a));
  b.Tick(1);
  b.Tick(1);
  EXPECT_FALSE(a.LessEq(b));
  EXPECT_FALSE(b.LessEq(a));  // concurrent
  b.Join(a);
  EXPECT_TRUE(a.LessEq(b));
  EXPECT_EQ(b.at(0), 1u);
  EXPECT_EQ(b.at(1), 2u);
  EXPECT_EQ(b.ToString(), "[1 2]");
}

TEST(VectorClockTest, OutOfRangeReadsAsZero) {
  VectorClock a(1);
  EXPECT_EQ(a.at(7), 0u);
  a.Set(3, 5);  // auto-resize
  EXPECT_EQ(a.at(3), 5u);
}

// --- RaceCertifier ---------------------------------------------------------

TEST(RaceCertifierTest, OrderedAccessesAreRaceFree) {
  RaceCertifier certifier(2);
  int obj = 0;
  VectorClock c0(2), c1(2);
  c0.Tick(0);
  c1.Tick(1);
  certifier.OnAccess(0, c0, &obj, "w0", /*is_write=*/true);
  // Thread 1 learns of thread 0's write (e.g. via a lock handoff) before
  // touching the object.
  c1.Join(c0);
  c1.Tick(1);
  certifier.OnAccess(1, c1, &obj, "w1", /*is_write=*/true);
  EXPECT_TRUE(certifier.races().empty());
  EXPECT_EQ(certifier.accesses_checked(), 2u);
}

TEST(RaceCertifierTest, UnorderedWritesRace) {
  RaceCertifier certifier(2);
  int obj = 0;
  VectorClock c0(2), c1(2);
  c0.Tick(0);
  c1.Tick(1);
  certifier.OnAccess(0, c0, &obj, "w0", /*is_write=*/true);
  certifier.OnAccess(1, c1, &obj, "w1", /*is_write=*/true);  // no join: race
  ASSERT_EQ(certifier.races().size(), 1u);
  const RaceReport& race = certifier.races()[0];
  EXPECT_TRUE(race.first_is_write);
  EXPECT_TRUE(race.second_is_write);
  EXPECT_EQ(race.second_thread, 1);
  EXPECT_NE(race.ToString().find("w0"), std::string::npos);
}

TEST(RaceCertifierTest, UnorderedReadWriteRacesButReadsDoNot) {
  RaceCertifier certifier(2);
  int obj = 0;
  VectorClock c0(2), c1(2);
  c0.Tick(0);
  c1.Tick(1);
  certifier.OnAccess(0, c0, &obj, "r0", /*is_write=*/false);
  certifier.OnAccess(1, c1, &obj, "r1", /*is_write=*/false);
  EXPECT_TRUE(certifier.races().empty()) << "concurrent reads are fine";
  certifier.OnAccess(1, c1, &obj, "w1", /*is_write=*/true);
  ASSERT_EQ(certifier.races().size(), 1u);
  EXPECT_FALSE(certifier.races()[0].first_is_write);
}

TEST(RaceCertifierTest, OneRacePerLocation) {
  RaceCertifier certifier(2);
  int obj = 0;
  VectorClock c0(2), c1(2);
  c0.Tick(0);
  c1.Tick(1);
  certifier.OnAccess(0, c0, &obj, "w0", true);
  certifier.OnAccess(1, c1, &obj, "w1", true);
  certifier.OnAccess(1, c1, &obj, "w1", true);
  certifier.OnAccess(0, c0, &obj, "w0", true);
  EXPECT_EQ(certifier.races().size(), 1u);
}

// --- CooperativeScheduler (raw hooks, scripted choosers) -------------------

/// Runs `body(t)` on `n` attached workers under `sched` with a scripted
/// chooser; returns the decision trace.
template <typename Body>
std::vector<int> RunWorkers(CooperativeScheduler& sched, int n,
                            uint64_t max_decisions,
                            CooperativeScheduler::Chooser chooser, Body body) {
  CooperativeScheduler::Config config;
  config.num_threads = n;
  config.max_decisions = max_decisions;
  sched.BeginRun(config, std::move(chooser));
  std::vector<std::thread> threads;
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&sched, t, &body] {
      sched.AttachWorker(t);
      body(t);
      sched.DetachWorker(t);
    });
  }
  for (auto& thread : threads) thread.join();
  return sched.decision_trace();
}

/// Follows a fixed choice list; past the end, keeps the current thread or
/// takes the lowest candidate.
CooperativeScheduler::Chooser Script(std::vector<int> choices) {
  auto next = std::make_shared<size_t>(0);
  return [choices = std::move(choices), next](const DecisionContext& ctx) {
    if (*next < choices.size()) {
      return choices[(*next)++];
    }
    for (const Candidate& c : ctx.candidates) {
      if (c.thread == ctx.current) return c.thread;
    }
    return ctx.candidates.front().thread;
  };
}

TEST(CooperativeSchedulerTest, SerializesAndRecordsDecisions) {
  CooperativeScheduler sched;
  int counter = 0;  // deliberately unsynchronized: serialization is the lock
  auto trace = RunWorkers(
      sched, 2, 1000, Script({0, 1, 0, 1, 0, 1}),
      [&sched, &counter](int) {
        for (int i = 0; i < 3; ++i) {
          sched.Perturb("step", nullptr);
          ++counter;
        }
      });
  EXPECT_FALSE(sched.aborted());
  EXPECT_EQ(sched.verdict(), SchedulerVerdict::kNone);
  EXPECT_EQ(counter, 6);
  ASSERT_GE(trace.size(), 6u);
  EXPECT_EQ(trace[0], 0);
  EXPECT_EQ(trace[1], 1);
  EXPECT_EQ(sched.decision_signatures().size(), trace.size());
}

TEST(CooperativeSchedulerTest, ModelledLocksBlockAndHandOff) {
  CooperativeScheduler sched;
  int lock_marker = 0;
  int inside = 0, max_inside = 0;
  RunWorkers(sched, 2, 1000, Script({0, 1}),
             [&](int) {
               sched.LockWillAcquire(&lock_marker, "test.lock");
               sched.LockAcquired(&lock_marker, "test.lock");
               ++inside;
               max_inside = std::max(max_inside, inside);
               sched.Perturb("in-critical", &lock_marker);
               --inside;
               sched.LockReleased(&lock_marker, "test.unlock");
             });
  EXPECT_FALSE(sched.aborted());
  EXPECT_EQ(max_inside, 1) << "modelled lock admitted two holders";
}

TEST(CooperativeSchedulerTest, DetectsSyntheticDeadlock) {
  CooperativeScheduler sched;
  int lock_a = 0, lock_b = 0;
  // T0 takes A then B; T1 takes B then A. The script interleaves so both
  // hold their first lock before requesting the second.
  RunWorkers(sched, 2, 1000, Script({0, 1, 0, 1, 0, 1}),
             [&](int t) {
               void* first = t == 0 ? &lock_a : &lock_b;
               void* second = t == 0 ? &lock_b : &lock_a;
               sched.LockWillAcquire(first, "first");
               sched.LockAcquired(first, "first");
               sched.Perturb("holding-first", first);
               sched.LockWillAcquire(second, "second");
               sched.LockAcquired(second, "second");
               sched.LockReleased(second, "second");
               sched.LockReleased(first, "first");
             });
  EXPECT_TRUE(sched.aborted());
  EXPECT_EQ(sched.verdict(), SchedulerVerdict::kDeadlock);
  EXPECT_NE(sched.verdict_detail().find("deadlock"), std::string::npos);
}

TEST(CooperativeSchedulerTest, DecisionBudgetReportsLivelock) {
  CooperativeScheduler sched;
  RunWorkers(sched, 1, 10, Script({}),
             [&](int) {
               for (int i = 0; i < 100; ++i) sched.Perturb("spin", nullptr);
             });
  EXPECT_TRUE(sched.aborted());
  EXPECT_EQ(sched.verdict(), SchedulerVerdict::kLivelock);
}

TEST(CooperativeSchedulerTest, YieldMarksPassiveUntilOthersRun) {
  CooperativeScheduler sched;
  // Capture the candidate set at every decision; after T0 yields while T1
  // is runnable, T0 must not be offered.
  auto contexts = std::make_shared<std::vector<std::vector<int>>>();
  auto chooser = [contexts](const DecisionContext& ctx) {
    std::vector<int> threads;
    for (const Candidate& c : ctx.candidates) threads.push_back(c.thread);
    contexts->push_back(threads);
    for (const Candidate& c : ctx.candidates) {
      if (c.thread == ctx.current) return c.thread;
    }
    return ctx.candidates.front().thread;
  };
  RunWorkers(sched, 2, 1000, chooser, [&](int t) {
    if (t == 0) {
      sched.Yield("t0-yield");
      sched.Perturb("t0-after", nullptr);
    } else {
      sched.Perturb("t1-step", nullptr);
    }
  });
  EXPECT_FALSE(sched.aborted());
  // Some decision must have excluded the passive thread 0 while thread 1
  // was available.
  bool saw_t1_only = false;
  for (const auto& threads : *contexts) {
    if (threads == std::vector<int>{1}) saw_t1_only = true;
  }
  EXPECT_TRUE(saw_t1_only)
      << "yielded thread was never filtered from the candidates";
}

TEST(CooperativeSchedulerTest, CondvarBridgeWakesThroughNotify) {
  CooperativeScheduler sched;
  int cv_marker = 0;
  bool woke = false;
  RunWorkers(sched, 2, 1000, Script({1, 0, 1, 0}),
             [&](int t) {
               if (t == 0) {
                 if (sched.PrepareWait(&cv_marker)) {
                   woke = sched.CommitWait(&cv_marker);
                 }
               } else {
                 sched.Perturb("pre-notify", nullptr);
                 sched.NotifyAll(&cv_marker);
                 sched.Perturb("post-notify", nullptr);
               }
             });
  EXPECT_FALSE(sched.aborted());
  EXPECT_TRUE(woke);
}

TEST(CooperativeSchedulerTest, ChooserCanAbortExecution) {
  CooperativeScheduler sched;
  // Atomic: after the abort the workers free-run concurrently.
  std::atomic<int> progress{0};
  RunWorkers(sched, 2, 1000,
             [](const DecisionContext&) {
               return CooperativeScheduler::kAbortExecution;
             },
             [&](int) {
               sched.Perturb("step", nullptr);
               ++progress;
             });
  EXPECT_TRUE(sched.aborted());
  EXPECT_EQ(sched.verdict(), SchedulerVerdict::kNone);  // prune, not a bug
  EXPECT_EQ(progress.load(), 2)
      << "aborted workers must still run to completion";
}

// --- Explorer over real scenarios ------------------------------------------

TEST(ExplorerTest, SingleThreadedScenarioIsOneExecution) {
  auto config = Scenario::Preset("serial");
  ASSERT_TRUE(config.ok());
  CooperativeScheduler sched;
  sched.Install();
  ExploreOptions options;
  options.preemption_bound = 0;
  Explorer explorer(Scenario(config.value()), options);
  const ExploreResult result = explorer.Run(sched);
  sched.Uninstall();
  EXPECT_FALSE(result.found_violation) << result.violation.message;
  EXPECT_EQ(result.stats.executions, 1u)
      << "one thread, bound 0: exactly one schedule exists";
  EXPECT_TRUE(result.stats.complete);
}

TEST(ExplorerTest, BoundWidensTheSpace) {
  auto config = Scenario::Preset("eviction");
  ASSERT_TRUE(config.ok());
  CooperativeScheduler sched;
  sched.Install();
  uint64_t executions_at[2] = {0, 0};
  for (int bound = 0; bound <= 1; ++bound) {
    ExploreOptions options;
    options.preemption_bound = bound;
    Explorer explorer(Scenario(config.value()), options);
    const ExploreResult result = explorer.Run(sched);
    EXPECT_FALSE(result.found_violation) << result.violation.message;
    EXPECT_TRUE(result.stats.complete);
    executions_at[bound] = result.stats.executions;
  }
  sched.Uninstall();
  EXPECT_GT(executions_at[1], executions_at[0]);
}

TEST(ExplorerTest, PruningPreservesTheCleanVerdict) {
  // Reductions must not change the answer, only the work: the eviction
  // scenario is clean at bound 2 with and without sleep sets + dedup (at
  // bound 1 the space is too small for dedup to fire at all).
  auto config = Scenario::Preset("eviction");
  ASSERT_TRUE(config.ok());
  CooperativeScheduler sched;
  sched.Install();
  uint64_t with_pruning = 0, without_pruning = 0;
  for (const bool prune : {true, false}) {
    ExploreOptions options;
    options.preemption_bound = 2;
    options.use_sleep_sets = prune;
    options.use_state_dedup = prune;
    Explorer explorer(Scenario(config.value()), options);
    const ExploreResult result = explorer.Run(sched);
    EXPECT_FALSE(result.found_violation) << result.violation.message;
    EXPECT_TRUE(result.stats.complete);
    (prune ? with_pruning : without_pruning) = result.stats.executions;
  }
  sched.Uninstall();
  EXPECT_LT(with_pruning, without_pruning)
      << "dedup should prune a space this redundant";
}

#else  // !BPW_SCHEDULE_POINTS

TEST(ModelCheckerTest, RequiresSchedulePoints) {
  GTEST_SKIP() << "model checker requires schedule points; this build has "
                  "-DBPW_SCHEDULE_POINTS=0";
}

#endif  // BPW_SCHEDULE_POINTS

}  // namespace
}  // namespace mc
}  // namespace bpw
