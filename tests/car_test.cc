// Behavioural tests for CAR (Clock with Adaptive Replacement).
#include <gtest/gtest.h>

#include "policy/car.h"
#include "util/random.h"

namespace bpw {
namespace {

ReplacementPolicy::EvictableFn All() {
  return [](FrameId) { return true; };
}

class CarDriver {
 public:
  explicit CarDriver(CarPolicy& car) : car_(car) {
    for (size_t i = car.num_frames(); i-- > 0;) {
      free_.push_back(static_cast<FrameId>(i));
    }
    frame_of_.resize(car.num_frames(), kInvalidPageId);
  }

  bool Access(PageId page) {
    car_.AssertExclusiveAccess();  // drivers run single-threaded
    for (FrameId f = 0; f < frame_of_.size(); ++f) {
      if (frame_of_[f] == page) {
        car_.OnHit(page, f);
        return true;
      }
    }
    FrameId frame;
    if (!free_.empty()) {
      frame = free_.back();
      free_.pop_back();
    } else {
      auto victim = car_.ChooseVictim(All(), page);
      EXPECT_TRUE(victim.ok());
      frame = victim->frame;
      frame_of_[frame] = kInvalidPageId;
    }
    frame_of_[frame] = page;
    car_.OnMiss(page, frame);
    return false;
  }

 private:
  CarPolicy& car_;
  std::vector<FrameId> free_;
  std::vector<PageId> frame_of_;
};

TEST(CarTest, NewPagesEnterT1WithClearRefBit) {
  CarPolicy car(4);
  car.AssertExclusiveAccess();
  car.OnMiss(1, 0);
  EXPECT_EQ(car.t1_size(), 1u);
  // With ref clear, an immediate eviction takes it.
  auto victim = car.ChooseVictim(All(), 2);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->page, 1u);
}

TEST(CarTest, HitOnlySetsRefBitNoListMovement) {
  CarPolicy car(4);
  car.AssertExclusiveAccess();
  car.OnMiss(1, 0);
  car.OnHit(1, 0);
  // Still in T1: CAR's hit path moves nothing (that is its point).
  EXPECT_EQ(car.t1_size(), 1u);
  EXPECT_EQ(car.t2_size(), 0u);
}

TEST(CarTest, ReferencedT1PageMigratesToT2OnSweep) {
  CarPolicy car(2);
  car.AssertExclusiveAccess();
  car.OnMiss(1, 0);
  car.OnMiss(2, 1);
  car.OnHit(1, 0);  // ref bit set on 1
  auto victim = car.ChooseVictim(All(), 3);
  ASSERT_TRUE(victim.ok());
  EXPECT_EQ(victim->page, 2u) << "unreferenced page must go first";
  EXPECT_EQ(car.t2_size(), 1u) << "referenced page 1 moved to T2";
  EXPECT_TRUE(car.CheckInvariants().ok());
}

TEST(CarTest, GhostHitAdaptsTarget) {
  // Reference page 1 so the sweep moves it to T2; then the B1 entry for
  // page 2 survives the next insert's directory trim (|T1|+|B1| < c).
  CarPolicy car(2);
  car.AssertExclusiveAccess();
  CarDriver driver(car);
  driver.Access(1);
  driver.Access(2);
  driver.Access(1);  // sets 1's ref bit
  driver.Access(3);  // sweep: 1 -> T2; evicts 2 -> B1
  ASSERT_EQ(car.b1_size(), 1u);
  const size_t before = car.target_p();
  driver.Access(2);  // B1 ghost hit: p grows, page enters T2
  EXPECT_GT(car.target_p(), before);
  EXPECT_EQ(car.t2_size(), 2u);
  EXPECT_TRUE(car.CheckInvariants().ok());
}

TEST(CarTest, DirectoryBounded) {
  constexpr size_t kFrames = 16;
  CarPolicy car(kFrames);
  car.AssertExclusiveAccess();
  CarDriver driver(car);
  Random rng(11);
  for (int i = 0; i < 20000; ++i) {
    PageId page = rng.Bernoulli(0.5) ? rng.Uniform(kFrames)
                                     : rng.Uniform(kFrames * 16);
    driver.Access(page);
    ASSERT_LE(car.t1_size() + car.t2_size() + car.b1_size() + car.b2_size(),
              2 * kFrames);
    if (i % 1000 == 0) {
      ASSERT_TRUE(car.CheckInvariants().ok())
          << car.CheckInvariants().ToString();
    }
  }
}

TEST(CarTest, HotPagesSurviveColdChurn) {
  constexpr size_t kFrames = 16;
  CarPolicy car(kFrames);
  car.AssertExclusiveAccess();
  CarDriver driver(car);
  // Make pages 0..3 hot (in T2 with ref bits refreshed).
  for (int round = 0; round < 4; ++round) {
    for (PageId p = 0; p < 4; ++p) driver.Access(p);
  }
  for (PageId p = 100; p < 400; ++p) {
    driver.Access(p);
    // Refresh the hot set's bits occasionally, as a real workload would.
    if (p % 8 == 0) {
      for (PageId hot = 0; hot < 4; ++hot) driver.Access(hot);
    }
  }
  int survivors = 0;
  for (PageId p = 0; p < 4; ++p) survivors += car.IsResident(p);
  EXPECT_EQ(survivors, 4);
}

TEST(CarTest, AllPinnedReportsExhausted) {
  CarPolicy car(4);
  car.AssertExclusiveAccess();
  for (PageId p = 0; p < 4; ++p) car.OnMiss(p, static_cast<FrameId>(p));
  auto victim = car.ChooseVictim([](FrameId) { return false; }, 9);
  ASSERT_FALSE(victim.ok());
  EXPECT_EQ(victim.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(car.resident_count(), 4u);
  EXPECT_TRUE(car.CheckInvariants().ok());
}

}  // namespace
}  // namespace bpw
