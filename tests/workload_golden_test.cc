// Golden-trace tests: every registered workload generator has a pinned
// 64-bit fingerprint of its fixed-seed access stream.
//
// Why this matters: the benchmark pipeline's exact-equality counter gate
// (bench_compare) assumes the workload feeding the counters is
// byte-identical between baseline and candidate. Any change to a
// generator — reordering RNG draws, changing a constant, a refactor that
// shifts a thread seed — silently shifts every counter in every baseline.
// These tests make such a change fail HERE, with a "generator changed"
// message, instead of surfacing as a mystery counter drift in CI.
//
// If a change is intentional: update the constants below AND regenerate
// every checked-in baseline under bench/baselines/ (see EXPERIMENTS.md).
#include "workload/trace_fingerprint.h"

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>

#include "gtest/gtest.h"
#include "workload/trace_file.h"
#include "workload/trace_generator.h"

namespace bpw {
namespace {

// Fixed golden configuration: 4 threads x 4096 accesses, 4096-page
// footprint, seed 42 (the WorkloadSpec default).
WorkloadSpec GoldenSpec(const std::string& name) {
  WorkloadSpec spec;
  spec.name = name;
  spec.num_pages = 4096;
  spec.seed = 42;
  return spec;
}

constexpr uint32_t kGoldenThreads = 4;
constexpr uint64_t kGoldenAccesses = 4096;

struct GoldenEntry {
  const char* workload;
  uint64_t fingerprint;
};

// Regenerate with: for each workload, TraceFingerprint(GoldenSpec(w), 4, 4096).
constexpr GoldenEntry kGolden[] = {
    {"tablescan", 0xa7f8bf47ecf250f5ULL},
    {"dbt1", 0xd78a5ad3988a3489ULL},
    {"dbt2", 0x82e0a60d9a6962c7ULL},
    {"zipfian", 0x22233a5c79a84d82ULL},
    {"uniform", 0x13482223763b264aULL},
    {"seqloop", 0xd1134ff2fe516b25ULL},
};

TEST(WorkloadGolden, EveryKnownWorkloadHasAGoldenEntry) {
  std::set<std::string> pinned;
  for (const auto& entry : kGolden) pinned.insert(entry.workload);
  for (const auto& name : KnownWorkloads()) {
    EXPECT_TRUE(pinned.count(name))
        << "workload '" << name
        << "' has no golden fingerprint — add it to kGolden so baseline "
           "invalidation covers it";
  }
  EXPECT_EQ(pinned.size(), KnownWorkloads().size())
      << "kGolden pins a workload that is no longer registered";
}

TEST(WorkloadGolden, FingerprintsMatchGoldenConstants) {
  for (const auto& entry : kGolden) {
    const uint64_t fp = TraceFingerprint(GoldenSpec(entry.workload),
                                         kGoldenThreads, kGoldenAccesses);
    EXPECT_EQ(fp, entry.fingerprint)
        << "generator '" << entry.workload
        << "' changed its access stream; if intentional, update kGolden "
           "and regenerate bench/baselines/";
  }
}

TEST(WorkloadGolden, FingerprintIsStableAcrossCalls) {
  const WorkloadSpec spec = GoldenSpec("dbt2");
  EXPECT_EQ(TraceFingerprint(spec, kGoldenThreads, kGoldenAccesses),
            TraceFingerprint(spec, kGoldenThreads, kGoldenAccesses));
}

TEST(WorkloadGolden, FingerprintSeesSeedAndFootprint) {
  const WorkloadSpec base = GoldenSpec("dbt2");
  WorkloadSpec other_seed = base;
  other_seed.seed = 43;
  WorkloadSpec other_pages = base;
  other_pages.num_pages = 8192;
  const uint64_t fp = TraceFingerprint(base, kGoldenThreads, kGoldenAccesses);
  EXPECT_NE(fp,
            TraceFingerprint(other_seed, kGoldenThreads, kGoldenAccesses));
  EXPECT_NE(fp,
            TraceFingerprint(other_pages, kGoldenThreads, kGoldenAccesses));
  // Pinned cross-checks so a dead TraceFingerprintStep (always returning
  // its input, say) cannot satisfy the inequality tests by accident.
  EXPECT_EQ(TraceFingerprint(other_seed, kGoldenThreads, kGoldenAccesses),
            0xdb47522644d2dd63ULL);
  EXPECT_EQ(TraceFingerprint(other_pages, kGoldenThreads, kGoldenAccesses),
            0x3da9fdd7e1e2a93dULL);
}

TEST(WorkloadGolden, UnknownWorkloadFingerprintsToZero) {
  EXPECT_EQ(TraceFingerprint(GoldenSpec("no-such-workload"), 1, 16), 0u);
}

TEST(WorkloadGolden, EmptyStreamIsTheFnvOffsetBasis) {
  EXPECT_EQ(TraceFingerprint(GoldenSpec("dbt2"), 0, 0),
            kTraceFingerprintSeed);
  EXPECT_EQ(TraceFingerprint(GoldenSpec("dbt2"), 4, 0),
            kTraceFingerprintSeed);
}

TEST(WorkloadGolden, TraceFileReplayPreservesTheFingerprint) {
  // The trace-file path (record -> load -> replay) must be bit-exact: the
  // replayed stream's fingerprint equals the generator stream's.
  const WorkloadSpec spec = GoldenSpec("dbt2");
  constexpr uint64_t kCount = 2048;
  const std::string path =
      testing::TempDir() + "/workload_golden_trace.bpwt";
  ASSERT_TRUE(RecordTrace(spec, kCount, path).ok());

  uint64_t generated = kTraceFingerprintSeed;
  auto gen = CreateTrace(spec, /*thread_id=*/0);
  ASSERT_NE(gen, nullptr);
  for (uint64_t i = 0; i < kCount; ++i) {
    generated = TraceFingerprintStep(generated, gen->Next());
  }

  auto file = TraceFile::Load(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  ASSERT_EQ(file.value().accesses().size(), kCount);
  ReplayTrace replay(file.value());
  uint64_t replayed = kTraceFingerprintSeed;
  for (uint64_t i = 0; i < kCount; ++i) {
    replayed = TraceFingerprintStep(replayed, replay.Next());
  }
  EXPECT_EQ(generated, replayed)
      << "trace record/replay altered the access stream";
  std::remove(path.c_str());
}

TEST(WorkloadGolden, StepFoldsFlagBytes) {
  // Same page, different flags must diverge: the flags byte carries
  // is_write and begins_transaction.
  PageAccess read;
  read.page = 7;
  PageAccess write = read;
  write.is_write = true;
  PageAccess begin = read;
  begin.begins_transaction = true;
  const uint64_t fp_read = TraceFingerprintStep(kTraceFingerprintSeed, read);
  const uint64_t fp_write = TraceFingerprintStep(kTraceFingerprintSeed, write);
  const uint64_t fp_begin = TraceFingerprintStep(kTraceFingerprintSeed, begin);
  EXPECT_NE(fp_read, fp_write);
  EXPECT_NE(fp_read, fp_begin);
  EXPECT_NE(fp_write, fp_begin);
}

}  // namespace
}  // namespace bpw
