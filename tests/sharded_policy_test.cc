// Tests for the sharded replacement path: the ShardedPolicy adapter (hash
// routing, per-shard full capacity, borrowing), the cross-shard
// conservation oracle that the stress and model-check layers reuse, the
// ShardedCoordinator's lock-free hit path (zero lock acquisitions,
// profiler-certified), and the seqlock hit-stamp protocol under concurrent
// stamping (the TSan row exercises this file).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "core/coordinator_factory.h"
#include "core/sharded_coordinator.h"
#include "obs/contention_profiler.h"
#include "policy/policy_factory.h"
#include "policy/sharded_policy.h"
#include "workload/trace_generator.h"

namespace bpw {
namespace {

constexpr size_t kPageSize = 512;

// ---------------------------------------------------------------------------
// Routing

TEST(ShardedPolicyTest, ShardOfUsesThePageTableHashFamily) {
  // The partition<->shard binding: the home shard is the page-table hash
  // stream's high bits. Asserting the exact formula here pins the binding;
  // if either side changes its hash, this test names the broken contract.
  for (PageId page : {PageId{0}, PageId{1}, PageId{12345}, PageId{1} << 40}) {
    const uint64_t h = page * 0x9E3779B97F4A7C15ULL;
    for (size_t shards : {1, 2, 3, 8, 64}) {
      EXPECT_EQ(ShardedPolicy::ShardOf(page, shards),
                static_cast<size_t>(h >> 32) % shards);
    }
  }
}

TEST(ShardedPolicyTest, ShardOfSpreadsSequentialPages) {
  // Sequential page ids — the common table-scan layout — must not pile
  // onto one shard.
  constexpr size_t kShards = 8;
  std::vector<size_t> population(kShards, 0);
  for (PageId p = 0; p < 10000; ++p) {
    ++population[ShardedPolicy::ShardOf(p, kShards)];
  }
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(population[s], 10000u / kShards / 2)
        << "shard " << s << " is starved by the hash";
  }
}

// ---------------------------------------------------------------------------
// Adapter construction and pass-through

TEST(ShardedPolicyTest, CreateBuildsEveryKnownPolicy) {
  for (const std::string& name : KnownPolicies()) {
    for (size_t shards : {1, 3, 8}) {
      auto sharded = ShardedPolicy::Create(name, shards, 64);
      ASSERT_TRUE(sharded.ok())
          << name << " x" << shards << ": " << sharded.status().ToString();
      EXPECT_EQ(sharded.value()->shard_count(), shards);
      // Per-shard FULL capacity (skew-proofing; see sharded_policy.h).
      for (size_t s = 0; s < shards; ++s) {
        EXPECT_EQ(sharded.value()->shard(s)->num_frames(), 64u);
      }
    }
  }
}

TEST(ShardedPolicyTest, RejectsUnknownInnerPolicy) {
  auto sharded = ShardedPolicy::Create("no-such-policy", 4, 64);
  EXPECT_FALSE(sharded.ok());
}

TEST(ShardedPolicyTest, SingleShardIsAPassThrough) {
  auto sharded_or = ShardedPolicy::Create("lru", 1, 4);
  auto plain_or = CreatePolicy("lru", 4);
  ASSERT_TRUE(sharded_or.ok());
  ASSERT_TRUE(plain_or.ok());
  ShardedPolicy* sharded = sharded_or.value().get();
  ReplacementPolicy* plain = plain_or.value().get();
  sharded->AssertExclusiveAccess();
  plain->AssertExclusiveAccess();

  for (PageId p = 0; p < 4; ++p) {
    sharded->OnMiss(p, static_cast<FrameId>(p));
    plain->OnMiss(p, static_cast<FrameId>(p));
  }
  sharded->OnHit(1, 1);
  plain->OnHit(1, 1);
  EXPECT_EQ(sharded->resident_count(), plain->resident_count());
  for (int i = 0; i < 4; ++i) {
    auto sv = sharded->ChooseVictim([](FrameId) { return true; }, 100 + i);
    auto pv = plain->ChooseVictim([](FrameId) { return true; }, 100 + i);
    ASSERT_TRUE(sv.ok());
    ASSERT_TRUE(pv.ok());
    EXPECT_EQ(sv->page, pv->page) << "victim order diverged at step " << i;
    EXPECT_EQ(sv->frame, pv->frame);
  }
}

TEST(ShardedPolicyTest, RoutingSendsEachPageToItsHomeShard) {
  auto sharded_or = ShardedPolicy::Create("lru", 4, 32);
  ASSERT_TRUE(sharded_or.ok());
  ShardedPolicy* sp = sharded_or.value().get();
  sp->AssertExclusiveAccess();
  for (PageId p = 0; p < 16; ++p) sp->OnMiss(p, static_cast<FrameId>(p));
  for (PageId p = 0; p < 16; ++p) {
    const size_t home = sp->ShardFor(p);
    for (size_t s = 0; s < sp->shard_count(); ++s) {
      sp->shard(s)->AssertExclusiveAccess();
      EXPECT_EQ(sp->shard(s)->IsResident(p), s == home)
          << "page " << p << " tracked by shard " << s << ", home " << home;
    }
  }
  EXPECT_EQ(sp->resident_count(), 16u) << "shard-sum must see every page";
}

TEST(ShardedPolicyTest, VictimSearchBorrowsWhenHomeShardIsEmpty) {
  auto sharded_or = ShardedPolicy::Create("lru", 4, 32);
  ASSERT_TRUE(sharded_or.ok());
  ShardedPolicy* sp = sharded_or.value().get();
  sp->AssertExclusiveAccess();
  // Fill only one shard's page population, then demand a victim for an
  // incoming page whose home shard is a DIFFERENT (empty) one: the global
  // frame supply is shared, so the search must borrow rather than fail.
  const PageId seed = 7;
  const size_t full_shard = sp->ShardFor(seed);
  std::vector<PageId> planted;
  for (PageId p = seed; planted.size() < 4; ++p) {
    if (sp->ShardFor(p) != full_shard) continue;
    sp->OnMiss(p, static_cast<FrameId>(planted.size()));
    planted.push_back(p);
  }
  PageId incoming = 0;
  while (sp->ShardFor(incoming) == full_shard) ++incoming;
  auto victim = sp->ChooseVictim([](FrameId) { return true; }, incoming);
  ASSERT_TRUE(victim.ok()) << victim.status().ToString();
  EXPECT_EQ(victim->page, planted[0]) << "borrowed victim should be the "
                                         "full shard's own choice (LRU head)";
}

// ---------------------------------------------------------------------------
// The cross-shard conservation oracle

// Registers `count` pages into their home shards and returns the
// frame->page map the oracle audits against.
std::vector<PageId> Populate(ShardedPolicy* sp, size_t count) {
  sp->AssertExclusiveAccess();
  std::vector<PageId> frame_page(sp->num_frames(), kInvalidPageId);
  for (PageId p = 0; p < count; ++p) {
    sp->OnMiss(p, static_cast<FrameId>(p));
    frame_page[p] = p;
  }
  return frame_page;
}

Status Conservation(const ShardedPolicy* sp,
                    const std::vector<PageId>& frame_page) {
  sp->AssertExclusiveAccess();
  return sp->CheckShardConservation(
      [&frame_page](FrameId f) { return frame_page[f]; }, frame_page.size());
}

TEST(ShardConservationTest, CleanPopulationPasses) {
  auto sharded_or = ShardedPolicy::Create("2q", 4, 32);
  ASSERT_TRUE(sharded_or.ok());
  ShardedPolicy* sp = sharded_or.value().get();
  const auto frame_page = Populate(sp, 24);
  EXPECT_TRUE(Conservation(sp, frame_page).ok());
}

TEST(ShardConservationTest, DetectsDoubleTracking) {
  // The double-track bug: one page resident in two shards (what a
  // rebalance that migrates without unregistering would cause).
  auto sharded_or = ShardedPolicy::Create("2q", 4, 32);
  ASSERT_TRUE(sharded_or.ok());
  ShardedPolicy* sp = sharded_or.value().get();
  const auto frame_page = Populate(sp, 24);

  const PageId page = 5;
  const size_t wrong = (sp->ShardFor(page) + 1) % sp->shard_count();
  sp->shard(wrong)->AssertExclusiveAccess();
  sp->shard(wrong)->OnMiss(page, 5);

  const Status status = Conservation(sp, frame_page);
  ASSERT_FALSE(status.ok()) << "oracle missed a double-tracked page";
  EXPECT_NE(status.ToString().find("shard conservation"), std::string::npos)
      << status.ToString();
}

TEST(ShardConservationTest, DetectsResidencyInTheWrongShardOnly) {
  // The stale-shard bug: a page tracked by a NON-home shard and absent
  // from its home shard (counts still sum correctly — the per-page home
  // check must catch it, not just the sigma arm).
  auto sharded_or = ShardedPolicy::Create("lru", 4, 32);
  ASSERT_TRUE(sharded_or.ok());
  ShardedPolicy* sp = sharded_or.value().get();
  auto frame_page = Populate(sp, 24);

  const PageId page = 9;
  const size_t home = sp->ShardFor(page);
  const size_t wrong = (home + 1) % sp->shard_count();
  sp->shard(home)->AssertExclusiveAccess();
  sp->shard(home)->OnErase(page, 9);
  sp->shard(wrong)->AssertExclusiveAccess();
  sp->shard(wrong)->OnMiss(page, 9);

  const Status status = Conservation(sp, frame_page);
  ASSERT_FALSE(status.ok()) << "oracle missed a wrong-shard residency";
  EXPECT_NE(status.ToString().find("shard conservation"), std::string::npos)
      << status.ToString();
}

TEST(ShardConservationTest, DetectsUntrackedMappedPage) {
  auto sharded_or = ShardedPolicy::Create("lru", 4, 32);
  ASSERT_TRUE(sharded_or.ok());
  ShardedPolicy* sp = sharded_or.value().get();
  auto frame_page = Populate(sp, 24);
  // A frame the pool maps but no shard tracks (a lost page).
  frame_page[30] = 1000;
  const Status status = Conservation(sp, frame_page);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("shard conservation"), std::string::npos);
}

TEST(ShardConservationTest, GhostDisjointnessCatchesWrongShardGhosts) {
  // 2Q's kout list remembers evicted pages. Evict from the WRONG shard and
  // the ghost lands in that shard's kout — a page id no other shard may
  // ever ghost-track.
  auto sharded_or = ShardedPolicy::Create("2q", 4, 8);
  ASSERT_TRUE(sharded_or.ok());
  ShardedPolicy* sp = sharded_or.value().get();
  sp->AssertExclusiveAccess();
  EXPECT_TRUE(sp->CheckGhostDisjointness(64).ok());

  const PageId page = 3;
  const size_t wrong = (sp->ShardFor(page) + 1) % sp->shard_count();
  sp->shard(wrong)->AssertExclusiveAccess();
  sp->shard(wrong)->OnMiss(page, 0);
  PageId incoming = 40;  // force an eviction inside the wrong shard
  auto victim = sp->shard(wrong)->ChooseVictim([](FrameId) { return true; },
                                               incoming);
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(sp->shard(wrong)->IsGhostPage(page))
      << "test setup: 2Q eviction should have ghosted the page";
  EXPECT_FALSE(sp->CheckGhostDisjointness(64).ok())
      << "a ghost in a non-home shard must fail disjointness";
}

// ---------------------------------------------------------------------------
// Full pool runs across shard counts (conservation wired into
// CheckIntegrity via the coordinator's CheckQuiescedInvariants).

class ShardCountPoolTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardCountPoolTest, PoolRunsCleanAtThisShardCount) {
  const size_t shards = GetParam();
  WorkloadSpec workload;
  workload.name = "zipfian";
  workload.num_pages = 512;
  workload.seed = 11;

  StorageEngine storage(workload.num_pages, kPageSize);
  SystemConfig system;
  system.policy = "2q";
  system.coordinator = "sharded";
  system.policy_shards = shards;
  auto coordinator = CreateCoordinator(system, 128);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status().ToString();
  auto* sharded =
      static_cast<ShardedCoordinator*>(coordinator.value().get());
  ASSERT_EQ(sharded->shard_count(), shards == 0 ? 1 : shards);

  BufferPoolConfig config;
  config.num_frames = 128;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator).value());
  auto session = pool.CreateSession();
  auto trace = CreateTrace(workload, 0);
  for (int i = 0; i < 20000; ++i) {
    auto handle = pool.FetchPage(*session, trace->Next().page);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  }
  pool.FlushSession(*session);
  EXPECT_GT(session->stats().hits, 0u);
  // CheckIntegrity runs the cross-shard conservation oracle via
  // CheckQuiescedInvariants on this coordinator.
  const Status integrity = pool.CheckIntegrity();
  EXPECT_TRUE(integrity.ok()) << integrity.ToString();
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardCountPoolTest,
                         ::testing::Values(1, 2, 3, 4, 8, 64));

// ---------------------------------------------------------------------------
// The lock-free hit path

TEST(ShardedHitPathTest, HitsTakeZeroLockAcquisitions) {
  // Resident working set, multi-threaded hit storm: the coordinator's
  // aggregated shard-lock stats must not move at all. This is pgShard's
  // headline property — pgClock's lock-free hits, for ANY policy.
  constexpr size_t kFrames = 64;
  StorageEngine storage(kFrames, kPageSize);
  SystemConfig system;
  system.policy = "lirs";
  system.coordinator = "sharded";
  system.policy_shards = 4;
  system.queue_size = 1024;
  auto coordinator = CreateCoordinator(system, kFrames);
  ASSERT_TRUE(coordinator.ok());
  auto* sharded =
      static_cast<ShardedCoordinator*>(coordinator.value().get());

  BufferPoolConfig config;
  config.num_frames = kFrames;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator).value());

  {  // Warm every page in (misses lock; that is fine and expected).
    auto warm = pool.CreateSession();
    for (PageId p = 0; p < kFrames; ++p) {
      ASSERT_TRUE(pool.FetchPage(*warm, p).ok());
    }
    pool.FlushSession(*warm);
  }
  sharded->ResetLockStats();

  constexpr int kThreads = 4;
  // Sessions outlive the assertion below: destroying one flushes its rings
  // under shard locks — the lazy path, not the hit path being measured.
  std::vector<std::unique_ptr<BufferPool::Session>> sessions;
  for (int t = 0; t < kThreads; ++t) sessions.push_back(pool.CreateSession());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &sessions, t] {
      for (int i = 0; i < 20000; ++i) {
        const PageId page = static_cast<PageId>((i * 13 + t) % kFrames);
        auto handle = pool.FetchPage(*sessions[t], page);
        ASSERT_TRUE(handle.ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  const LockStats stats = sharded->lock_stats();
  EXPECT_EQ(stats.acquisitions, 0u)
      << "the hit path touched a shard lock " << stats.acquisitions
      << " times";
  EXPECT_EQ(stats.contentions, 0u);
  EXPECT_EQ(stats.trylock_failures, 0u);
}

TEST(ShardedHitPathTest, ProfilerShowsZeroHitPathLockEvents) {
  // Same property, certified through the contention profiler: after a
  // pure-hit phase the "sharded.shard_lock" site must have recorded zero
  // acquisitions of either kind.
  obs::SetProfilerEnabled(true);
  constexpr size_t kFrames = 32;
  StorageEngine storage(kFrames, kPageSize);
  SystemConfig system;
  system.policy = "2q";
  system.coordinator = "sharded";
  system.policy_shards = 2;
  auto coordinator = CreateCoordinator(system, kFrames);
  ASSERT_TRUE(coordinator.ok());
  BufferPoolConfig config;
  config.num_frames = kFrames;
  config.page_size = kPageSize;
  BufferPool pool(config, &storage, std::move(coordinator).value());
  auto session = pool.CreateSession();
  for (PageId p = 0; p < kFrames; ++p) {
    ASSERT_TRUE(pool.FetchPage(*session, p).ok());
  }
  pool.FlushSession(*session);

  obs::ResetProfiler();  // zero the miss-phase acquisitions
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(pool.FetchPage(*session, i % kFrames).ok());
  }
  const obs::ProfSnapshot snap = obs::CollectProfSnapshot();
  const obs::ProfSiteSnapshot* row = snap.Find("sharded.shard_lock");
  if (row != nullptr) {
    EXPECT_EQ(row->uncontended, 0u) << "hit path acquired a shard lock";
    EXPECT_EQ(row->contended, 0u);
  }
  pool.FlushSession(*session);
  obs::SetProfilerEnabled(false);
}

// ---------------------------------------------------------------------------
// The seqlock hit stamp

TEST(ShardedStampTest, ReadStampReturnsTheLastHit) {
  auto sharded_or = ShardedPolicy::Create("lru", 2, 16);
  ASSERT_TRUE(sharded_or.ok());
  ShardedCoordinator coord(std::move(sharded_or).value(),
                           ShardedCoordinator::Options{});
  auto slot = coord.RegisterThread();

  PageId page = kInvalidPageId;
  uint64_t tick = 0;
  EXPECT_FALSE(coord.ReadStamp(3, &page, &tick)) << "never stamped";

  coord.OnHit(slot.get(), 42, 3);
  ASSERT_TRUE(coord.ReadStamp(3, &page, &tick));
  EXPECT_EQ(page, 42u);
  const uint64_t first_tick = tick;
  EXPECT_GT(first_tick, 0u);

  coord.OnHit(slot.get(), 43, 3);
  ASSERT_TRUE(coord.ReadStamp(3, &page, &tick));
  EXPECT_EQ(page, 43u);
  EXPECT_GT(tick, first_tick) << "ticks must advance";
  coord.FlushSlot(slot.get());
  EXPECT_TRUE(coord.CheckQuiescedInvariants().ok());
}

TEST(ShardedStampTest, VersionWraparoundCostsExactlyOneObservableWindow) {
  // The stamp version is a uint64_t that only ever moves by +1/+1 per
  // publish, so a real wrap needs 2^63 hits — the preload seam plants the
  // boundary instead. Claiming from the last even value (2^64 - 2) takes
  // the version to 2^64 - 1 (odd, claimed) and the publish wraps to 0.
  // Zero doubles as the never-stamped sentinel, so the wrap costs exactly
  // one unreadable window; the very next hit makes the frame readable
  // again with an untorn snapshot.
  auto sharded_or = ShardedPolicy::Create("lru", 2, 16);
  ASSERT_TRUE(sharded_or.ok());
  ShardedCoordinator coord(std::move(sharded_or).value(),
                           ShardedCoordinator::Options{});
  auto slot = coord.RegisterThread();

  const uint64_t kLastEven = ~uint64_t{0} - 1;  // 2^64 - 2
  coord.PreloadStampVersionForTest(3, kLastEven);

  coord.OnHit(slot.get(), 42, 3);  // publish store wraps the version to 0
  PageId page = kInvalidPageId;
  uint64_t tick = 0;
  EXPECT_FALSE(coord.ReadStamp(3, &page, &tick))
      << "version 0 must read as never-stamped, not as a torn snapshot";

  coord.OnHit(slot.get(), 43, 3);  // 0 -> 1 (claim) -> 2 (publish)
  ASSERT_TRUE(coord.ReadStamp(3, &page, &tick));
  EXPECT_EQ(page, 43u);
  EXPECT_GT(tick, 0u);

  coord.FlushSlot(slot.get());
  EXPECT_TRUE(coord.CheckQuiescedInvariants().ok())
      << "no stamp may be left odd after the wrap exercise";
}

TEST(ShardedStampTest, AbandonedOddWriterNeverBlocksHitsOrReaders) {
  // An odd version with no live writer (a thread died mid-publish, or a
  // test plants it) must never make StampHit wait or ReadStamp spin
  // forever: the hit path skips the claim, the reader's bounded retry
  // gives up, and other frames are untouched.
  auto sharded_or = ShardedPolicy::Create("lru", 2, 16);
  ASSERT_TRUE(sharded_or.ok());
  ShardedCoordinator coord(std::move(sharded_or).value(),
                           ShardedCoordinator::Options{});
  auto slot = coord.RegisterThread();

  coord.PreloadStampVersionForTest(3, 7);  // odd: claimed, never published
  coord.OnHit(slot.get(), 42, 3);          // must skip the stamp, not spin
  PageId page = kInvalidPageId;
  uint64_t tick = 0;
  EXPECT_FALSE(coord.ReadStamp(3, &page, &tick))
      << "bounded retry must give up on a stuck-odd stamp";

  coord.OnHit(slot.get(), 99, 4);  // a neighbouring frame is unaffected
  ASSERT_TRUE(coord.ReadStamp(4, &page, &tick));
  EXPECT_EQ(page, 99u);

  // Un-stick the planted stamp so the quiesced invariant (no odd
  // versions) can certify the rest of the coordinator.
  coord.PreloadStampVersionForTest(3, 8);
  coord.FlushSlot(slot.get());
  EXPECT_TRUE(coord.CheckQuiescedInvariants().ok());
}

TEST(ShardedStampTest, ConcurrentStampingStaysConsistent) {
  // The atomic-stamp stress row (runs under TSan in CI): writers hammer
  // OnHit on a few shared frames while readers snapshot stamps. Every
  // successful read must be a (page, tick) pair some writer actually
  // published — the seqlock forbids mixing two writers' payloads.
  constexpr size_t kFrames = 4;
  constexpr int kWriters = 4;
  constexpr int kIters = 20000;
  auto sharded_or = ShardedPolicy::Create("lru", 2, kFrames);
  ASSERT_TRUE(sharded_or.ok());
  ShardedCoordinator::Options options;
  options.queue_size = 8;  // tiny ring: constant drop-oldest churn too
  ShardedCoordinator coord(std::move(sharded_or).value(), options);

  // Writer t stamps frame f with pages in t's private range; a consistent
  // snapshot therefore has page/1000 == the tick's writer... too strong
  // (ticks are global). Instead: page encodes (writer, seq) and any
  // observed pair must simply be one that was genuinely written.
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&coord, t] {
      auto slot = coord.RegisterThread();
      for (int i = 0; i < kIters; ++i) {
        const FrameId frame = static_cast<FrameId>(i % kFrames);
        const PageId page = static_cast<PageId>(t) * 1000000 + i;
        coord.OnHit(slot.get(), page, frame);
      }
      coord.FlushSlot(slot.get());
    });
  }
  threads.emplace_back([&coord, &stop] {
    uint64_t reads = 0;
    while (!stop.load(std::memory_order_acquire)) {
      for (FrameId f = 0; f < kFrames; ++f) {
        PageId page = kInvalidPageId;
        uint64_t tick = 0;
        if (!coord.ReadStamp(f, &page, &tick)) continue;
        ++reads;
        // A published page is always writer*1000000 + i with i < kIters.
        EXPECT_LT(page % 1000000, static_cast<PageId>(kIters));
        EXPECT_LT(page / 1000000, static_cast<PageId>(kWriters));
        EXPECT_GT(tick, 0u);
      }
    }
    EXPECT_GT(reads, 0u);
  });
  for (int t = 0; t < kWriters; ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  // Quiesced: no stamp may be left in a torn (odd-version) state.
  EXPECT_TRUE(coord.CheckQuiescedInvariants().ok());
}

}  // namespace
}  // namespace bpw
