// TableScan demo: the paper's motivating pathology, live.
//
// Concurrent full-table scans are all hits once the table is cached — and
// under a lock-per-access policy every one of those hits takes the global
// lock. This demo runs the same concurrent scan against pg2Q (lock per
// access) and pgBatPre (BP-Wrapper) and prints the throughput and
// contention gap.
//
//   $ ./table_scan_demo [threads]
#include <cstdio>
#include <cstdlib>

#include "harness/driver.h"
#include "harness/reporter.h"

int main(int argc, char** argv) {
  using namespace bpw;

  const uint32_t threads =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 8;

  std::printf("Concurrent table scans, %u threads, 2048-page shared table, "
              "buffer holds the whole table.\n\n", threads);

  TableReporter table(
      {"system", "scans/sec", "avg scan time (ms)", "contentions/1M"});
  for (const char* system_name : {"pg2Q", "pgBatPre", "pgClock"}) {
    DriverConfig config;
    config.workload.name = "tablescan";
    config.workload.num_pages = 2048;
    config.num_threads = threads;
    config.duration_ms = 400;
    config.warmup_ms = 100;
    config.think_work = 16;  // a scan does little work per page
    auto system = PaperSystemConfig(system_name);
    if (!system.ok()) {
      std::fprintf(stderr, "%s\n", system.status().ToString().c_str());
      return 1;
    }
    config.system = system.value();
    auto result = RunDriver(config);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({system_name, FormatDouble(result->throughput_tps, 1),
                  FormatDouble(result->avg_response_us / 1000.0, 2),
                  FormatDouble(result->contentions_per_million, 1)});
  }
  table.Print("One transaction = one full scan of the shared table");
  std::printf("Expected: pg2Q pays a blocking lock wait for a share of its\n"
              "page hits; pgBatPre batches them away and tracks pgClock.\n");
  return 0;
}
