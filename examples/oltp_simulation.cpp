// OLTP simulation: a TPC-C-like day in the life of the buffer manager.
//
// Runs the DBT-2-like transaction mix against a buffer smaller than the
// data set with a simulated disk, comparing the paper's three headline
// systems end-to-end: hit ratio, transaction throughput, response times,
// and lock behaviour — the Fig. 8 experiment as an interactive program.
//
//   $ ./oltp_simulation [threads] [buffer_pages]
#include <cstdio>
#include <cstdlib>

#include "harness/driver.h"
#include "harness/reporter.h"

int main(int argc, char** argv) {
  using namespace bpw;

  const uint32_t threads =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 8;
  const size_t buffer_pages =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 4096;
  constexpr uint64_t kDataPages = 16384;

  std::printf("TPC-C-like OLTP: %llu-page data set, %zu-page buffer, "
              "%u threads, 250us simulated disk.\n\n",
              static_cast<unsigned long long>(kDataPages), buffer_pages,
              threads);

  TableReporter table({"system", "tx/sec", "avg resp (ms)", "p95 resp (ms)",
                       "hit %", "contentions/1M", "evictions"});
  for (const char* system_name : {"pgClock", "pg2Q", "pgBatPre"}) {
    DriverConfig config;
    config.workload.name = "dbt2";
    config.workload.num_pages = kDataPages;
    config.num_threads = threads;
    config.duration_ms = 500;
    config.warmup_ms = 250;
    config.num_frames = buffer_pages;
    config.prewarm = false;  // warm through the workload, like a restart
    config.think_work = 32;
    config.storage_latency = StorageLatencyModel::SleepingMicros(250, 250);
    auto system = PaperSystemConfig(system_name);
    if (!system.ok()) return 1;
    config.system = system.value();
    auto result = RunDriver(config);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({system_name, FormatDouble(result->throughput_tps, 0),
                  FormatDouble(result->avg_response_us / 1000.0, 2),
                  FormatDouble(result->p95_response_us / 1000.0, 2),
                  FormatDouble(result->hit_ratio * 100, 1),
                  FormatDouble(result->contentions_per_million, 1),
                  std::to_string(result->evictions)});
  }
  table.Print("Five-transaction TPC-C-like mix (New-Order 45%, Payment 43%, "
              "Order-Status/Delivery/Stock-Level 4% each)");
  std::printf(
      "Expected: the 2Q-based systems out-hit pgClock; pgBatPre keeps that\n"
      "advantage without pg2Q's lock contention. Try a larger buffer\n"
      "(e.g. %llu) to watch pg2Q's advantage evaporate into lock waits.\n",
      static_cast<unsigned long long>(kDataPages));
  return 0;
}
