// Quickstart: the smallest complete use of the library.
//
// Builds a buffer pool over a simulated disk, wraps the 2Q replacement
// algorithm in BP-Wrapper, fetches some pages from a few threads, and
// prints hit ratios and lock statistics.
//
//   $ ./quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "core/bp_wrapper.h"
#include "policy/two_q.h"
#include "storage/storage_engine.h"

int main() {
  using namespace bpw;

  // 1. A simulated disk: 4096 pages of 8 KB, no latency model.
  StorageEngine storage(/*num_pages=*/4096, /*page_size=*/8192);

  // 2. Any replacement policy — here the full 2Q algorithm — wrapped in
  //    BP-Wrapper. The policy code knows nothing about concurrency; the
  //    wrapper batches each thread's accesses in a private FIFO queue and
  //    commits them with one lock acquisition per batch.
  BpWrapperCoordinator::Options options;
  options.queue_size = 64;       // the paper's S
  options.batch_threshold = 32;  // the paper's T
  options.prefetch = true;       // warm the cache before taking the lock
  auto coordinator = std::make_unique<BpWrapperCoordinator>(
      std::make_unique<TwoQPolicy>(/*num_frames=*/1024), options);

  // 3. The buffer pool: 1024 frames over the 4096-page disk.
  BufferPoolConfig config;
  config.num_frames = 1024;
  config.page_size = 8192;
  BufferPool pool(config, &storage, std::move(coordinator));

  // 4. Worker threads fetch pages. Each thread registers a session.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&pool, t] {
      auto session = pool.CreateSession();
      for (int i = 0; i < 50000; ++i) {
        // A skewed stream: half the accesses go to 64 hot pages.
        PageId page = (i % 2 == 0) ? (i % 64) : ((i * 37 + t) % 4096);
        auto handle = pool.FetchPage(*session, page);
        if (!handle.ok()) {
          std::fprintf(stderr, "fetch failed: %s\n",
                       handle.status().ToString().c_str());
          return;
        }
        // handle.value().data() is the 8 KB page; MarkDirty() after writes.
      }
      pool.FlushSession(*session);
      std::printf("thread %d: %llu hits, %llu misses (%.1f%% hit ratio)\n", t,
                  static_cast<unsigned long long>(session->stats().hits),
                  static_cast<unsigned long long>(session->stats().misses),
                  session->stats().hit_ratio() * 100);
    });
  }
  for (auto& w : workers) w.join();

  // 5. The paper's metric: how often did anyone block on the policy lock?
  const LockStats lock = pool.coordinator().lock_stats();
  std::printf("\npolicy lock: %llu acquisitions, %llu contentions, "
              "%llu failed TryLocks\n",
              static_cast<unsigned long long>(lock.acquisitions),
              static_cast<unsigned long long>(lock.contentions),
              static_cast<unsigned long long>(lock.trylock_failures));
  std::printf("buffer pool: %llu evictions, %llu write-backs\n",
              static_cast<unsigned long long>(pool.evictions()),
              static_cast<unsigned long long>(pool.writebacks()));
  return 0;
}
