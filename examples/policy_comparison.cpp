// Policy comparison: hit ratios of all nine replacement algorithms on the
// three workload families at several buffer sizes — the "which algorithm
// should I ship?" tour, and the reason the paper insists on making the
// advanced ones scalable instead of settling for clock.
//
//   $ ./policy_comparison
#include <cstdio>

#include "buffer/buffer_pool.h"
#include "core/coordinator_factory.h"
#include "harness/reporter.h"
#include "policy/policy_factory.h"
#include "workload/trace_generator.h"

namespace {

double HitRatio(const std::string& policy, const bpw::WorkloadSpec& workload,
                size_t frames, int accesses) {
  using namespace bpw;
  StorageEngine storage(workload.num_pages, 4096);
  SystemConfig system;
  system.policy = policy;
  // Single-threaded measurement: use the plain serialized coordinator.
  system.coordinator = "serialized";
  auto coordinator = CreateCoordinator(system, frames);
  if (!coordinator.ok()) return -1;
  BufferPoolConfig config;
  config.num_frames = frames;
  config.page_size = 4096;
  BufferPool pool(config, &storage, std::move(coordinator).value());
  auto session = pool.CreateSession();
  auto trace = CreateTrace(workload, 0);
  if (trace == nullptr) return -1;
  for (int i = 0; i < accesses; ++i) {
    auto handle = pool.FetchPage(*session, trace->Next().page);
    if (!handle.ok()) return -1;
  }
  return session->stats().hit_ratio();
}

}  // namespace

int main() {
  using namespace bpw;

  struct Scenario {
    const char* title;
    WorkloadSpec workload;
  };
  std::vector<Scenario> scenarios;
  {
    Scenario s{"TPC-W-like browsing (dbt1, 16384 pages)", {}};
    s.workload.name = "dbt1";
    s.workload.num_pages = 16384;
    scenarios.push_back(s);
  }
  {
    Scenario s{"TPC-C-like OLTP (dbt2, 16384 pages)", {}};
    s.workload.name = "dbt2";
    s.workload.num_pages = 16384;
    scenarios.push_back(s);
  }
  {
    Scenario s{"Loop slightly larger than cache (seqloop, 3072 pages)", {}};
    s.workload.name = "seqloop";
    s.workload.num_pages = 3072;
    scenarios.push_back(s);
  }

  const std::vector<size_t> buffer_sizes = {512, 2048, 8192};
  constexpr int kAccesses = 150000;

  for (const Scenario& scenario : scenarios) {
    std::vector<std::string> header{"policy"};
    for (size_t frames : buffer_sizes) {
      header.push_back(std::to_string(frames) + " frames");
    }
    TableReporter table(header);
    for (const auto& policy : KnownPolicies()) {
      std::vector<double> ratios;
      for (size_t frames : buffer_sizes) {
        ratios.push_back(
            HitRatio(policy, scenario.workload, frames, kAccesses) * 100);
      }
      table.AddNumericRow(policy, ratios, 1);
    }
    table.Print(std::string("Hit ratio (%) — ") + scenario.title);
  }
  std::printf(
      "Note the loop scenario: list-based LRU and clock thrash (≈0%%)\n"
      "while LIRS/2Q/ARC keep most of the loop resident — history-rich\n"
      "algorithms earn their locks; BP-Wrapper removes the lock cost.\n");
  return 0;
}
