// Trace record & replay: freeze a workload once, replay it bit-identically
// against every replacement policy — the classic methodology of the
// replacement-algorithm literature, end to end.
//
//   $ ./trace_replay [trace-file]
//
// Records 200k accesses of the TPC-C-like workload (or loads an existing
// trace), then replays it single-threaded against each policy at two
// buffer sizes and prints the hit-ratio league table.
#include <cstdio>
#include <string>

#include "buffer/buffer_pool.h"
#include "core/serialized_coordinator.h"
#include "harness/reporter.h"
#include "policy/policy_factory.h"
#include "workload/trace_file.h"

int main(int argc, char** argv) {
  using namespace bpw;

  const std::string path = argc > 1 ? argv[1] : "/tmp/bpw_dbt2.bpwt";

  // Record (or reuse) the trace.
  auto trace_file = TraceFile::Load(path);
  if (!trace_file.ok()) {
    std::printf("recording 200k-access dbt2 trace to %s ...\n", path.c_str());
    WorkloadSpec spec;
    spec.name = "dbt2";
    spec.num_pages = 8192;
    spec.seed = 2026;
    Status status = RecordTrace(spec, 200000, path);
    if (!status.ok()) {
      std::fprintf(stderr, "record failed: %s\n", status.ToString().c_str());
      return 1;
    }
    trace_file = TraceFile::Load(path);
    if (!trace_file.ok()) {
      std::fprintf(stderr, "reload failed: %s\n",
                   trace_file.status().ToString().c_str());
      return 1;
    }
  } else {
    std::printf("loaded %zu-access trace from %s\n",
                trace_file->accesses().size(), path.c_str());
  }

  const std::vector<size_t> buffer_sizes = {512, 2048};
  std::vector<std::string> header{"policy"};
  for (size_t frames : buffer_sizes) {
    header.push_back(std::to_string(frames) + " frames (hit %)");
  }
  TableReporter table(header);

  for (const auto& policy_name : KnownPolicies()) {
    std::vector<double> ratios;
    for (size_t frames : buffer_sizes) {
      StorageEngine storage(trace_file->num_pages(), 4096);
      auto policy = CreatePolicy(policy_name, frames);
      if (!policy.ok()) return 1;
      BufferPoolConfig config;
      config.num_frames = frames;
      config.page_size = 4096;
      BufferPool pool(config, &storage,
                      std::make_unique<SerializedCoordinator>(
                          std::move(policy).value()));
      auto session = pool.CreateSession();
      ReplayTrace replay(trace_file.value());
      // One full pass over the recorded trace.
      const size_t n = trace_file->accesses().size();
      for (size_t i = 0; i < n; ++i) {
        auto handle = pool.FetchPage(*session, replay.Next().page);
        if (!handle.ok()) {
          std::fprintf(stderr, "fetch failed: %s\n",
                       handle.status().ToString().c_str());
          return 1;
        }
      }
      ratios.push_back(session->stats().hit_ratio() * 100.0);
    }
    table.AddNumericRow(policy_name, ratios, 2);
  }
  table.Print("Hit ratios on the frozen dbt2 trace (identical input for "
              "every policy)");
  std::printf("The trace file is reusable: pass it to this binary again or\n"
              "to your own experiments for bit-identical comparisons.\n");
  return 0;
}
