file(REMOVE_RECURSE
  "CMakeFiles/bpw_run.dir/bpw_run.cc.o"
  "CMakeFiles/bpw_run.dir/bpw_run.cc.o.d"
  "bpw_run"
  "bpw_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpw_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
