# Empty dependencies file for bpw_run.
# This may be replaced when dependencies are built.
