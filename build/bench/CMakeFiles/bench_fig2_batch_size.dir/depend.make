# Empty dependencies file for bench_fig2_batch_size.
# This may be replaced when dependencies are built.
