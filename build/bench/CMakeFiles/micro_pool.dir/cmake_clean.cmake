file(REMOVE_RECURSE
  "CMakeFiles/micro_pool.dir/micro_pool.cc.o"
  "CMakeFiles/micro_pool.dir/micro_pool.cc.o.d"
  "micro_pool"
  "micro_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
