# Empty dependencies file for micro_pool.
# This may be replaced when dependencies are built.
