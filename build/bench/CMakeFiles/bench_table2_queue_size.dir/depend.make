# Empty dependencies file for bench_table2_queue_size.
# This may be replaced when dependencies are built.
