file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_queue_size.dir/bench_table2_queue_size.cc.o"
  "CMakeFiles/bench_table2_queue_size.dir/bench_table2_queue_size.cc.o.d"
  "bench_table2_queue_size"
  "bench_table2_queue_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_queue_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
