file(REMOVE_RECURSE
  "CMakeFiles/micro_lock.dir/micro_lock.cc.o"
  "CMakeFiles/micro_lock.dir/micro_lock.cc.o.d"
  "micro_lock"
  "micro_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
