# Empty compiler generated dependencies file for micro_lock.
# This may be replaced when dependencies are built.
