file(REMOVE_RECURSE
  "CMakeFiles/micro_policy_ops.dir/micro_policy_ops.cc.o"
  "CMakeFiles/micro_policy_ops.dir/micro_policy_ops.cc.o.d"
  "micro_policy_ops"
  "micro_policy_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_policy_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
