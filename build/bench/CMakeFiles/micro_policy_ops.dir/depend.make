# Empty dependencies file for micro_policy_ops.
# This may be replaced when dependencies are built.
