file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_overall.dir/bench_fig8_overall.cc.o"
  "CMakeFiles/bench_fig8_overall.dir/bench_fig8_overall.cc.o.d"
  "bench_fig8_overall"
  "bench_fig8_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
