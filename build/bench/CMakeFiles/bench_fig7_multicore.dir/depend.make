# Empty dependencies file for bench_fig7_multicore.
# This may be replaced when dependencies are built.
