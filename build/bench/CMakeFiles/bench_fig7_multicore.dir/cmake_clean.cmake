file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_multicore.dir/bench_fig7_multicore.cc.o"
  "CMakeFiles/bench_fig7_multicore.dir/bench_fig7_multicore.cc.o.d"
  "bench_fig7_multicore"
  "bench_fig7_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
