# Empty compiler generated dependencies file for micro_queue.
# This may be replaced when dependencies are built.
