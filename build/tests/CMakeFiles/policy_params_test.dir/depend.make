# Empty dependencies file for policy_params_test.
# This may be replaced when dependencies are built.
