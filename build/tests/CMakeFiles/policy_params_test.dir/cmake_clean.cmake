file(REMOVE_RECURSE
  "CMakeFiles/policy_params_test.dir/policy_params_test.cc.o"
  "CMakeFiles/policy_params_test.dir/policy_params_test.cc.o.d"
  "policy_params_test"
  "policy_params_test.pdb"
  "policy_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
