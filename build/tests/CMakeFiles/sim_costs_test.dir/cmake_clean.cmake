file(REMOVE_RECURSE
  "CMakeFiles/sim_costs_test.dir/sim_costs_test.cc.o"
  "CMakeFiles/sim_costs_test.dir/sim_costs_test.cc.o.d"
  "sim_costs_test"
  "sim_costs_test.pdb"
  "sim_costs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_costs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
