# Empty dependencies file for sim_costs_test.
# This may be replaced when dependencies are built.
