# Empty compiler generated dependencies file for lru_k_test.
# This may be replaced when dependencies are built.
