file(REMOVE_RECURSE
  "CMakeFiles/lru_k_test.dir/lru_k_test.cc.o"
  "CMakeFiles/lru_k_test.dir/lru_k_test.cc.o.d"
  "lru_k_test"
  "lru_k_test.pdb"
  "lru_k_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lru_k_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
