# Empty dependencies file for clock_fifo_test.
# This may be replaced when dependencies are built.
