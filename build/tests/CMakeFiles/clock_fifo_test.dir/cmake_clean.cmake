file(REMOVE_RECURSE
  "CMakeFiles/clock_fifo_test.dir/clock_fifo_test.cc.o"
  "CMakeFiles/clock_fifo_test.dir/clock_fifo_test.cc.o.d"
  "clock_fifo_test"
  "clock_fifo_test.pdb"
  "clock_fifo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_fifo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
