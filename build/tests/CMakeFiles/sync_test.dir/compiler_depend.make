# Empty compiler generated dependencies file for sync_test.
# This may be replaced when dependencies are built.
