# Empty dependencies file for coordinator_test.
# This may be replaced when dependencies are built.
