file(REMOVE_RECURSE
  "CMakeFiles/lirs_test.dir/lirs_test.cc.o"
  "CMakeFiles/lirs_test.dir/lirs_test.cc.o.d"
  "lirs_test"
  "lirs_test.pdb"
  "lirs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lirs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
