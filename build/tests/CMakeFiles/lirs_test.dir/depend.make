# Empty dependencies file for lirs_test.
# This may be replaced when dependencies are built.
