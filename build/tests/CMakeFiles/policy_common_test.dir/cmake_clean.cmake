file(REMOVE_RECURSE
  "CMakeFiles/policy_common_test.dir/policy_common_test.cc.o"
  "CMakeFiles/policy_common_test.dir/policy_common_test.cc.o.d"
  "policy_common_test"
  "policy_common_test.pdb"
  "policy_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
