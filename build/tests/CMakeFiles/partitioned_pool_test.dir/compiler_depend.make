# Empty compiler generated dependencies file for partitioned_pool_test.
# This may be replaced when dependencies are built.
