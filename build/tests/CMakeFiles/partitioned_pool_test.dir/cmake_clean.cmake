file(REMOVE_RECURSE
  "CMakeFiles/partitioned_pool_test.dir/partitioned_pool_test.cc.o"
  "CMakeFiles/partitioned_pool_test.dir/partitioned_pool_test.cc.o.d"
  "partitioned_pool_test"
  "partitioned_pool_test.pdb"
  "partitioned_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
