# Empty dependencies file for arc_test.
# This may be replaced when dependencies are built.
