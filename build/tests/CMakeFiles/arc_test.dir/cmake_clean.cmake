file(REMOVE_RECURSE
  "CMakeFiles/arc_test.dir/arc_test.cc.o"
  "CMakeFiles/arc_test.dir/arc_test.cc.o.d"
  "arc_test"
  "arc_test.pdb"
  "arc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
