# Empty dependencies file for two_q_test.
# This may be replaced when dependencies are built.
