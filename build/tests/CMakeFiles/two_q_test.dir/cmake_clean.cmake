file(REMOVE_RECURSE
  "CMakeFiles/two_q_test.dir/two_q_test.cc.o"
  "CMakeFiles/two_q_test.dir/two_q_test.cc.o.d"
  "two_q_test"
  "two_q_test.pdb"
  "two_q_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_q_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
