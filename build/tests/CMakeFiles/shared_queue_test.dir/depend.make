# Empty dependencies file for shared_queue_test.
# This may be replaced when dependencies are built.
