file(REMOVE_RECURSE
  "CMakeFiles/shared_queue_test.dir/shared_queue_test.cc.o"
  "CMakeFiles/shared_queue_test.dir/shared_queue_test.cc.o.d"
  "shared_queue_test"
  "shared_queue_test.pdb"
  "shared_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
