file(REMOVE_RECURSE
  "CMakeFiles/seq_test.dir/seq_test.cc.o"
  "CMakeFiles/seq_test.dir/seq_test.cc.o.d"
  "seq_test"
  "seq_test.pdb"
  "seq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
