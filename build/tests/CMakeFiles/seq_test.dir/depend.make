# Empty dependencies file for seq_test.
# This may be replaced when dependencies are built.
