file(REMOVE_RECURSE
  "CMakeFiles/intrusive_list_test.dir/intrusive_list_test.cc.o"
  "CMakeFiles/intrusive_list_test.dir/intrusive_list_test.cc.o.d"
  "intrusive_list_test"
  "intrusive_list_test.pdb"
  "intrusive_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intrusive_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
