# Empty dependencies file for trace_file_test.
# This may be replaced when dependencies are built.
