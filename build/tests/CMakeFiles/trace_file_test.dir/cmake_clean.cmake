file(REMOVE_RECURSE
  "CMakeFiles/trace_file_test.dir/trace_file_test.cc.o"
  "CMakeFiles/trace_file_test.dir/trace_file_test.cc.o.d"
  "trace_file_test"
  "trace_file_test.pdb"
  "trace_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
