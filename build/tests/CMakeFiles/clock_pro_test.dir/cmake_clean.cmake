file(REMOVE_RECURSE
  "CMakeFiles/clock_pro_test.dir/clock_pro_test.cc.o"
  "CMakeFiles/clock_pro_test.dir/clock_pro_test.cc.o.d"
  "clock_pro_test"
  "clock_pro_test.pdb"
  "clock_pro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_pro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
