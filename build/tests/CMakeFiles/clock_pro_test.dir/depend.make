# Empty dependencies file for clock_pro_test.
# This may be replaced when dependencies are built.
