# Empty compiler generated dependencies file for buffer_pool_test.
# This may be replaced when dependencies are built.
