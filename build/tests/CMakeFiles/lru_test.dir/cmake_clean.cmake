file(REMOVE_RECURSE
  "CMakeFiles/lru_test.dir/lru_test.cc.o"
  "CMakeFiles/lru_test.dir/lru_test.cc.o.d"
  "lru_test"
  "lru_test.pdb"
  "lru_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
