# Empty dependencies file for car_test.
# This may be replaced when dependencies are built.
