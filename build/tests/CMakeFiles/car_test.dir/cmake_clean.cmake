file(REMOVE_RECURSE
  "CMakeFiles/car_test.dir/car_test.cc.o"
  "CMakeFiles/car_test.dir/car_test.cc.o.d"
  "car_test"
  "car_test.pdb"
  "car_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/car_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
