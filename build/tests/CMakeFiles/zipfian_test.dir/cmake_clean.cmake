file(REMOVE_RECURSE
  "CMakeFiles/zipfian_test.dir/zipfian_test.cc.o"
  "CMakeFiles/zipfian_test.dir/zipfian_test.cc.o.d"
  "zipfian_test"
  "zipfian_test.pdb"
  "zipfian_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipfian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
