# Empty compiler generated dependencies file for zipfian_test.
# This may be replaced when dependencies are built.
