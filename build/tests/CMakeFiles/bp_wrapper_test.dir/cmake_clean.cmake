file(REMOVE_RECURSE
  "CMakeFiles/bp_wrapper_test.dir/bp_wrapper_test.cc.o"
  "CMakeFiles/bp_wrapper_test.dir/bp_wrapper_test.cc.o.d"
  "bp_wrapper_test"
  "bp_wrapper_test.pdb"
  "bp_wrapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bp_wrapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
