# Empty dependencies file for hit_ratio_test.
# This may be replaced when dependencies are built.
