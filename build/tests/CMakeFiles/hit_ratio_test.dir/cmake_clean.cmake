file(REMOVE_RECURSE
  "CMakeFiles/hit_ratio_test.dir/hit_ratio_test.cc.o"
  "CMakeFiles/hit_ratio_test.dir/hit_ratio_test.cc.o.d"
  "hit_ratio_test"
  "hit_ratio_test.pdb"
  "hit_ratio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hit_ratio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
