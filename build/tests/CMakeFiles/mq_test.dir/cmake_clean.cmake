file(REMOVE_RECURSE
  "CMakeFiles/mq_test.dir/mq_test.cc.o"
  "CMakeFiles/mq_test.dir/mq_test.cc.o.d"
  "mq_test"
  "mq_test.pdb"
  "mq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
