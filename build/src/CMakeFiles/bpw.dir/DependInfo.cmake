
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/buffer/buffer_pool.cc" "src/CMakeFiles/bpw.dir/buffer/buffer_pool.cc.o" "gcc" "src/CMakeFiles/bpw.dir/buffer/buffer_pool.cc.o.d"
  "/root/repo/src/buffer/page_table.cc" "src/CMakeFiles/bpw.dir/buffer/page_table.cc.o" "gcc" "src/CMakeFiles/bpw.dir/buffer/page_table.cc.o.d"
  "/root/repo/src/buffer/partitioned_pool.cc" "src/CMakeFiles/bpw.dir/buffer/partitioned_pool.cc.o" "gcc" "src/CMakeFiles/bpw.dir/buffer/partitioned_pool.cc.o.d"
  "/root/repo/src/core/bp_wrapper.cc" "src/CMakeFiles/bpw.dir/core/bp_wrapper.cc.o" "gcc" "src/CMakeFiles/bpw.dir/core/bp_wrapper.cc.o.d"
  "/root/repo/src/core/clock_coordinator.cc" "src/CMakeFiles/bpw.dir/core/clock_coordinator.cc.o" "gcc" "src/CMakeFiles/bpw.dir/core/clock_coordinator.cc.o.d"
  "/root/repo/src/core/coordinator_factory.cc" "src/CMakeFiles/bpw.dir/core/coordinator_factory.cc.o" "gcc" "src/CMakeFiles/bpw.dir/core/coordinator_factory.cc.o.d"
  "/root/repo/src/core/serialized_coordinator.cc" "src/CMakeFiles/bpw.dir/core/serialized_coordinator.cc.o" "gcc" "src/CMakeFiles/bpw.dir/core/serialized_coordinator.cc.o.d"
  "/root/repo/src/core/shared_queue_coordinator.cc" "src/CMakeFiles/bpw.dir/core/shared_queue_coordinator.cc.o" "gcc" "src/CMakeFiles/bpw.dir/core/shared_queue_coordinator.cc.o.d"
  "/root/repo/src/harness/driver.cc" "src/CMakeFiles/bpw.dir/harness/driver.cc.o" "gcc" "src/CMakeFiles/bpw.dir/harness/driver.cc.o.d"
  "/root/repo/src/harness/reporter.cc" "src/CMakeFiles/bpw.dir/harness/reporter.cc.o" "gcc" "src/CMakeFiles/bpw.dir/harness/reporter.cc.o.d"
  "/root/repo/src/harness/systems.cc" "src/CMakeFiles/bpw.dir/harness/systems.cc.o" "gcc" "src/CMakeFiles/bpw.dir/harness/systems.cc.o.d"
  "/root/repo/src/policy/arc.cc" "src/CMakeFiles/bpw.dir/policy/arc.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/arc.cc.o.d"
  "/root/repo/src/policy/car.cc" "src/CMakeFiles/bpw.dir/policy/car.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/car.cc.o.d"
  "/root/repo/src/policy/clock.cc" "src/CMakeFiles/bpw.dir/policy/clock.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/clock.cc.o.d"
  "/root/repo/src/policy/clock_pro.cc" "src/CMakeFiles/bpw.dir/policy/clock_pro.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/clock_pro.cc.o.d"
  "/root/repo/src/policy/fifo.cc" "src/CMakeFiles/bpw.dir/policy/fifo.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/fifo.cc.o.d"
  "/root/repo/src/policy/gclock.cc" "src/CMakeFiles/bpw.dir/policy/gclock.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/gclock.cc.o.d"
  "/root/repo/src/policy/lirs.cc" "src/CMakeFiles/bpw.dir/policy/lirs.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/lirs.cc.o.d"
  "/root/repo/src/policy/lru.cc" "src/CMakeFiles/bpw.dir/policy/lru.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/lru.cc.o.d"
  "/root/repo/src/policy/lru_k.cc" "src/CMakeFiles/bpw.dir/policy/lru_k.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/lru_k.cc.o.d"
  "/root/repo/src/policy/mq.cc" "src/CMakeFiles/bpw.dir/policy/mq.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/mq.cc.o.d"
  "/root/repo/src/policy/policy_factory.cc" "src/CMakeFiles/bpw.dir/policy/policy_factory.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/policy_factory.cc.o.d"
  "/root/repo/src/policy/replacement_policy.cc" "src/CMakeFiles/bpw.dir/policy/replacement_policy.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/replacement_policy.cc.o.d"
  "/root/repo/src/policy/seq.cc" "src/CMakeFiles/bpw.dir/policy/seq.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/seq.cc.o.d"
  "/root/repo/src/policy/two_q.cc" "src/CMakeFiles/bpw.dir/policy/two_q.cc.o" "gcc" "src/CMakeFiles/bpw.dir/policy/two_q.cc.o.d"
  "/root/repo/src/sim/sim_driver.cc" "src/CMakeFiles/bpw.dir/sim/sim_driver.cc.o" "gcc" "src/CMakeFiles/bpw.dir/sim/sim_driver.cc.o.d"
  "/root/repo/src/storage/storage_engine.cc" "src/CMakeFiles/bpw.dir/storage/storage_engine.cc.o" "gcc" "src/CMakeFiles/bpw.dir/storage/storage_engine.cc.o.d"
  "/root/repo/src/sync/contention_lock.cc" "src/CMakeFiles/bpw.dir/sync/contention_lock.cc.o" "gcc" "src/CMakeFiles/bpw.dir/sync/contention_lock.cc.o.d"
  "/root/repo/src/util/clock.cc" "src/CMakeFiles/bpw.dir/util/clock.cc.o" "gcc" "src/CMakeFiles/bpw.dir/util/clock.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/bpw.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/bpw.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/bpw.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/bpw.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/bpw.dir/util/random.cc.o" "gcc" "src/CMakeFiles/bpw.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/bpw.dir/util/status.cc.o" "gcc" "src/CMakeFiles/bpw.dir/util/status.cc.o.d"
  "/root/repo/src/util/zipfian.cc" "src/CMakeFiles/bpw.dir/util/zipfian.cc.o" "gcc" "src/CMakeFiles/bpw.dir/util/zipfian.cc.o.d"
  "/root/repo/src/workload/dbt1.cc" "src/CMakeFiles/bpw.dir/workload/dbt1.cc.o" "gcc" "src/CMakeFiles/bpw.dir/workload/dbt1.cc.o.d"
  "/root/repo/src/workload/dbt2.cc" "src/CMakeFiles/bpw.dir/workload/dbt2.cc.o" "gcc" "src/CMakeFiles/bpw.dir/workload/dbt2.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/bpw.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/bpw.dir/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/table_scan.cc" "src/CMakeFiles/bpw.dir/workload/table_scan.cc.o" "gcc" "src/CMakeFiles/bpw.dir/workload/table_scan.cc.o.d"
  "/root/repo/src/workload/trace_file.cc" "src/CMakeFiles/bpw.dir/workload/trace_file.cc.o" "gcc" "src/CMakeFiles/bpw.dir/workload/trace_file.cc.o.d"
  "/root/repo/src/workload/workload_factory.cc" "src/CMakeFiles/bpw.dir/workload/workload_factory.cc.o" "gcc" "src/CMakeFiles/bpw.dir/workload/workload_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
