# Empty dependencies file for bpw.
# This may be replaced when dependencies are built.
