file(REMOVE_RECURSE
  "libbpw.a"
)
