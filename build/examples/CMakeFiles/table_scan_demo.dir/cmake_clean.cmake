file(REMOVE_RECURSE
  "CMakeFiles/table_scan_demo.dir/table_scan_demo.cpp.o"
  "CMakeFiles/table_scan_demo.dir/table_scan_demo.cpp.o.d"
  "table_scan_demo"
  "table_scan_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_scan_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
