# Empty dependencies file for table_scan_demo.
# This may be replaced when dependencies are built.
