file(REMOVE_RECURSE
  "CMakeFiles/policy_comparison.dir/policy_comparison.cpp.o"
  "CMakeFiles/policy_comparison.dir/policy_comparison.cpp.o.d"
  "policy_comparison"
  "policy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
