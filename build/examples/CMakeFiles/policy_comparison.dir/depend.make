# Empty dependencies file for policy_comparison.
# This may be replaced when dependencies are built.
