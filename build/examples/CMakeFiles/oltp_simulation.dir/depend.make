# Empty dependencies file for oltp_simulation.
# This may be replaced when dependencies are built.
