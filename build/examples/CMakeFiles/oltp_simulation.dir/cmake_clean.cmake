file(REMOVE_RECURSE
  "CMakeFiles/oltp_simulation.dir/oltp_simulation.cpp.o"
  "CMakeFiles/oltp_simulation.dir/oltp_simulation.cpp.o.d"
  "oltp_simulation"
  "oltp_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
